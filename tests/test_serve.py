"""Serving engine tests: batched/sequential parity, continuous batching,
scheduler behaviour, decision-request batching and the metrics surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm import LanguageModel, build_llm, generate
from repro.llm.config import LLMConfig
from repro.nn import BatchedKVCache, no_grad
from repro.serve import (
    ContinuousBatchingScheduler,
    GenerationSession,
    InferenceServer,
    SchedulerPolicy,
    SessionManager,
)


@pytest.fixture(scope="module")
def model():
    config = LLMConfig(name="serve-test", family="test", d_model=32, num_layers=2,
                       num_heads=2, max_seq_len=64)
    return LanguageModel(config, seed=3)


# ---------------------------------------------------------------------- #
# Batched KV-cache parity with sequential single-session decoding
# ---------------------------------------------------------------------- #
class TestBatchedDecodeParity:
    # Parity is asserted at atol=1e-9/rtol=0 (the repo's "machine precision"
    # convention): BLAS rounds batched GEMMs differently from single-row ones
    # at the ~1e-15 level, so bit-exactness across batch shapes is impossible
    # by construction — 1e-9 is ~6 orders of magnitude tighter than any
    # difference that could flip a sampled token in practice.

    def test_ragged_batch_matches_sequential(self, model):
        """N sessions with different prompt lengths decode identically."""
        rng = np.random.default_rng(0)
        vocab = model.tokenizer.vocab_size
        prompts = [rng.integers(0, vocab, size=n).tolist() for n in (3, 11, 7, 1, 18)]

        with no_grad():
            reference_caches = []
            reference_logits = []
            for prompt in prompts:
                cache = model.init_cache()
                logits = model.forward_incremental(
                    np.asarray(prompt, dtype=np.int64)[None, :], cache)
                reference_caches.append(cache)
                reference_logits.append(logits.data[0, -1])

            batched = model.init_batched_cache(max_slots=8)
            slots = []
            for prompt, expected in zip(prompts, reference_logits):
                cache = model.init_cache()
                logits = model.forward_incremental(
                    np.asarray(prompt, dtype=np.int64)[None, :], cache)
                np.testing.assert_array_equal(logits.data[0, -1], expected)
                slots.append(batched.admit(cache))
            slots = np.asarray(slots, dtype=np.int64)

            tokens = [int(np.argmax(l)) for l in reference_logits]
            for _ in range(8):
                out = model.forward_step(np.asarray(tokens), batched, slots).data[:, -1, :]
                for row, cache in enumerate(reference_caches):
                    expected = model.forward_incremental(
                        np.asarray([[tokens[row]]], dtype=np.int64), cache).data[0, -1]
                    np.testing.assert_allclose(out[row], expected, atol=1e-9, rtol=0)
                tokens = [int(np.argmax(out[row])) for row in range(len(prompts))]

    def test_interleaved_admission_eviction_parity(self, model):
        """Evicting mid-flight and admitting into the freed slot keeps parity."""
        rng = np.random.default_rng(7)
        vocab = model.tokenizer.vocab_size
        batched = model.init_batched_cache(max_slots=3)

        def prefill(length):
            prompt = rng.integers(0, vocab, size=length)
            cache = model.init_cache()
            logits = model.forward_incremental(prompt[None, :], cache)
            return cache, int(np.argmax(logits.data[0, -1]))

        with no_grad():
            sessions = {}
            for length in (5, 9, 2):
                cache, token = prefill(length)
                slot = batched.admit(cache)
                sessions[slot] = {"cache": cache, "token": token}

            def step(slots):
                slots = np.asarray(sorted(slots), dtype=np.int64)
                tokens = np.asarray([sessions[int(s)]["token"] for s in slots])
                out = model.forward_step(tokens, batched, slots).data[:, -1, :]
                for row, slot in enumerate(slots):
                    state = sessions[int(slot)]
                    expected = model.forward_incremental(
                        np.asarray([[state["token"]]], dtype=np.int64),
                        state["cache"]).data[0, -1]
                    np.testing.assert_allclose(out[row], expected, atol=1e-9, rtol=0)
                    state["token"] = int(np.argmax(expected))

            step(list(sessions))
            step(list(sessions))
            # Evict the middle session; its slot must be reusable.
            batched.evict(1)
            del sessions[1]
            step(list(sessions))
            cache, token = prefill(13)
            slot = batched.admit(cache)
            assert slot == 1  # freed slot is reused
            sessions[slot] = {"cache": cache, "token": token}
            step(list(sessions))
            step(list(sessions))

    def test_batched_cache_slot_exhaustion_and_errors(self, model):
        batched = model.init_batched_cache(max_slots=1)
        with no_grad():
            cache = model.init_cache()
            model.forward_incremental(np.asarray([[5, 6, 7]]), cache)
            slot = batched.admit(cache)
            other = model.init_cache()
            model.forward_incremental(np.asarray([[9]]), other)
            with pytest.raises(RuntimeError, match="no free slots"):
                batched.admit(other)
            batched.evict(slot)
            with pytest.raises(ValueError, match="already free"):
                batched.evict(slot)
        with pytest.raises(ValueError, match="prefill first"):
            batched.admit(model.init_cache())
        mismatched = BatchedKVCache(5, 2)
        with pytest.raises(ValueError, match="layers"):
            with no_grad():
                cache2 = model.init_cache()
                model.forward_incremental(np.asarray([[1]]), cache2)
                mismatched.admit(cache2)

    def test_forward_step_validation(self, model):
        batched = model.init_batched_cache(max_slots=4)
        with no_grad():
            cache = model.init_cache()
            model.forward_incremental(np.asarray([[5, 6]]), cache)
            slot = batched.admit(cache)
            with pytest.raises(ValueError, match="duplicate"):
                model.forward_step(np.asarray([1, 2]), batched,
                                   np.asarray([slot, slot]))
            with pytest.raises(ValueError, match="one token"):
                model.backbone.forward_step(
                    model.token_embedding(np.asarray([[1, 2]])), batched,
                    np.asarray([slot]))

    def test_forward_step_respects_max_seq_len(self):
        config = LLMConfig(name="cap", family="test", d_model=32, num_layers=1,
                           num_heads=2, max_seq_len=6)
        capped = LanguageModel(config, seed=0)
        batched = capped.init_batched_cache(max_slots=2)
        with no_grad():
            cache = capped.init_cache()
            capped.forward_incremental(np.asarray([[1, 2, 3, 4, 5]]), cache)
            slot = batched.admit(cache)
            capped.forward_step(np.asarray([1]), batched, np.asarray([slot]))  # -> 6
            with pytest.raises(ValueError, match="exceeds maximum"):
                capped.forward_step(np.asarray([1]), batched, np.asarray([slot]))

    def test_forward_step_requires_no_grad(self, model):
        batched = model.init_batched_cache(max_slots=2)
        with no_grad():
            cache = model.init_cache()
            model.forward_incremental(np.asarray([[4, 2]]), cache)
            slot = batched.admit(cache)
        with pytest.raises(RuntimeError, match="no_grad"):
            model.forward_step(np.asarray([1]), batched, np.asarray([slot]))


# ---------------------------------------------------------------------- #
# Served generation end to end
# ---------------------------------------------------------------------- #
class TestServedGeneration:
    def test_served_streams_match_standalone_generate(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=3))
        prompts = ["abc 1.0 2.0", "x", "hello world", "bitrate:", "zz 9 9 9", "k"]
        handles = [server.submit("generate", prompt, max_new_tokens=10,
                                 stop_on_eos=False) for prompt in prompts]
        server.run_until_idle()
        for prompt, handle in zip(prompts, handles):
            served = handle.result()
            reference = generate(model, prompt, max_new_tokens=10, stop_on_eos=False)
            assert served.token_ids == reference.token_ids
            assert served.num_inferences == reference.num_inferences
            assert served.text == reference.text
            assert len(served.token_seconds) == served.num_inferences

    def test_served_sampling_with_seed_matches_generate(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=4))
        handles = [server.submit("generate", "sample me", max_new_tokens=12,
                                 temperature=0.8, seed=s, stop_on_eos=False)
                   for s in range(4)]
        server.run_until_idle()
        for seed, handle in enumerate(handles):
            reference = generate(model, "sample me", max_new_tokens=12,
                                 temperature=0.8, seed=seed, stop_on_eos=False)
            assert handle.result().token_ids == reference.token_ids

    def test_continuous_batching_reuses_slots(self, model):
        # 6 requests over 2 slots: completions must free slots for the queue.
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=2))
        handles = [server.submit("generate", f"p{i}", max_new_tokens=4,
                                 stop_on_eos=False) for i in range(6)]
        server.run_until_idle()
        assert all(h.done() for h in handles)
        stats = server.stats()
        assert stats.requests_completed == 6
        assert stats.per_task == {"generate": 6}
        assert 0 < stats.mean_batch_occupancy <= 2
        assert stats.max_queue_depth >= 1
        assert stats.tokens_generated == 6 * 4

    def test_context_cap_finishes_session(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=2, max_context=12))
        handle = server.submit("generate", "0123456789", max_new_tokens=50,
                               stop_on_eos=False)
        result = handle.result()
        # Context cap (12) bounds prompt + generated tokens.
        assert 0 < len(result.token_ids) < 50

    def test_threaded_serve_loop(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=4))
        with server:
            assert server.is_serving
            handles = [server.submit("generate", f"t{i}", max_new_tokens=6,
                                     stop_on_eos=False) for i in range(8)]
            results = [h.result(timeout=60) for h in handles]
        assert not server.is_serving
        for i, result in enumerate(results):
            reference = generate(model, f"t{i}", max_new_tokens=6, stop_on_eos=False)
            assert result.token_ids == reference.token_ids

    def test_queue_full_rejection(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1, max_queue=1))
        first = server.submit("generate", "a", max_new_tokens=2, stop_on_eos=False)
        server.step()  # admit `first` into the (single) slot
        second = server.submit("generate", "b", max_new_tokens=2, stop_on_eos=False)
        third = server.submit("generate", "c", max_new_tokens=2, stop_on_eos=False)
        assert third.done()  # rejected immediately: the waiting queue is full
        with pytest.raises(RuntimeError, match="queue full"):
            third.result()
        server.run_until_idle()
        assert first.result().token_ids and second.result().token_ids

    def test_stop_without_drain_fails_pending_handles(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        server.start()
        handles = [server.submit("generate", f"long {i}", max_new_tokens=400,
                                 stop_on_eos=False) for i in range(6)]
        server.stop(drain=False)
        # Every handle resolves (possibly with the shutdown error) — no hangs.
        for handle in handles:
            try:
                handle.result(timeout=10)
            except RuntimeError as error:
                assert "server stopped" in str(error)

    def test_serves_training_mode_dropout_model(self):
        # generate() switches to eval and restores; the engine must do the
        # same or KV-cached attention rejects the dropout model.
        config = LLMConfig(name="serve-drop", family="test", d_model=32,
                           num_layers=2, num_heads=2, max_seq_len=64, dropout=0.2)
        dropout_model = LanguageModel(config, seed=0)
        assert dropout_model.training
        server = InferenceServer(dropout_model, SchedulerPolicy(max_batch_size=2))
        handle = server.submit("generate", "abc", max_new_tokens=8, stop_on_eos=False)
        served = handle.result()
        reference = generate(dropout_model, "abc", max_new_tokens=8, stop_on_eos=False)
        assert served.token_ids == reference.token_ids
        assert dropout_model.training  # mode restored

    def test_long_prompt_first_token_matches_generate(self, model):
        # Prompt longer than the context: the engine prefills the same
        # trailing window generate() uses, so the first token agrees; the
        # session then finishes at the context cap instead of sliding.
        prompt = "x" * (model.config.max_seq_len + 20)
        served = InferenceServer(model).submit(
            "generate", prompt, max_new_tokens=30, stop_on_eos=False).result()
        reference = generate(model, prompt, max_new_tokens=30, stop_on_eos=False)
        assert served.token_ids[0] == reference.token_ids[0]
        assert 0 < len(served.token_ids) < 30  # bounded by the context cap

    def test_server_without_model_rejects_generation(self):
        server = InferenceServer()
        with pytest.raises(ValueError, match="no language model"):
            server.submit("generate", "hi")
        with pytest.raises(ValueError, match="unknown task"):
            server.submit("nope", object())


# ---------------------------------------------------------------------- #
# Scheduler smoke tests (fast lane)
# ---------------------------------------------------------------------- #
class TestScheduler:
    def _session(self, i):
        return GenerationSession(session_id=i, prompt=f"s{i}")

    def test_fifo_admission_order(self):
        scheduler = ContinuousBatchingScheduler(SchedulerPolicy(max_batch_size=8))
        for i in range(5):
            assert scheduler.enqueue(self._session(i))
        admitted = scheduler.admissions(free_slots=3)
        assert [s.session_id for s in admitted] == [0, 1, 2]
        assert scheduler.queue_depth == 2
        admitted = scheduler.admissions(free_slots=8)
        assert [s.session_id for s in admitted] == [3, 4]
        assert scheduler.admitted_total == 5

    def test_queue_bound(self):
        scheduler = ContinuousBatchingScheduler(SchedulerPolicy(max_queue=2))
        assert scheduler.enqueue(self._session(0))
        assert scheduler.enqueue(self._session(1))
        assert not scheduler.enqueue(self._session(2))
        assert scheduler.rejected_total == 1

    def test_step_sampling(self):
        scheduler = ContinuousBatchingScheduler()
        scheduler.enqueue(self._session(0))
        scheduler.record_step(batch_size=4)
        assert list(scheduler.occupancy_samples) == [4]
        assert list(scheduler.queue_depth_samples) == [1]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SchedulerPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            SchedulerPolicy(max_context=1)
        with pytest.raises(ValueError):
            SchedulerPolicy(max_queue=0)

    def test_session_manager_requires_capacity(self, model):
        with pytest.raises(ValueError, match="max_slots"):
            SessionManager(model, max_slots=0)


# ---------------------------------------------------------------------- #
# Decision-request serving (the three task adapters)
# ---------------------------------------------------------------------- #
class TestDecisionServing:
    def test_vp_requests_batch_and_match_direct_predict(self, vp_data):
        from repro.core import VPAdapter

        setting, _, test = vp_data
        llm = build_llm("tiny-test", lora_rank=0, pretrained=False, seed=0)
        adapter = VPAdapter(llm, prediction_steps=setting.prediction_steps, seed=0)
        server = InferenceServer(adapters={"vp": adapter})
        samples = test[:6]
        handles = [server.submit("vp", sample) for sample in samples]
        server.run_until_idle()
        for sample, handle in zip(samples, handles):
            np.testing.assert_allclose(handle.result(), adapter.predict(sample),
                                       atol=1e-9, rtol=0)
        stats = server.stats()
        assert stats.per_task == {"vp": 6}
        assert stats.mean_batch_occupancy > 1  # they actually shared forwards

    def test_abr_requests_match_direct_act(self, abr_setup, tiny_llm):
        from repro.abr.env import ABRObservation
        from repro.core import DecisionAdapter

        video, traces, _ = abr_setup
        state_dim = ABRObservation.flat_size(video.num_bitrates)
        adapter = DecisionAdapter(tiny_llm, state_dim=state_dim,
                                  action_dims=(video.num_bitrates,),
                                  context_window=4, head="abr", seed=0)
        server = InferenceServer(adapters={"abr": adapter})
        rng = np.random.default_rng(0)
        payloads = []
        for _ in range(5):
            window = 3
            payloads.append({
                "returns": rng.normal(size=(window, 1)),
                "states": rng.normal(size=(window, state_dim)),
                "actions": rng.integers(0, video.num_bitrates, size=(window, 1)),
            })
        handles = [server.submit("abr", payload) for payload in payloads]
        server.run_until_idle()
        for payload, handle in zip(payloads, handles):
            direct = adapter.act(payload["returns"], payload["states"], payload["actions"])
            assert handle.result() == direct

    def test_served_vp_predictor_wrapper_matches_direct(self, vp_data):
        from repro.core import VPAdapter
        from repro.serve import ServedVPPredictor

        setting, _, test = vp_data
        llm = build_llm("tiny-test", lora_rank=0, pretrained=False, seed=1)
        adapter = VPAdapter(llm, prediction_steps=setting.prediction_steps, seed=0)
        server = InferenceServer(adapters={"vp": adapter})
        predictor = ServedVPPredictor(server)
        sample = test[0]
        np.testing.assert_allclose(predictor.predict(sample), adapter.predict(sample),
                                   atol=1e-9, rtol=0)

    def test_predict_batch_rejects_mixed_saliency(self, vp_data):
        from repro.core import VPAdapter

        setting, _, test = vp_data
        llm = build_llm("tiny-test", lora_rank=0, pretrained=False, seed=1)
        adapter = VPAdapter(llm, prediction_steps=setting.prediction_steps, seed=0)
        import copy
        stripped = copy.copy(test[1])
        stripped.saliency = None
        with pytest.raises(ValueError, match="uniform saliency"):
            adapter.predict_batch([test[0], stripped])

    def test_serve_loop_failure_fails_pending_handles(self, model):
        # A model whose decode step raises must not hang clients: the serve
        # loop fails every pending handle with the original error.
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=2))
        boom = RuntimeError("injected decode failure")

        def exploding_step():
            raise boom

        server._manager.step = exploding_step
        with server:
            handles = [server.submit("generate", f"x{i}", max_new_tokens=4,
                                     stop_on_eos=False) for i in range(4)]
            for handle in handles:
                with pytest.raises(RuntimeError, match="injected decode failure"):
                    handle.result(timeout=30)
        assert not server.is_serving

    def test_adapter_registration_guard(self):
        server = InferenceServer()
        with pytest.raises(ValueError, match="no adapter registered"):
            server.submit("abr", {})
        with pytest.raises(ValueError, match="unknown decision task"):
            server.register_adapter("generate", object())
