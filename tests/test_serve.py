"""Serving engine tests: paged batched/sequential parity, continuous batching,
block-pool invariants, prefix sharing, scheduler behaviour, the typed
request/lifecycle surface (streaming, cancellation, deadlines, priorities),
pluggable task runtimes and the metrics surface."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.llm import LanguageModel, build_llm, generate
from repro.llm.config import LLMConfig
from repro.nn import BlockAllocator, PagedKVCache, no_grad
from repro.serve import (
    ContinuousBatchingScheduler,
    DeadlineExceeded,
    DecisionRequest,
    GenerateRequest,
    GenerationSession,
    InferenceServer,
    PrefixCache,
    RequestCancelled,
    RequestMetrics,
    SchedulerPolicy,
    ServeCounters,
    ServerStats,
    SessionManager,
)


class _DoublerRuntime:
    """Minimal custom TaskRuntime used by the plugin-registration tests."""

    def __init__(self) -> None:
        self.batches = []

    def group_key(self, request):
        return ()

    def execute_batch(self, requests):
        self.batches.append(len(requests))
        return [request.payload * 2 for request in requests]


@pytest.fixture(scope="module")
def model():
    config = LLMConfig(name="serve-test", family="test", d_model=32, num_layers=2,
                       num_heads=2, max_seq_len=64)
    return LanguageModel(config, seed=3)


def _prefill(model, prompt_ids):
    """Single-session reference prefill: (cache, greedy first token)."""
    cache = model.init_cache()
    logits = model.forward_incremental(
        np.asarray(prompt_ids, dtype=np.int64)[None, :], cache)
    return cache, int(np.argmax(logits.data[0, -1]))


# ---------------------------------------------------------------------- #
# Paged batched decoding parity with sequential single-session decoding
# ---------------------------------------------------------------------- #
class TestPagedDecodeParity:
    # Parity is asserted at atol=1e-9/rtol=0 (the repo's "machine precision"
    # convention): BLAS rounds batched GEMMs differently from single-row ones
    # at the ~1e-15 level, so bit-exactness across batch shapes is impossible
    # by construction — 1e-9 is ~6 orders of magnitude tighter than any
    # difference that could flip a sampled token in practice.

    def test_ragged_batch_matches_sequential(self, model):
        """N sessions with different prompt lengths decode identically."""
        rng = np.random.default_rng(0)
        vocab = model.tokenizer.vocab_size
        prompts = [rng.integers(0, vocab, size=n).tolist() for n in (3, 11, 7, 1, 18)]

        with no_grad():
            reference_caches = []
            reference_logits = []
            for prompt in prompts:
                cache = model.init_cache()
                logits = model.forward_incremental(
                    np.asarray(prompt, dtype=np.int64)[None, :], cache)
                reference_caches.append(cache)
                reference_logits.append(logits.data[0, -1])

            paged = model.init_paged_cache(max_sessions=8, block_size=4)
            sessions = []
            for prompt in prompts:
                cache, _ = _prefill(model, prompt)
                sessions.append(paged.admit(cache))
            sessions = np.asarray(sessions, dtype=np.int64)

            tokens = [int(np.argmax(l)) for l in reference_logits]
            for _ in range(8):
                out = model.forward_step(np.asarray(tokens), paged, sessions).data[:, -1, :]
                for row, cache in enumerate(reference_caches):
                    expected = model.forward_incremental(
                        np.asarray([[tokens[row]]], dtype=np.int64), cache).data[0, -1]
                    np.testing.assert_allclose(out[row], expected, atol=1e-9, rtol=0)
                tokens = [int(np.argmax(out[row])) for row in range(len(prompts))]
                paged.check_invariants()

    def test_interleaved_admission_eviction_parity(self, model):
        """Evicting mid-flight and admitting into freed blocks keeps parity."""
        rng = np.random.default_rng(7)
        vocab = model.tokenizer.vocab_size
        paged = model.init_paged_cache(max_sessions=3, block_size=4)

        with no_grad():
            sessions = {}
            for length in (5, 9, 2):
                prompt = rng.integers(0, vocab, size=length)
                cache, token = _prefill(model, prompt)
                sid = paged.admit(cache)
                sessions[sid] = {"cache": cache, "token": token}

            def step(ids):
                ids = np.asarray(sorted(ids), dtype=np.int64)
                tokens = np.asarray([sessions[int(s)]["token"] for s in ids])
                out = model.forward_step(tokens, paged, ids).data[:, -1, :]
                for row, sid in enumerate(ids):
                    state = sessions[int(sid)]
                    expected = model.forward_incremental(
                        np.asarray([[state["token"]]], dtype=np.int64),
                        state["cache"]).data[0, -1]
                    np.testing.assert_allclose(out[row], expected, atol=1e-9, rtol=0)
                    state["token"] = int(np.argmax(expected))
                paged.check_invariants()

            step(list(sessions))
            step(list(sessions))
            # Evict the 9-token session; its blocks must return to the pool.
            victim = list(sessions)[1]
            held = paged.blocks_in_use
            victim_blocks = len(paged.table(victim))
            paged.evict(victim)
            del sessions[victim]
            assert paged.blocks_in_use == held - victim_blocks
            paged.check_invariants()
            step(list(sessions))
            prompt = rng.integers(0, vocab, size=13)
            cache, token = _prefill(model, prompt)
            before = paged.allocator.high_water
            reusable = before - paged.blocks_in_use  # freed, not yet reassigned
            needed = paged.blocks_needed(13)
            sid = paged.admit(cache)
            # Freed blocks are reused first; the pool only grows by the deficit.
            assert paged.allocator.high_water == before + max(0, needed - reusable)
            sessions[sid] = {"cache": cache, "token": token}
            step(list(sessions))
            step(list(sessions))

    def test_block_exhaustion_and_errors(self, model):
        # Pool with room for exactly 2 blocks of 4 tokens.
        paged = PagedKVCache(model.backbone.init_cache().num_layers,
                             max_blocks=2, block_size=4)
        with no_grad():
            cache = model.init_cache()
            model.forward_incremental(np.asarray([[5, 6, 7, 1, 2]]), cache)  # 2 blocks
            sid = paged.admit(cache)
            other = model.init_cache()
            model.forward_incremental(np.asarray([[9]]), other)
            with pytest.raises(RuntimeError, match="out of KV-cache blocks"):
                paged.admit(other)
            paged.check_invariants()  # failed admit must not leak blocks
            paged.evict(sid)
            with pytest.raises(ValueError, match="not live"):
                paged.evict(sid)
            assert paged.blocks_in_use == 0
            paged.admit(other)  # freed blocks are usable again
        with pytest.raises(ValueError, match="prefill first"):
            paged.admit(model.init_cache())
        mismatched = PagedKVCache(5, max_blocks=4, block_size=4)
        with pytest.raises(ValueError, match="layers"):
            with no_grad():
                cache2 = model.init_cache()
                model.forward_incremental(np.asarray([[1]]), cache2)
                mismatched.admit(cache2)

    def test_admit_rows_validates_rows_without_leaking(self, model):
        paged = model.init_paged_cache(max_sessions=4, block_size=4)
        with no_grad():
            cache, _ = _prefill(model, [1, 2, 3])
            for bad in (3, -1):
                with pytest.raises(ValueError, match="outside prefilled batch"):
                    paged.admit_rows(cache, rows=[bad])
            assert paged.blocks_in_use == 0  # nothing leaked
            paged.check_invariants()

    def test_simultaneous_cow_rezeros_the_freed_block(self, model):
        """When every holder of a shared tail block copy-on-writes in the same
        step, the orphaned original returns to the pool zero-filled."""
        paged = model.init_paged_cache(max_sessions=4, block_size=4)
        with no_grad():
            cache, token = _prefill(model, [1, 2, 3])  # partial tail block
            sid_a = paged.admit(cache)
            shared_block = paged.table(sid_a)[-1]
            sid_b = paged.fork(sid_a)
            model.forward_step(np.asarray([token, token]), paged,
                               np.asarray([sid_a, sid_b]))
            # Both sessions split off private copies; the original freed.
            assert shared_block not in paged.table(sid_a)
            assert shared_block not in paged.table(sid_b)
            for layer in paged.layers:
                assert not np.any(layer._keys[shared_block])
                assert not np.any(layer._values[shared_block])
            paged.check_invariants()

    def test_register_at_entry_cap_evicts_before_allocating(self, model):
        """Registration at max_entries frees the LRU head *first*, so it
        succeeds even when the resident heads occupy the whole reservation."""
        paged = PagedKVCache(model.backbone.init_cache().num_layers,
                             max_blocks=2, block_size=4)
        prefix = PrefixCache(model, paged, max_entries=1)
        first = prefix.register("abcdefg")   # 8 tokens with BOS -> both blocks
        assert len(first.block_ids) == 2 and paged.blocks_free == 0
        second = prefix.register("hijklmn")  # must evict `first` to fit
        assert len(prefix) == 1 and len(second.block_ids) == 2
        paged.check_invariants(external_refs=prefix.external_refs())

    def test_prepare_step_exhaustion_is_atomic(self, model):
        """Pool exhaustion mid-step must not leave orphan tail blocks.

        When two sessions both need a fresh block but only one is left, the
        step fails *without touching any table*, so evicting a session and
        retrying decodes correctly (regression: a partial allocation used to
        leave an appended block that shifted the next write out of the
        attention window)."""
        paged = PagedKVCache(model.backbone.init_cache().num_layers,
                             max_blocks=3, block_size=4)
        with no_grad():
            cache_a, token_a = _prefill(model, [1, 2, 3, 4])  # exactly 1 block
            cache_b, _ = _prefill(model, [5, 6, 7, 8])
            sid_a = paged.admit(cache_a)
            sid_b = paged.admit(cache_b)
            with pytest.raises(RuntimeError, match="out of KV-cache blocks"):
                model.forward_step(np.asarray([1, 2]), paged,
                                   np.asarray([sid_a, sid_b]))
            # No table was mutated and the pool balances.
            assert len(paged.table(sid_a)) == 1 and len(paged.table(sid_b)) == 1
            paged.check_invariants()
            paged.evict(sid_b)
            out = model.forward_step(np.asarray([token_a]), paged,
                                     np.asarray([sid_a])).data[0, -1, :]
            expected = model.forward_incremental(
                np.asarray([[token_a]], dtype=np.int64), cache_a).data[0, -1]
            np.testing.assert_allclose(out, expected, atol=1e-9, rtol=0)
            paged.check_invariants()

    def test_forward_step_validation(self, model):
        paged = model.init_paged_cache(max_sessions=4)
        with no_grad():
            cache = model.init_cache()
            model.forward_incremental(np.asarray([[5, 6]]), cache)
            sid = paged.admit(cache)
            with pytest.raises(ValueError, match="duplicate"):
                model.forward_step(np.asarray([1, 2]), paged,
                                   np.asarray([sid, sid]))
            with pytest.raises(ValueError, match="one token"):
                model.backbone.forward_step(
                    model.token_embedding(np.asarray([[1, 2]])), paged,
                    np.asarray([sid]))

    def test_forward_step_respects_max_seq_len(self):
        config = LLMConfig(name="cap", family="test", d_model=32, num_layers=1,
                           num_heads=2, max_seq_len=6)
        capped = LanguageModel(config, seed=0)
        paged = capped.init_paged_cache(max_sessions=2, block_size=4)
        with no_grad():
            cache = capped.init_cache()
            capped.forward_incremental(np.asarray([[1, 2, 3, 4, 5]]), cache)
            sid = paged.admit(cache)
            capped.forward_step(np.asarray([1]), paged, np.asarray([sid]))  # -> 6
            with pytest.raises(ValueError, match="exceeds maximum"):
                capped.forward_step(np.asarray([1]), paged, np.asarray([sid]))

    def test_forward_step_requires_no_grad(self, model):
        paged = model.init_paged_cache(max_sessions=2)
        with no_grad():
            cache = model.init_cache()
            model.forward_incremental(np.asarray([[4, 2]]), cache)
            sid = paged.admit(cache)
        with pytest.raises(RuntimeError, match="no_grad"):
            model.forward_step(np.asarray([1]), paged, np.asarray([sid]))

    def test_fork_copy_on_write_parity(self, model):
        """A forked session shares blocks until the first divergent write."""
        rng = np.random.default_rng(11)
        vocab = model.tokenizer.vocab_size
        prompt = rng.integers(0, vocab, size=7).tolist()  # partial tail block
        paged = model.init_paged_cache(max_sessions=4, block_size=4)
        with no_grad():
            cache_a, _ = _prefill(model, prompt)
            cache_b, _ = _prefill(model, prompt)  # independent reference twin
            sid_a = paged.admit(cache_a)
            blocks_before = paged.blocks_in_use
            sid_b = paged.fork(sid_a)
            # Fork is free: same blocks, higher refcounts.
            assert paged.blocks_in_use == blocks_before
            assert paged.table(sid_b) == paged.table(sid_a)
            paged.check_invariants()

            # Diverge: feed different tokens to original and fork.
            token_a, token_b = 3, 9
            out = model.forward_step(np.asarray([token_a, token_b]), paged,
                                     np.asarray([sid_a, sid_b])).data[:, -1, :]
            # Copy-on-write split the shared tail block.
            assert paged.table(sid_b)[-1] != paged.table(sid_a)[-1]
            assert paged.table(sid_b)[:-1] == paged.table(sid_a)[:-1]
            paged.check_invariants()
            expected_a = model.forward_incremental(
                np.asarray([[token_a]], dtype=np.int64), cache_a).data[0, -1]
            expected_b = model.forward_incremental(
                np.asarray([[token_b]], dtype=np.int64), cache_b).data[0, -1]
            np.testing.assert_allclose(out[0], expected_a, atol=1e-9, rtol=0)
            np.testing.assert_allclose(out[1], expected_b, atol=1e-9, rtol=0)

            # Continue decoding both; they must stay exact.
            for _ in range(4):
                token_a = int(np.argmax(expected_a))
                token_b = int(np.argmax(expected_b))
                out = model.forward_step(np.asarray([token_a, token_b]), paged,
                                         np.asarray([sid_a, sid_b])).data[:, -1, :]
                expected_a = model.forward_incremental(
                    np.asarray([[token_a]], dtype=np.int64), cache_a).data[0, -1]
                expected_b = model.forward_incremental(
                    np.asarray([[token_b]], dtype=np.int64), cache_b).data[0, -1]
                np.testing.assert_allclose(out[0], expected_a, atol=1e-9, rtol=0)
                np.testing.assert_allclose(out[1], expected_b, atol=1e-9, rtol=0)
                paged.check_invariants()

            # Evicting the original must not free blocks the fork still maps.
            paged.evict(sid_a)
            paged.check_invariants()
            expected_b = model.forward_incremental(
                np.asarray([[1]], dtype=np.int64), cache_b).data[0, -1]
            out = model.forward_step(np.asarray([1]), paged,
                                     np.asarray([sid_b])).data[0, -1, :]
            np.testing.assert_allclose(out, expected_b, atol=1e-9, rtol=0)


# ---------------------------------------------------------------------- #
# Randomized stress/property test: paged serving vs sequential decoding
# ---------------------------------------------------------------------- #
class TestPagedStressParity:
    def test_random_interleavings_match_sequential(self, model):
        """200+ randomized admit/decode/evict steps keep exact logit parity.

        Every live session is shadowed by its own single-session
        ``forward_incremental`` reference; after every batched step the paged
        logits must match each shadow exactly (atol=1e-9/rtol=0) and the
        block pool must satisfy all accounting invariants.
        """
        rng = np.random.default_rng(1234)
        vocab = model.tokenizer.vocab_size
        max_live = 6
        paged = model.init_paged_cache(max_sessions=max_live, block_size=4)
        live = {}  # sid -> {"cache": reference KVCache, "token": next token}
        admitted = evicted = decode_steps = 0

        with no_grad():
            for step in range(220):
                action = rng.random()
                if (action < 0.25 and len(live) < max_live) or not live:
                    length = int(rng.integers(1, 24))
                    prompt = rng.integers(0, vocab, size=length)
                    cache, token = _prefill(model, prompt)
                    sid = paged.admit(cache)
                    live[sid] = {"cache": cache, "token": token}
                    admitted += 1
                elif action < 0.35 and len(live) > 1:
                    victim = int(rng.choice(list(live)))
                    paged.evict(victim)
                    del live[victim]
                    evicted += 1
                else:
                    # Sessions near the model's context limit must retire
                    # (mirrors the engine's context_full eviction).
                    for sid in [s for s in live
                                if paged.length(s) + 1 > model.config.max_seq_len]:
                        paged.evict(sid)
                        del live[sid]
                        evicted += 1
                    if not live:
                        continue
                    ids = np.asarray(sorted(live), dtype=np.int64)
                    tokens = np.asarray([live[int(s)]["token"] for s in ids])
                    out = model.forward_step(tokens, paged, ids).data[:, -1, :]
                    for row, sid in enumerate(ids):
                        state = live[int(sid)]
                        expected = model.forward_incremental(
                            np.asarray([[state["token"]]], dtype=np.int64),
                            state["cache"]).data[0, -1]
                        np.testing.assert_allclose(
                            out[row], expected, atol=1e-9, rtol=0,
                            err_msg=f"step {step}, session {int(sid)}")
                        state["token"] = int(np.argmax(expected))
                    decode_steps += 1
                paged.check_invariants()
        # The interleaving actually exercised all three operations.
        assert admitted >= 10 and evicted >= 5 and decode_steps >= 100
        for sid in list(live):
            paged.evict(sid)
        paged.check_invariants()
        assert paged.blocks_in_use == 0

    def test_manager_stress_with_prefix_and_ragged_prefill(self, model):
        """Engine-level stress: random mixed-length traffic with prefix hits.

        Every served stream must equal standalone ``generate`` on the same
        prompt, under randomized admission order, ragged bucketed prefill,
        prefix sharing and slot churn.
        """
        rng = np.random.default_rng(7)
        preamble = "predict the bandwidth: "
        server = InferenceServer(model, SchedulerPolicy(
            max_batch_size=3, prefill_padding=0.25, block_size=4))
        server.register_prefix(preamble)
        prompts = []
        for i in range(12):
            body = "".join(rng.choice(list("abcdef 0123.")) for _ in range(int(rng.integers(1, 30))))
            prompts.append(preamble + body if rng.random() < 0.5 else body)
        handles = [server.submit_generation(p, max_new_tokens=int(rng.integers(2, 8)),
                                 stop_on_eos=False) for p in prompts]
        server.run_until_idle()
        for prompt, handle in zip(prompts, handles):
            served = handle.result()
            reference = generate(model, prompt,
                                 max_new_tokens=served.num_inferences,
                                 stop_on_eos=False)
            assert served.token_ids == reference.token_ids
        stats = server.stats()
        assert stats.prefix_hits > 0 and stats.prefix_misses > 0
        assert stats.prefix_tokens_reused >= stats.prefix_hits
        manager = server._manager
        manager.cache.check_invariants(external_refs=manager.prefix.external_refs())
        assert manager.cache.num_sessions == 0


# ---------------------------------------------------------------------- #
# Shared prompt-prefix cache
# ---------------------------------------------------------------------- #
class TestPrefixCache:
    def test_prefix_hit_shares_blocks_and_keeps_parity(self, model):
        manager = SessionManager(model, max_slots=4, block_size=4,
                                 prefill_padding=0.25)
        preamble = "bitrate selection task: "  # 25 tokens with BOS
        entry = manager.register_prefix(preamble)
        assert entry.length == len(model.tokenizer.encode(preamble, add_bos=True))
        assert len(entry.block_ids) == entry.length // 4
        blocks_before = manager.cache.blocks_in_use

        session = GenerationSession(session_id=1, prompt=preamble + "now",
                                    max_new_tokens=6, stop_on_eos=False)
        manager.admit(session)
        # The session's table starts with the cached head's blocks, shared.
        table = manager.cache.table(session.slot)
        assert table[:len(entry.block_ids)] == entry.block_ids
        assert session.metrics.prefix_tokens == entry.length
        # Shared mapping allocated only the tail's blocks.
        tail_tokens = len(session.prompt_ids) - len(entry.block_ids) * 4
        assert (manager.cache.blocks_in_use - blocks_before
                == manager.cache.blocks_needed(tail_tokens))
        manager.cache.check_invariants(
            external_refs=manager.prefix.external_refs())

        # Decode to completion; the stream must match standalone generate().
        while manager.num_running:
            manager.step()
        reference = generate(model, preamble + "now", max_new_tokens=6,
                             stop_on_eos=False)
        assert session.generated == reference.token_ids
        # Eviction returned the tail blocks but kept the cached head resident.
        assert manager.cache.blocks_in_use == blocks_before
        manager.cache.check_invariants(
            external_refs=manager.prefix.external_refs())

    def test_prefix_miss_and_strictness(self, model):
        manager = SessionManager(model, max_slots=2, block_size=4)
        preamble = "shared head 123"
        entry = manager.register_prefix(preamble)
        # A prompt equal to the head is NOT a hit (no tail to prefill).
        assert manager.prefix.match(entry.token_ids) is None
        # A prompt diverging in the head is not a hit either.
        other = model.tokenizer.encode("shared head 999 tail", add_bos=True)
        assert manager.prefix.match(other) is None
        # A longer prompt starting with the head is.
        longer = model.tokenizer.encode(preamble + " tail", add_bos=True)
        assert manager.prefix.match(longer) is entry
        assert manager.prefix.hits == 1 and manager.prefix.misses == 2

    def test_longest_prefix_wins(self, model):
        manager = SessionManager(model, max_slots=2, block_size=4)
        short = manager.register_prefix("abcd")
        long = manager.register_prefix("abcdefgh")
        prompt = model.tokenizer.encode("abcdefghij", add_bos=True)
        assert manager.prefix.match(prompt) is long
        assert manager.prefix.match(
            model.tokenizer.encode("abcdef", add_bos=True)) is short

    def test_lru_eviction_releases_blocks(self, model):
        manager = SessionManager(model, max_slots=2, block_size=4,
                                 max_prefixes=2)
        first = manager.register_prefix("first preamble text")
        manager.register_prefix("second preamble text")
        held = manager.cache.blocks_in_use
        manager.register_prefix("third preamble text!")  # evicts "first" (LRU)
        assert len(manager.prefix) == 2
        assert manager.prefix.match(
            model.tokenizer.encode("first preamble text plus", add_bos=True)) is None
        # first's blocks were released; third's were allocated.
        assert manager.cache.blocks_in_use == held
        manager.cache.check_invariants(
            external_refs=manager.prefix.external_refs())
        assert manager.cache.blocks_in_use == manager.prefix.blocks_held

    def test_register_validation(self, model):
        manager = SessionManager(model, max_slots=2)
        with pytest.raises(ValueError, match="empty"):
            manager.prefix.register_ids(())
        with pytest.raises(ValueError, match="no room for a tail"):
            manager.prefix.register("x" * model.config.max_seq_len)
        # A head that can never match a prompt truncated to max_context must
        # be rejected too — otherwise it would hold unmatchable pool blocks.
        capped = SessionManager(model, max_slots=2, max_context=32, block_size=4)
        with pytest.raises(ValueError, match="no room for a tail"):
            capped.register_prefix("y" * 40)
        capped.register_prefix("y" * 20)  # within the serving context: fine
        disabled = SessionManager(model, max_slots=2, prefix_cache=False)
        assert disabled.prefix is None
        with pytest.raises(ValueError, match="disabled"):
            disabled.register_prefix("head")

    def test_server_register_prefix_requires_model(self):
        with pytest.raises(ValueError, match="no language model"):
            InferenceServer().register_prefix("head")


# ---------------------------------------------------------------------- #
# Block-pool invariants (allocator-level)
# ---------------------------------------------------------------------- #
class TestBlockAllocator:
    def test_free_list_accounting_balances(self):
        allocator = BlockAllocator(num_blocks=8, block_size=4)
        blocks = [allocator.allocate() for _ in range(5)]
        assert allocator.blocks_in_use == 5 and allocator.high_water == 5
        for block in blocks[1:4]:
            assert allocator.release(block)
        assert allocator.blocks_in_use == 2
        # Reuse is lowest-id-first and does not grow the high-water mark.
        assert allocator.allocate() == blocks[1]
        assert allocator.high_water == 5

    def test_refcount_share_release(self):
        allocator = BlockAllocator(num_blocks=4, block_size=4)
        block = allocator.allocate()
        allocator.share(block)
        assert not allocator.release(block)  # still referenced
        assert allocator.release(block)      # last reference frees it
        with pytest.raises(ValueError, match="double free"):
            allocator.release(block)
        with pytest.raises(ValueError, match="not allocated"):
            allocator.share(block)

    def test_exhaustion_is_loud(self):
        allocator = BlockAllocator(num_blocks=2, block_size=4)
        allocator.allocate(), allocator.allocate()
        with pytest.raises(RuntimeError, match="out of KV-cache blocks"):
            allocator.allocate()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="num_blocks"):
            BlockAllocator(0, 4)
        with pytest.raises(ValueError, match="block_size"):
            BlockAllocator(4, 0)

    def test_no_block_owned_by_two_sessions(self, model):
        """Two independently admitted sessions never map the same block."""
        paged = model.init_paged_cache(max_sessions=4, block_size=4)
        with no_grad():
            cache_a, _ = _prefill(model, [1, 2, 3, 4, 5])
            cache_b, _ = _prefill(model, [6, 7, 8])
            sid_a = paged.admit(cache_a)
            sid_b = paged.admit(cache_b)
        assert not set(paged.table(sid_a)) & set(paged.table(sid_b))
        paged.check_invariants()


# ---------------------------------------------------------------------- #
# Metrics aggregation (pure numeric code)
# ---------------------------------------------------------------------- #
class TestMetricsAggregation:
    def _request(self, task, submitted, admitted, finished, tokens=0,
                 batch_sizes=(), first_token=None):
        metrics = RequestMetrics(task=task, submitted_at=submitted)
        metrics.admitted_at = admitted
        metrics.finished_at = finished
        metrics.first_token_at = first_token
        metrics.tokens_generated = tokens
        metrics.batch_sizes = list(batch_sizes)
        return metrics

    def test_request_metrics_phases(self):
        request = self._request("generate", submitted=10.0, admitted=10.5,
                                finished=12.0, tokens=8, batch_sizes=[2, 4],
                                first_token=10.75)
        assert request.queue_seconds == pytest.approx(0.5)
        assert request.decode_seconds == pytest.approx(1.5)
        assert request.total_seconds == pytest.approx(2.0)
        assert request.ttft_s == pytest.approx(0.75)
        assert request.mean_batch_size == pytest.approx(3.0)

    def test_time_to_first_token_alias_deprecated(self):
        request = self._request("generate", submitted=10.0, admitted=10.5,
                                finished=12.0, tokens=8, first_token=10.75)
        with pytest.warns(DeprecationWarning, match="ttft_s"):
            assert request.time_to_first_token == pytest.approx(0.75)  # repro: noqa[REP004] the pinned deprecation-warning test

    def test_request_metrics_defaults_before_completion(self):
        request = RequestMetrics(task="vp")
        assert request.queue_seconds == 0.0
        assert request.decode_seconds == 0.0
        assert request.total_seconds == 0.0
        assert request.ttft_s == 0.0
        assert request.mean_batch_size == 0.0

    def test_server_stats_percentiles_and_counts(self):
        # 20 requests with total latencies 1..20s and queue 0.1..2.0s.
        requests = []
        for i in range(1, 21):
            task = "generate" if i % 2 else "vp"
            requests.append(self._request(task, submitted=0.0, admitted=0.1 * i,
                                          finished=float(i), tokens=i))
        # One unfinished request must be excluded from every aggregate.
        unfinished = RequestMetrics(task="generate", submitted_at=0.0)
        stats = ServerStats.from_requests(
            requests + [unfinished], wall_seconds=10.0,
            occupancy_samples=[1, 2, 3, 4], queue_depth_samples=[0, 5, 2],
            block_usage_samples=[4, 8, 12], block_capacity=16,
            counters=ServeCounters(prefix_hits=3, prefix_misses=1,
                                   prefix_tokens_reused=75))
        assert stats.requests_completed == 20
        assert stats.tokens_generated == sum(range(1, 21))
        assert stats.tokens_per_second == pytest.approx(stats.tokens_generated / 10.0)
        latencies = [float(i) for i in range(1, 21)]
        assert stats.latency_p50_s == pytest.approx(np.percentile(latencies, 50))
        assert stats.latency_p95_s == pytest.approx(np.percentile(latencies, 95))
        queues = [0.1 * i for i in range(1, 21)]
        assert stats.queue_p50_s == pytest.approx(np.percentile(queues, 50))
        assert stats.queue_p95_s == pytest.approx(np.percentile(queues, 95))
        assert stats.mean_batch_occupancy == pytest.approx(2.5)
        assert stats.max_queue_depth == 5
        assert stats.per_task == {"generate": 10, "vp": 10}
        assert stats.mean_blocks_in_use == pytest.approx(8.0)
        assert stats.peak_blocks_in_use == 12
        assert stats.block_occupancy == pytest.approx(0.5)
        assert stats.prefix_hits == 3 and stats.prefix_misses == 1
        assert stats.prefix_tokens_reused == 75

    def test_ttft_and_inter_token_latency_aggregation(self):
        # Request 1: first token 0.3s after submit, then decode gaps
        # 0.01/0.02/0.03s.  Request 2: first token at 0.5s, gaps 0.1/0.2s.
        first = self._request("generate", submitted=0.0, admitted=0.1,
                              finished=1.0, tokens=4, first_token=0.3)
        first.token_seconds = [0.2, 0.01, 0.02, 0.03]
        second = self._request("generate", submitted=0.0, admitted=0.2,
                               finished=1.5, tokens=3, first_token=0.5)
        second.token_seconds = [0.3, 0.1, 0.2]
        assert first.ttft_s == pytest.approx(0.3)
        assert first.inter_token_seconds == [0.01, 0.02, 0.03]
        # A request that never produced a token contributes no TTFT/ITL.
        tokenless = self._request("generate", submitted=0.0, admitted=0.1,
                                  finished=0.2)
        assert tokenless.ttft_s == 0.0 and tokenless.inter_token_seconds == []

        stats = ServerStats.from_requests([first, second, tokenless],
                                          wall_seconds=2.0,
                                          occupancy_samples=[2],
                                          queue_depth_samples=[0])
        ttfts = [0.3, 0.5]
        itls = [0.01, 0.02, 0.03, 0.1, 0.2]
        assert stats.ttft_p50_s == pytest.approx(np.percentile(ttfts, 50))
        assert stats.ttft_p95_s == pytest.approx(np.percentile(ttfts, 95))
        assert stats.itl_p50_s == pytest.approx(np.percentile(itls, 50))
        assert stats.itl_p95_s == pytest.approx(np.percentile(itls, 95))
        report = stats.report()
        for key in ("ttft_p50_s", "ttft_p95_s", "itl_p50_s", "itl_p95_s"):
            assert report[key] == pytest.approx(getattr(stats, key))

    def test_ttft_itl_empty_defaults(self):
        stats = ServerStats.from_requests([], wall_seconds=0.0,
                                          occupancy_samples=[],
                                          queue_depth_samples=[])
        assert stats.ttft_p50_s == 0.0 and stats.ttft_p95_s == 0.0
        assert stats.itl_p50_s == 0.0 and stats.itl_p95_s == 0.0

    def test_per_priority_queue_stats_and_outcome_counts(self):
        from repro.serve.metrics import OUTCOME_CANCELLED, OUTCOME_EXPIRED

        requests = []
        # Priority 0: queue waits 0.1..1.0s; priority 2: waits 2.0 and 4.0s.
        for i in range(1, 11):
            metrics = self._request("generate", submitted=0.0, admitted=0.1 * i,
                                    finished=float(i), tokens=1)
            requests.append(metrics)
        for wait in (2.0, 4.0):
            metrics = self._request("generate", submitted=0.0, admitted=wait,
                                    finished=wait + 1.0, tokens=1)
            metrics.priority = 2
            requests.append(metrics)
        # One cancelled mid-decode, one expired in-queue (never admitted).
        cancelled = self._request("generate", submitted=0.0, admitted=0.5,
                                  finished=1.0)
        cancelled.outcome = OUTCOME_CANCELLED
        expired = RequestMetrics(task="generate", submitted_at=0.0)
        expired.outcome = OUTCOME_EXPIRED
        expired.finished_at = 3.0
        assert expired.queue_seconds == pytest.approx(3.0)  # queued lifetime
        requests += [cancelled, expired]

        stats = ServerStats.from_requests(requests, wall_seconds=10.0,
                                          occupancy_samples=[1],
                                          queue_depth_samples=[0])
        assert stats.requests_completed == 12  # ok outcomes only
        assert stats.cancelled == 1 and stats.expired == 1
        assert set(stats.queue_by_priority) == {0, 2}
        zero = stats.queue_by_priority[0]
        assert zero["count"] == 12  # 10 ok + cancelled + expired
        waits = [0.1 * i for i in range(1, 11)] + [0.5, 3.0]
        assert zero["queue_p50_s"] == pytest.approx(np.percentile(waits, 50))
        assert zero["queue_p95_s"] == pytest.approx(np.percentile(waits, 95))
        two = stats.queue_by_priority[2]
        assert two["count"] == 2
        assert two["queue_p50_s"] == pytest.approx(3.0)
        report = stats.report()
        assert report["cancelled"] == 1 and report["expired"] == 1
        assert report["queue_by_priority"]["2"]["count"] == 2

    def test_server_stats_empty_and_report_roundtrip(self):
        stats = ServerStats.from_requests([], wall_seconds=0.0,
                                          occupancy_samples=[],
                                          queue_depth_samples=[])
        assert stats.requests_completed == 0
        assert stats.tokens_per_second == 0.0
        assert stats.latency_p50_s == 0.0 and stats.queue_p95_s == 0.0
        assert stats.mean_batch_occupancy == 0.0 and stats.max_queue_depth == 0
        assert stats.block_occupancy == 0.0  # capacity 0 must not divide
        report = stats.report()
        for key in ("tokens_per_second", "latency_p95_s", "block_occupancy",
                    "prefix_hits", "prefix_tokens_reused", "mean_blocks_in_use",
                    "per_task"):
            assert key in report


# ---------------------------------------------------------------------- #
# Served generation end to end
# ---------------------------------------------------------------------- #
class TestServedGeneration:
    def test_served_streams_match_standalone_generate(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=3))
        prompts = ["abc 1.0 2.0", "x", "hello world", "bitrate:", "zz 9 9 9", "k"]
        handles = [server.submit_generation(prompt, max_new_tokens=10,
                                 stop_on_eos=False) for prompt in prompts]
        server.run_until_idle()
        for prompt, handle in zip(prompts, handles):
            served = handle.result()
            reference = generate(model, prompt, max_new_tokens=10, stop_on_eos=False)
            assert served.token_ids == reference.token_ids
            assert served.num_inferences == reference.num_inferences
            assert served.text == reference.text
            assert len(served.token_seconds) == served.num_inferences

    def test_served_sampling_with_seed_matches_generate(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=4))
        handles = [server.submit_generation("sample me", max_new_tokens=12,
                                 temperature=0.8, seed=s, stop_on_eos=False)
                   for s in range(4)]
        server.run_until_idle()
        for seed, handle in enumerate(handles):
            reference = generate(model, "sample me", max_new_tokens=12,
                                 temperature=0.8, seed=seed, stop_on_eos=False)
            assert handle.result().token_ids == reference.token_ids

    def test_continuous_batching_reuses_slots(self, model):
        # 6 requests over 2 slots: completions must free slots for the queue.
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=2))
        handles = [server.submit_generation(f"p{i}", max_new_tokens=4,
                                 stop_on_eos=False) for i in range(6)]
        server.run_until_idle()
        assert all(h.done() for h in handles)
        stats = server.stats()
        assert stats.requests_completed == 6
        assert stats.per_task == {"generate": 6}
        assert 0 < stats.mean_batch_occupancy <= 2
        assert stats.max_queue_depth >= 1
        assert stats.tokens_generated == 6 * 4

    def test_context_cap_finishes_session(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=2, max_context=12,
                                                        block_size=4))
        handle = server.submit_generation("0123456789", max_new_tokens=50,
                               stop_on_eos=False)
        result = handle.result()
        # Context cap (12) bounds prompt + generated tokens.
        assert 0 < len(result.token_ids) < 50

    def test_threaded_serve_loop(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=4))
        with server:
            assert server.is_serving
            handles = [server.submit_generation(f"t{i}", max_new_tokens=6,
                                     stop_on_eos=False) for i in range(8)]
            results = [h.result(timeout=60) for h in handles]
        assert not server.is_serving
        for i, result in enumerate(results):
            reference = generate(model, f"t{i}", max_new_tokens=6, stop_on_eos=False)
            assert result.token_ids == reference.token_ids

    def test_queue_full_rejection(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1, max_queue=1))
        first = server.submit_generation("a", max_new_tokens=2, stop_on_eos=False)
        server.step()  # admit `first` into the (single) slot
        second = server.submit_generation("b", max_new_tokens=2, stop_on_eos=False)
        third = server.submit_generation("c", max_new_tokens=2, stop_on_eos=False)
        assert third.done()  # rejected immediately: the waiting queue is full
        with pytest.raises(RuntimeError, match="queue full"):
            third.result()
        server.run_until_idle()
        assert first.result().token_ids and second.result().token_ids

    def test_stop_without_drain_fails_pending_handles(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        server.start()
        handles = [server.submit_generation(f"long {i}", max_new_tokens=400,
                                 stop_on_eos=False) for i in range(6)]
        server.stop(drain=False)
        # Every handle resolves (possibly with the shutdown error) — no hangs.
        for handle in handles:
            try:
                handle.result(timeout=10)
            except RuntimeError as error:
                assert "server stopped" in str(error)

    def test_serves_training_mode_dropout_model(self):
        # generate() switches to eval and restores; the engine must do the
        # same or KV-cached attention rejects the dropout model.
        config = LLMConfig(name="serve-drop", family="test", d_model=32,
                           num_layers=2, num_heads=2, max_seq_len=64, dropout=0.2)
        dropout_model = LanguageModel(config, seed=0)
        assert dropout_model.training
        server = InferenceServer(dropout_model, SchedulerPolicy(max_batch_size=2))
        handle = server.submit_generation("abc", max_new_tokens=8, stop_on_eos=False)
        served = handle.result()
        reference = generate(dropout_model, "abc", max_new_tokens=8, stop_on_eos=False)
        assert served.token_ids == reference.token_ids
        assert dropout_model.training  # mode restored

    def test_long_prompt_first_token_matches_generate(self, model):
        # Prompt longer than the context: the engine prefills the same
        # trailing window generate() uses, so the first token agrees; the
        # session then finishes at the context cap instead of sliding.
        prompt = "x" * (model.config.max_seq_len + 20)
        served = InferenceServer(model).submit(GenerateRequest(
            prompt=prompt, max_new_tokens=30, stop_on_eos=False)).result()
        reference = generate(model, prompt, max_new_tokens=30, stop_on_eos=False)
        assert served.token_ids[0] == reference.token_ids[0]
        assert 0 < len(served.token_ids) < 30  # bounded by the context cap

    def test_server_without_model_rejects_generation(self):
        server = InferenceServer()
        with pytest.raises(ValueError, match="no language model"):
            server.submit_generation("hi")
        with pytest.raises(ValueError, match="no task runtime registered"):
            server.submit(DecisionRequest(task="nope", payload=object()))
        with pytest.raises(TypeError, match="GenerateRequest or DecisionRequest"):
            server.submit(object())


# ---------------------------------------------------------------------- #
# Scheduler smoke tests (fast lane)
# ---------------------------------------------------------------------- #
class TestScheduler:
    def _session(self, i):
        return GenerationSession(session_id=i, prompt=f"s{i}")

    def test_fifo_admission_order(self):
        scheduler = ContinuousBatchingScheduler(SchedulerPolicy(max_batch_size=8))
        for i in range(5):
            assert scheduler.enqueue(self._session(i))
        admitted = scheduler.admissions(free_slots=3)
        assert [s.session_id for s in admitted] == [0, 1, 2]
        assert scheduler.queue_depth == 2
        admitted = scheduler.admissions(free_slots=8)
        assert [s.session_id for s in admitted] == [3, 4]
        assert scheduler.admitted_total == 5

    def test_queue_bound(self):
        scheduler = ContinuousBatchingScheduler(SchedulerPolicy(max_queue=2))
        assert scheduler.enqueue(self._session(0))
        assert scheduler.enqueue(self._session(1))
        assert not scheduler.enqueue(self._session(2))
        assert scheduler.rejected_total == 1

    def test_step_sampling(self):
        scheduler = ContinuousBatchingScheduler()
        scheduler.enqueue(self._session(0))
        scheduler.record_step(batch_size=4)
        assert list(scheduler.occupancy_samples) == [4]
        assert list(scheduler.queue_depth_samples) == [1]

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="positive batch width, got 0"):
            SchedulerPolicy(max_batch_size=0)
        with pytest.raises(ValueError, match="positive batch width, got -3"):
            SchedulerPolicy(max_batch_size=-3)
        with pytest.raises(ValueError, match="max_context must be >= 2"):
            SchedulerPolicy(max_context=1, block_size=1)
        with pytest.raises(ValueError):
            SchedulerPolicy(max_queue=0)
        with pytest.raises(ValueError, match="block_size must be >= 1"):
            SchedulerPolicy(block_size=0)
        with pytest.raises(ValueError, match="prefill_padding"):
            SchedulerPolicy(prefill_padding=-0.1)
        with pytest.raises(ValueError, match="max_prefixes"):
            SchedulerPolicy(max_prefixes=0)

    def test_policy_rejects_unaligned_max_context(self):
        with pytest.raises(ValueError, match=r"max_context \(50\) must be a "
                                             r"multiple of block_size \(16\)"):
            SchedulerPolicy(max_context=50)
        # Aligned contexts (and the model-default None) are accepted.
        SchedulerPolicy(max_context=48)
        SchedulerPolicy(max_context=50, block_size=10)
        SchedulerPolicy(max_context=None)

    def test_session_manager_requires_capacity(self, model):
        with pytest.raises(ValueError, match="max_slots"):
            SessionManager(model, max_slots=0)
        with pytest.raises(ValueError, match="prefill_padding"):
            SessionManager(model, max_slots=1, prefill_padding=-1.0)


# ---------------------------------------------------------------------- #
# Decision-request serving (the three task adapters)
# ---------------------------------------------------------------------- #
class TestDecisionServing:
    def test_vp_requests_batch_and_match_direct_predict(self, vp_data):
        from repro.core import VPAdapter

        setting, _, test = vp_data
        llm = build_llm("tiny-test", lora_rank=0, pretrained=False, seed=0)
        adapter = VPAdapter(llm, prediction_steps=setting.prediction_steps, seed=0)
        server = InferenceServer(adapters={"vp": adapter})
        samples = test[:6]
        handles = [server.submit(DecisionRequest(task="vp", payload=sample))
                   for sample in samples]
        server.run_until_idle()
        for sample, handle in zip(samples, handles):
            np.testing.assert_allclose(handle.result().viewport,
                                       adapter.predict(sample),
                                       atol=1e-9, rtol=0)
        stats = server.stats()
        assert stats.per_task == {"vp": 6}
        assert stats.mean_batch_occupancy > 1  # they actually shared forwards

    def test_abr_requests_match_direct_act(self, abr_setup, tiny_llm):
        from repro.abr.env import ABRObservation
        from repro.core import DecisionAdapter

        video, traces, _ = abr_setup
        state_dim = ABRObservation.flat_size(video.num_bitrates)
        adapter = DecisionAdapter(tiny_llm, state_dim=state_dim,
                                  action_dims=(video.num_bitrates,),
                                  context_window=4, head="abr", seed=0)
        server = InferenceServer(adapters={"abr": adapter})
        rng = np.random.default_rng(0)
        payloads = []
        for _ in range(5):
            window = 3
            payloads.append({
                "returns": rng.normal(size=(window, 1)),
                "states": rng.normal(size=(window, state_dim)),
                "actions": rng.integers(0, video.num_bitrates, size=(window, 1)),
            })
        handles = [server.submit(DecisionRequest(task="abr", payload=payload))
                   for payload in payloads]
        server.run_until_idle()
        for payload, handle in zip(payloads, handles):
            direct = adapter.act(payload["returns"], payload["states"], payload["actions"])
            assert handle.result().action == direct
            assert handle.result().bitrate == direct[0]

    def test_served_vp_predictor_wrapper_matches_direct(self, vp_data):
        from repro.core import VPAdapter
        from repro.serve import ServedVPPredictor

        setting, _, test = vp_data
        llm = build_llm("tiny-test", lora_rank=0, pretrained=False, seed=1)
        adapter = VPAdapter(llm, prediction_steps=setting.prediction_steps, seed=0)
        server = InferenceServer(adapters={"vp": adapter})
        predictor = ServedVPPredictor(server)
        sample = test[0]
        np.testing.assert_allclose(predictor.predict(sample), adapter.predict(sample),
                                   atol=1e-9, rtol=0)

    def test_predict_batch_rejects_mixed_saliency(self, vp_data):
        from repro.core import VPAdapter

        setting, _, test = vp_data
        llm = build_llm("tiny-test", lora_rank=0, pretrained=False, seed=1)
        adapter = VPAdapter(llm, prediction_steps=setting.prediction_steps, seed=0)
        import copy
        stripped = copy.copy(test[1])
        stripped.saliency = None
        with pytest.raises(ValueError, match="uniform saliency"):
            adapter.predict_batch([test[0], stripped])

    def test_serve_loop_failure_fails_pending_handles(self, model):
        # A model whose decode step raises must not hang clients: the serve
        # loop fails every pending handle with the original error.
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=2))
        boom = RuntimeError("injected decode failure")

        def exploding_step():
            raise boom

        server._manager.step = exploding_step
        with server:
            handles = [server.submit_generation(f"x{i}", max_new_tokens=4,
                                     stop_on_eos=False) for i in range(4)]
            for handle in handles:
                with pytest.raises(RuntimeError, match="injected decode failure"):
                    handle.result(timeout=30)
        assert not server.is_serving

    def test_serve_loop_crash_fails_queued_and_decision_requests(self, model):
        """The crash guard fails *everything* pending: queued generation
        sessions that were never admitted and undelivered decision requests,
        not only the sessions in flight when the loop died."""
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        boom = RuntimeError("injected decode failure")

        def exploding_step():
            raise boom

        server._manager.step = exploding_step
        # With one slot, three of these stay queued when the loop dies.
        handles = [server.submit_generation(f"q{i}", max_new_tokens=2,
                                 stop_on_eos=False) for i in range(4)]
        with server:
            for handle in handles:
                with pytest.raises(RuntimeError, match="injected decode failure"):
                    handle.result(timeout=30)
        assert not server.is_serving
        # The crash guard evicted the admitted session: no blocks leak.
        assert server._manager.cache.num_sessions == 0
        server._manager.cache.check_invariants(
            external_refs=server._manager.prefix.external_refs()
            if server._manager.prefix else None)

    def test_adapter_registration_guard(self):
        server = InferenceServer()
        with pytest.raises(ValueError, match="no task runtime registered"):
            server.submit(DecisionRequest(task="abr", payload={}))
        with pytest.raises(ValueError, match="unknown decision task"):
            server.register_adapter("generate", object())
        with pytest.raises(ValueError, match="reserved for"):
            server.register_task("generate", _DoublerRuntime())
        with pytest.raises(TypeError, match="must implement"):
            server.register_task("broken", object())


# ---------------------------------------------------------------------- #
# Typed request surface
# ---------------------------------------------------------------------- #
class TestTypedRequests:
    def test_generate_request_validation(self):
        with pytest.raises(ValueError, match="max_new_tokens"):
            GenerateRequest(prompt="x", max_new_tokens=0)
        with pytest.raises(ValueError, match="temperature"):
            GenerateRequest(prompt="x", temperature=-0.1)
        with pytest.raises(ValueError, match="deadline_s"):
            GenerateRequest(prompt="x", deadline_s=0.0)
        with pytest.raises(TypeError, match="priority"):
            GenerateRequest(prompt="x", priority="high")
        with pytest.raises(TypeError, match="prompt"):
            GenerateRequest(prompt=123)

    def test_decision_request_validation(self):
        with pytest.raises(TypeError, match="task"):
            DecisionRequest(task="")
        with pytest.raises(ValueError, match="deadline_s"):
            DecisionRequest(task="vp", deadline_s=-1.0)

    def test_requests_are_frozen(self):
        request = GenerateRequest(prompt="x")
        with pytest.raises(AttributeError):
            request.prompt = "y"
        decision = DecisionRequest(task="vp", payload=object())
        with pytest.raises(AttributeError):
            decision.priority = 3

    def test_submit_rejects_mixed_styles(self, model):
        server = InferenceServer(model)
        with pytest.raises(TypeError, match="carries all options"):
            server.submit(GenerateRequest(prompt="x"), max_new_tokens=4)
        with pytest.raises(TypeError, match="carries all options"):
            server.submit(DecisionRequest(task="vp", payload=1), "extra")


# ---------------------------------------------------------------------- #
# Streaming handles
# ---------------------------------------------------------------------- #
class TestStreaming:
    def test_stream_pieces_equal_result_text_sync(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=2))
        handles = [server.submit(GenerateRequest(prompt=f"stream {i}",
                                                 max_new_tokens=8,
                                                 stop_on_eos=False, stream=True))
                   for i in range(3)]
        for i, handle in enumerate(handles):
            pieces = list(handle.stream(timeout=60))  # sync: drives the engine
            result = handle.result()
            assert "".join(pieces) == result.text
            # One piece per committed token (special tokens decode to "").
            assert len(pieces) == len(result.token_ids)
            reference = generate(model, f"stream {i}", max_new_tokens=8,
                                 stop_on_eos=False)
            assert result.token_ids == reference.token_ids

    def test_stream_with_background_loop(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=4))
        with server:
            handle = server.submit(GenerateRequest(prompt="bg stream",
                                                   max_new_tokens=10,
                                                   stop_on_eos=False, stream=True))
            pieces = list(handle.stream(timeout=60))
        assert "".join(pieces) == handle.result().text

    def test_stream_many_consumers_threaded(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=4))
        texts = {}

        def consume(index, handle):
            texts[index] = "".join(handle.stream(timeout=60))

        with server:
            handles = [server.submit(GenerateRequest(prompt=f"c{i}",
                                                     max_new_tokens=6,
                                                     stop_on_eos=False,
                                                     stream=True))
                       for i in range(6)]
            threads = [threading.Thread(target=consume, args=(i, h))
                       for i, h in enumerate(handles)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for i, handle in enumerate(handles):
            assert texts[i] == handle.result().text

    def test_stream_requires_stream_flag(self, model):
        server = InferenceServer(model)
        handle = server.submit(GenerateRequest(prompt="x", max_new_tokens=2,
                                               stop_on_eos=False))
        with pytest.raises(RuntimeError, match="stream=True"):
            next(handle.stream())
        handle.result()

    def test_stream_surfaces_failure(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        boom = RuntimeError("injected decode failure")

        def exploding_step():
            raise boom

        server._manager.step = exploding_step
        handle = server.submit(GenerateRequest(prompt="x", max_new_tokens=4,
                                               stop_on_eos=False, stream=True))
        with server:
            with pytest.raises(RuntimeError, match="injected decode failure"):
                list(handle.stream(timeout=30))


# ---------------------------------------------------------------------- #
# Cancellation
# ---------------------------------------------------------------------- #
class TestCancellation:
    def test_cancel_queued_request(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        first = server.submit(GenerateRequest(prompt="first", max_new_tokens=6,
                                              stop_on_eos=False))
        server.step()  # admit `first` into the single slot
        queued = server.submit(GenerateRequest(prompt="queued", max_new_tokens=6,
                                               stop_on_eos=False))
        assert queued.cancel() is True
        assert queued.cancel() is False  # already terminal
        with pytest.raises(RequestCancelled):
            queued.result()
        assert queued.cancelled()
        server.run_until_idle()
        assert first.result().token_ids
        stats = server.stats()
        assert stats.cancelled == 1
        assert stats.requests_completed == 1  # cancelled one not counted

    def test_cancel_running_releases_blocks(self, model):
        server = InferenceServer(model, SchedulerPolicy(
            max_batch_size=2, block_size=4, enable_prefix_cache=False))
        handle = server.submit(GenerateRequest(prompt="a long prompt 123",
                                               max_new_tokens=200,
                                               stop_on_eos=False))
        for _ in range(3):
            server.step()
        manager = server._manager
        assert manager.cache.blocks_in_use > 0
        assert handle.cancel() is True
        assert manager.cache.num_sessions == 0
        assert manager.cache.blocks_in_use == 0
        manager.cache.check_invariants()
        with pytest.raises(RequestCancelled):
            handle.result()
        # The engine keeps serving after the cancellation.
        after = server.submit(GenerateRequest(prompt="after", max_new_tokens=3,
                                              stop_on_eos=False))
        server.run_until_idle()
        reference = generate(model, "after", max_new_tokens=3, stop_on_eos=False)
        assert after.result().token_ids == reference.token_ids

    def test_cancel_pending_decision(self):
        runtime = _DoublerRuntime()
        server = InferenceServer(runtimes={"double": runtime})
        keep = server.submit(DecisionRequest(task="double", payload=21))
        dropped = server.submit(DecisionRequest(task="double", payload=5))
        assert dropped.cancel() is True
        server.run_until_idle()
        assert keep.result() == 42
        with pytest.raises(RequestCancelled):
            dropped.result()
        assert runtime.batches == [1]  # the cancelled request never executed

    def test_randomized_admit_cancel_decode_interleaving(self, model):
        """Pool invariants hold at every point of a random admit/cancel/decode
        interleaving, and surviving streams still match standalone generate."""
        rng = np.random.default_rng(42)
        server = InferenceServer(model, SchedulerPolicy(
            max_batch_size=3, block_size=4, prefill_padding=0.25))
        manager = server._manager
        prompts = {}
        handles = {}
        next_id = 0

        def check():
            manager.cache.check_invariants(
                external_refs=manager.prefix.external_refs()
                if manager.prefix else None)

        for step in range(150):
            action = rng.random()
            open_handles = [h for h in handles.values() if not h.done()]
            if action < 0.3 and len(handles) < 20:
                prompt = "".join(rng.choice(list("abc 123."))
                                 for _ in range(int(rng.integers(1, 20))))
                prompts[next_id] = prompt
                handles[next_id] = server.submit(GenerateRequest(
                    prompt=prompt, max_new_tokens=int(rng.integers(2, 10)),
                    stop_on_eos=False))
                next_id += 1
            elif action < 0.45 and open_handles:
                victim = open_handles[int(rng.integers(len(open_handles)))]
                victim.cancel()
            else:
                server.step()
            check()
        server.run_until_idle()
        check()
        assert manager.cache.num_sessions == 0
        cancelled = finished = 0
        for key, handle in handles.items():
            assert handle.done()
            try:
                result = handle.result()
            except RequestCancelled:
                cancelled += 1
                continue
            finished += 1
            reference = generate(model, prompts[key],
                                 max_new_tokens=result.num_inferences,
                                 stop_on_eos=False)
            assert result.token_ids == reference.token_ids
        # The interleaving really exercised both exits.
        assert cancelled >= 3 and finished >= 3
        stats = server.stats()
        assert stats.cancelled == cancelled


# ---------------------------------------------------------------------- #
# Deadlines
# ---------------------------------------------------------------------- #
class TestDeadlines:
    def test_deadline_expires_in_queue(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        blocker = server.submit(GenerateRequest(prompt="blocker",
                                                max_new_tokens=40,
                                                stop_on_eos=False))
        server.step()  # occupy the single slot
        doomed = server.submit(GenerateRequest(prompt="doomed", max_new_tokens=4,
                                               stop_on_eos=False,
                                               deadline_s=0.005))
        time.sleep(0.02)
        server.run_until_idle()
        with pytest.raises(DeadlineExceeded, match="while queued"):
            doomed.result()
        assert doomed.metrics.admitted_at is None  # never admitted
        assert doomed.metrics.queue_seconds > 0  # queued lifetime reported
        assert blocker.result().token_ids
        stats = server.stats()
        assert stats.expired == 1

    def test_deadline_expires_mid_decode(self, model):
        server = InferenceServer(model, SchedulerPolicy(
            max_batch_size=2, enable_prefix_cache=False))
        handle = server.submit(GenerateRequest(prompt="slow", max_new_tokens=10000,
                                               stop_on_eos=False,
                                               deadline_s=0.02))
        server.step()  # admit + commit at least one token before the deadline
        time.sleep(0.05)  # let the deadline pass mid-flight
        with pytest.raises(DeadlineExceeded, match="mid-decode"):
            handle.result(timeout=30)
        assert handle.metrics.tokens_generated > 0  # it really decoded first
        manager = server._manager
        assert manager.cache.num_sessions == 0  # blocks reclaimed on expiry
        assert manager.cache.blocks_in_use == 0
        manager.cache.check_invariants()
        assert server.stats().expired == 1

    def test_decision_deadline_expires(self):
        runtime = _DoublerRuntime()
        server = InferenceServer(runtimes={"double": runtime})
        handle = server.submit(DecisionRequest(task="double", payload=1,
                                               deadline_s=0.005))
        time.sleep(0.02)
        server.run_until_idle()
        with pytest.raises(DeadlineExceeded):
            handle.result()
        assert runtime.batches == []  # expired before execution


# ---------------------------------------------------------------------- #
# Priority-aware admission
# ---------------------------------------------------------------------- #
class TestPriorityAdmission:
    def _session(self, i, priority=0):
        return GenerationSession(session_id=i, prompt=f"s{i}", priority=priority)

    def test_higher_class_admitted_first_fifo_within_class(self):
        scheduler = ContinuousBatchingScheduler(SchedulerPolicy(max_batch_size=8))
        for i, priority in enumerate([0, 2, 0, 1, 2]):
            assert scheduler.enqueue(self._session(i, priority))
        order = [s.session_id for s in scheduler.admissions(free_slots=5)]
        # Classes high→low; submission order inside each class.
        assert order == [1, 4, 3, 0, 2]

    def test_aging_prevents_starvation(self):
        scheduler = ContinuousBatchingScheduler(SchedulerPolicy(
            max_batch_size=8, priority_aging_s=0.1))
        assert scheduler.enqueue(self._session(0, priority=0))
        assert scheduler.enqueue(self._session(1, priority=2))
        # Simulate the low-priority request having waited 0.5s: its effective
        # class (0 + 5) now outranks the fresh high-priority one.
        scheduler._queue[0].enqueued_at -= 0.5
        order = [s.session_id for s in scheduler.admissions(free_slots=2)]
        assert order == [0, 1]

    def test_aging_disabled_keeps_strict_classes(self):
        scheduler = ContinuousBatchingScheduler(SchedulerPolicy(
            max_batch_size=8, priority_aging_s=None))
        scheduler.enqueue(self._session(0, priority=0))
        scheduler.enqueue(self._session(1, priority=1))
        scheduler._queue[0].enqueued_at -= 1e6  # ancient, but no aging
        order = [s.session_id for s in scheduler.admissions(free_slots=2)]
        assert order == [1, 0]

    def test_policy_rejects_bad_aging(self):
        with pytest.raises(ValueError, match="priority_aging_s"):
            SchedulerPolicy(priority_aging_s=0.0)
        SchedulerPolicy(priority_aging_s=None)  # explicit off is fine

    def test_engine_priority_over_fifo(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        blocker = server.submit(GenerateRequest(prompt="blk", max_new_tokens=2,
                                                stop_on_eos=False))
        server.step()  # admit the blocker; everything below queues behind it
        low_a = server.submit(GenerateRequest(prompt="la", max_new_tokens=2,
                                              stop_on_eos=False, priority=0))
        low_b = server.submit(GenerateRequest(prompt="lb", max_new_tokens=2,
                                              stop_on_eos=False, priority=0))
        high = server.submit(GenerateRequest(prompt="hi", max_new_tokens=2,
                                             stop_on_eos=False, priority=2))
        server.run_until_idle()
        finished = {name: handle.metrics.finished_at
                    for name, handle in [("blocker", blocker), ("low_a", low_a),
                                         ("low_b", low_b), ("high", high)]}
        assert finished["blocker"] < finished["high"] < finished["low_a"]
        assert finished["low_a"] < finished["low_b"]  # FIFO within a class
        stats = server.stats()
        assert set(stats.queue_by_priority) == {0, 2}
        assert stats.queue_by_priority[0]["count"] == 3


# ---------------------------------------------------------------------- #
# Pluggable task runtimes
# ---------------------------------------------------------------------- #
class TestCustomTaskRuntime:
    def test_register_task_serves_novel_task(self):
        runtime = _DoublerRuntime()
        server = InferenceServer()
        server.register_task("double", runtime)
        handles = [server.submit(DecisionRequest(task="double", payload=i))
                   for i in range(4)]
        server.run_until_idle()
        assert [h.result() for h in handles] == [0, 2, 4, 6]
        assert runtime.batches == [4]  # one grouped batch, not 4 calls
        assert server.stats().per_task == {"double": 4}

    def test_runtimes_constructor_argument(self):
        server = InferenceServer(runtimes={"double": _DoublerRuntime()})
        handle = server.submit(DecisionRequest(task="double", payload=8))
        server.run_until_idle()
        assert handle.result() == 16

    def test_unhashable_group_key_fails_at_submit_not_in_the_loop(self):
        class ListKey:
            def group_key(self, request):
                return [1, 2]  # unhashable

            def execute_batch(self, requests):
                return [None] * len(requests)

        server = InferenceServer(runtimes={"bad": ListKey(),
                                           "ok": _DoublerRuntime()})
        with pytest.raises(TypeError, match="unhashable"):
            server.submit(DecisionRequest(task="bad", payload=1))
        # The engine is unharmed: unrelated traffic still serves.
        healthy = server.submit(DecisionRequest(task="ok", payload=3))
        server.run_until_idle()
        assert healthy.result() == 6

    def test_runtime_result_count_mismatch_fails_group(self):
        class Broken:
            def group_key(self, request):
                return ()

            def execute_batch(self, requests):
                return []  # wrong length

        server = InferenceServer(runtimes={"bad": Broken()})
        handle = server.submit(DecisionRequest(task="bad", payload=1))
        server.run_until_idle()
        with pytest.raises(RuntimeError, match="returned 0 results"):
            handle.result()


# ---------------------------------------------------------------------- #
# Deprecated stringly-typed submit shim
# ---------------------------------------------------------------------- #
class TestDeprecatedSubmitShim:
    def test_generate_shim_warns_and_matches_typed(self, model):
        server = InferenceServer(model)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = server.submit("generate", "shim me", max_new_tokens=5,  # repro: noqa[REP004] the pinned shim test
                                   stop_on_eos=False)
        typed = server.submit(GenerateRequest(prompt="shim me", max_new_tokens=5,
                                              stop_on_eos=False))
        server.run_until_idle()
        assert legacy.result().token_ids == typed.result().token_ids

    def test_decision_shim_unwraps_typed_results(self, vp_data):
        from repro.core import VPAdapter

        setting, _, test = vp_data
        llm = build_llm("tiny-test", lora_rank=0, pretrained=False, seed=0)
        adapter = VPAdapter(llm, prediction_steps=setting.prediction_steps, seed=0)
        server = InferenceServer(adapters={"vp": adapter})
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = server.submit("vp", test[0])  # repro: noqa[REP004] the pinned shim test
        server.run_until_idle()
        # The shim preserves the old contract: a bare ndarray, not VPResult.
        prediction = legacy.result()
        assert isinstance(prediction, np.ndarray)
        np.testing.assert_allclose(prediction, adapter.predict(test[0]),
                                   atol=1e-9, rtol=0)

    def test_typed_submissions_do_not_warn(self, model):
        import warnings as warnings_module

        server = InferenceServer(model)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", DeprecationWarning)
            handle = server.submit(GenerateRequest(prompt="ok", max_new_tokens=2,
                                                   stop_on_eos=False))
        server.run_until_idle()
        assert handle.result().token_ids


# ---------------------------------------------------------------------- #
# stop() semantics
# ---------------------------------------------------------------------- #
class TestStopSemantics:
    def test_stop_drain_completes_queued_work_without_loop(self, model):
        # Never-started server: drain must still run the queue down.
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        handles = [server.submit(GenerateRequest(prompt=f"q{i}", max_new_tokens=3,
                                                 stop_on_eos=False))
                   for i in range(4)]
        server.stop(drain=True)
        for i, handle in enumerate(handles):
            reference = generate(model, f"q{i}", max_new_tokens=3,
                                 stop_on_eos=False)
            assert handle.result().token_ids == reference.token_ids

    def test_stop_drain_completes_queued_work_with_loop(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        server.start()
        handles = [server.submit(GenerateRequest(prompt=f"d{i}", max_new_tokens=3,
                                                 stop_on_eos=False))
                   for i in range(5)]
        server.stop(drain=True)
        assert all(handle.result().token_ids for handle in handles)

    def test_stop_no_drain_fails_queued_fast(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        server.start()
        handles = [server.submit(GenerateRequest(prompt=f"n{i}",
                                                 max_new_tokens=400,
                                                 stop_on_eos=False))
                   for i in range(6)]
        server.stop(drain=False)
        for handle in handles:
            assert handle.done()  # nothing left hanging
            with pytest.raises(RuntimeError, match="server stopped"):
                handle.result(timeout=10)

    def test_stop_no_drain_fails_pending_decisions(self):
        server = InferenceServer(runtimes={"double": _DoublerRuntime()})
        handle = server.submit(DecisionRequest(task="double", payload=1))
        server.stop(drain=False)
        with pytest.raises(RuntimeError, match="server stopped"):
            handle.result()


# ---------------------------------------------------------------------- #
# Review regressions: stream re-iteration, inactivity timeout, decision
# priority ordering
# ---------------------------------------------------------------------- #
class TestStreamLifecycleEdges:
    def test_reiterating_a_drained_stream_terminates(self, model):
        server = InferenceServer(model)
        handle = server.submit(GenerateRequest(prompt="again", max_new_tokens=4,
                                               stop_on_eos=False, stream=True))
        first = list(handle.stream(timeout=60))
        assert "".join(first) == handle.result().text
        # A second iteration must return immediately (no busy-loop), empty.
        assert list(handle.stream(timeout=60)) == []

    def test_drained_stream_reraises_failure(self, model):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        handle = server.submit(GenerateRequest(prompt="gone", max_new_tokens=4,
                                               stop_on_eos=False, stream=True))
        assert handle.cancel() is True
        for _ in range(2):  # both the sentinel pass and the drained pass
            with pytest.raises(RequestCancelled):
                list(handle.stream(timeout=10))

    def test_sync_stream_does_not_throttle_decoding(self, model):
        # Sync drive must step the engine immediately on an empty queue, not
        # sleep a poll interval per token (regression: 50ms/token throttle).
        server = InferenceServer(model)
        handle = server.submit(GenerateRequest(prompt="fast", max_new_tokens=30,
                                               stop_on_eos=False, stream=True))
        start = time.perf_counter()
        pieces = list(handle.stream(timeout=60))
        elapsed = time.perf_counter() - start
        assert len(pieces) == 30
        assert elapsed < 0.5, f"sync streaming took {elapsed:.2f}s for 30 tokens"

    def test_stream_timeout_bounds_inactivity_not_duration(self, model):
        # A stalled engine (never stepped, no background loop would be the
        # hang case; here we fake stall by exhausting a done handle's twin):
        # timeout measures the gap since the last piece, so a drained-but-
        # unfinished stream raises once nothing arrives for `timeout`.
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        handle = server.submit(GenerateRequest(prompt="slowly", max_new_tokens=4,
                                               stop_on_eos=False, stream=True))

        # Swap in a pump that never makes progress to simulate a stall.
        server._pump = lambda h: None
        start = time.perf_counter()
        with pytest.raises(TimeoutError, match="produced nothing"):
            list(handle.stream(timeout=0.2))
        assert time.perf_counter() - start < 5.0
        server.run_until_idle()
        assert handle.result().token_ids


def _admit_chunked(model, paged, prompt_ids, chunk):
    """Prefill ``prompt_ids`` into ``paged`` chunk by chunk; return the
    session id, the resumable prefill cache and the final-position logits."""
    cache = model.init_cache()
    sid = None
    logits = None
    for start in range(0, len(prompt_ids), chunk):
        piece = np.asarray(prompt_ids[start:start + chunk], dtype=np.int64)[None, :]
        logits = model.forward_incremental(piece, cache)
        if sid is None:
            sid = paged.admit_rows(cache, rows=[0],
                                   lengths=[min(chunk, len(prompt_ids))])[0]
        else:
            paged.extend_session(sid, cache)
        paged.check_invariants()
    return sid, cache, logits.data[0, -1]


# ---------------------------------------------------------------------- #
# Chunked prefill: exact parity with one-shot prefill, lifecycle, budgets
# ---------------------------------------------------------------------- #
class TestChunkedPrefill:
    #: Chunk sizes deliberately straddle the block size (4 in these tests):
    #: smaller than a block, equal, not a divisor of the block, larger and
    #: non-divisible, and larger than the whole prompt (degenerate one-shot).
    CHUNKS = (1, 3, 4, 6, 64)

    def test_chunked_admission_exact_logit_parity(self, model):
        """Chunked prefill + decode == one-shot prefill + decode, exactly."""
        rng = np.random.default_rng(5)
        vocab = model.tokenizer.vocab_size
        prompt = rng.integers(0, vocab, size=23).tolist()
        for chunk in self.CHUNKS:
            paged = model.init_paged_cache(max_sessions=4, block_size=4)
            with no_grad():
                one_shot_cache, _ = _prefill(model, prompt)
                reference = model.forward_incremental(
                    np.asarray(prompt, dtype=np.int64)[None, :],
                    model.init_cache()).data[0, -1]
                sid_ref = paged.admit(one_shot_cache)
                sid_chunked, _, last_logits = _admit_chunked(
                    model, paged, prompt, chunk)
                np.testing.assert_allclose(last_logits, reference, atol=1e-9,
                                           rtol=0, err_msg=f"chunk={chunk}")
                # Both sessions now decode together; every step must agree.
                token = int(np.argmax(last_logits))
                ids = np.asarray([sid_ref, sid_chunked], dtype=np.int64)
                for _ in range(6):
                    out = model.forward_step(np.asarray([token, token]),
                                             paged, ids).data[:, -1, :]
                    np.testing.assert_allclose(out[1], out[0], atol=1e-9,
                                               rtol=0, err_msg=f"chunk={chunk}")
                    token = int(np.argmax(out[0]))
                    paged.check_invariants()

    def test_extend_session_copy_on_write_on_forked_tail(self, model):
        """Extending a session whose partial tail is shared splits it first."""
        rng = np.random.default_rng(9)
        vocab = model.tokenizer.vocab_size
        prompt = rng.integers(0, vocab, size=10).tolist()
        paged = model.init_paged_cache(max_sessions=4, block_size=4)
        with no_grad():
            cache = model.init_cache()
            model.forward_incremental(
                np.asarray(prompt[:6], dtype=np.int64)[None, :], cache)
            sid = paged.admit_rows(cache, rows=[0], lengths=[6])[0]
            clone = paged.fork(sid)  # shares the partially filled tail block
            shared_tail = paged.table(sid)[-1]
            model.forward_incremental(
                np.asarray(prompt[6:], dtype=np.int64)[None, :], cache)
            paged.extend_session(sid, cache)
            # The original got its own tail copy; the clone kept the old one.
            assert paged.table(sid)[1] != shared_tail
            assert paged.table(clone)[-1] == shared_tail
            paged.check_invariants()
            # Both decode exactly like independent references.
            ref_full, _ = _prefill(model, prompt)
            ref_part, _ = _prefill(model, prompt[:6])
            for token in (3, 7):
                out = model.forward_step(np.asarray([token, token]), paged,
                                         np.asarray([sid, clone])).data[:, -1, :]
                exp_full = model.forward_incremental(
                    np.asarray([[token]], dtype=np.int64), ref_full).data[0, -1]
                exp_part = model.forward_incremental(
                    np.asarray([[token]], dtype=np.int64), ref_part).data[0, -1]
                np.testing.assert_allclose(out[0], exp_full, atol=1e-9, rtol=0)
                np.testing.assert_allclose(out[1], exp_part, atol=1e-9, rtol=0)
                paged.check_invariants()

    def test_extend_session_validation(self, model):
        paged = model.init_paged_cache(max_sessions=2, block_size=4)
        with no_grad():
            cache, _ = _prefill(model, [1, 2, 3])
            sid = paged.admit(cache)
            with pytest.raises(ValueError, match="cannot extend"):
                paged.extend_session(sid, cache)  # nothing new in the cache
            with pytest.raises(ValueError, match="not live"):
                paged.extend_session(sid + 999, cache)
            paged.check_invariants()

    @pytest.mark.parametrize("chunk,budget", [(1, None), (3, 8), (4, 6), (6, None)])
    def test_served_chunked_streams_match_generate(self, model, chunk, budget):
        """Engine-level: chunked policies reproduce standalone generate()."""
        server = InferenceServer(model, SchedulerPolicy(
            max_batch_size=3, block_size=4, prefill_chunk_size=chunk,
            step_token_budget=budget))
        prompts = ["ab", "a considerably longer prompt spanning many chunks",
                   "mid size prompt", "x", "another long one 0123456789 qrstuv"]
        handles = [server.submit(GenerateRequest(prompt=p, max_new_tokens=6,
                                                 stop_on_eos=False))
                   for p in prompts]
        server.run_until_idle()
        for prompt, handle in zip(prompts, handles):
            reference = generate(model, prompt, max_new_tokens=6,
                                 stop_on_eos=False)
            assert handle.result().token_ids == reference.token_ids
        manager = server._manager
        manager.cache.check_invariants(
            external_refs=manager.prefix.external_refs()
            if manager.prefix else None)
        assert manager.cache.num_sessions == 0 and manager.num_prefilling == 0

    def test_chunked_prefill_composes_with_prefix_cache(self, model):
        """A chunked tail behind a shared cached head stays exact."""
        preamble = "predict the bandwidth: "
        server = InferenceServer(model, SchedulerPolicy(
            max_batch_size=2, block_size=4, prefill_chunk_size=3,
            step_token_budget=8))
        server.register_prefix(preamble)
        prompt = preamble + "history 1.0 2.0 3.0 4.0"
        handle = server.submit(GenerateRequest(prompt=prompt, max_new_tokens=6,
                                               stop_on_eos=False))
        server.run_until_idle()
        reference = generate(model, prompt, max_new_tokens=6, stop_on_eos=False)
        assert handle.result().token_ids == reference.token_ids
        stats = server.stats()
        assert stats.prefix_hits == 1
        assert handle.metrics.prefix_tokens > 0
        manager = server._manager
        manager.cache.check_invariants(
            external_refs=manager.prefix.external_refs())

    def test_long_prompt_does_not_stall_in_flight_decode(self, model):
        """Decode sessions keep committing tokens between prefill chunks."""
        server = InferenceServer(model, SchedulerPolicy(
            max_batch_size=2, block_size=4, prefill_chunk_size=4,
            enable_prefix_cache=False))
        short = server.submit(GenerateRequest(prompt="hi", max_new_tokens=40,
                                              stop_on_eos=False))
        server.step()  # admit + first decode of the short session
        long_prompt = "z" * 40  # 41 tokens with BOS: many chunks of 4
        long = server.submit(GenerateRequest(prompt=long_prompt,
                                             max_new_tokens=4,
                                             stop_on_eos=False))
        manager = server._manager
        tokens_before = short._session.metrics.tokens_generated
        prefilling_steps = 0
        for _ in range(30):
            server.step()
            if long._session.state == "prefilling":
                prefilling_steps += 1
            if long._session.state in ("running", "finished"):
                break
        # The long prompt really was admitted across several steps, and the
        # short session kept producing a token on every one of them.
        assert prefilling_steps >= 5
        assert (short._session.metrics.tokens_generated - tokens_before
                >= prefilling_steps)
        server.run_until_idle()
        reference = generate(model, long_prompt, max_new_tokens=4,
                             stop_on_eos=False)
        assert long.result().token_ids == reference.token_ids
        assert short.result().token_ids
        manager.cache.check_invariants()

    def test_stream_first_token_arrives_when_chunked_prefill_completes(self, model):
        server = InferenceServer(model, SchedulerPolicy(
            max_batch_size=2, block_size=4, prefill_chunk_size=4,
            step_token_budget=8, enable_prefix_cache=False))
        handle = server.submit(GenerateRequest(prompt="s" * 30, max_new_tokens=6,
                                               stop_on_eos=False, stream=True))
        pieces = list(handle.stream(timeout=60))  # sync drive
        result = handle.result()
        assert "".join(pieces) == result.text
        assert len(pieces) == len(result.token_ids)
        reference = generate(model, "s" * 30, max_new_tokens=6,
                             stop_on_eos=False)
        assert result.token_ids == reference.token_ids

    def test_step_token_budget_bounds_per_step_prefill(self, model):
        server = InferenceServer(model, SchedulerPolicy(
            max_batch_size=2, block_size=4, prefill_chunk_size=4,
            step_token_budget=4, enable_prefix_cache=False))
        handle = server.submit(GenerateRequest(prompt="y" * 20, max_new_tokens=2,
                                               stop_on_eos=False))
        session = handle._session
        progress = []
        while session.state in ("queued", "prefilling") and len(progress) < 20:
            server.step()
            progress.append(session.prompt_pos)
        # 21 prompt tokens at <= 4 per step: at least 6 prefill steps, each
        # advancing by at most the chunk/budget grant.
        deltas = [b - a for a, b in zip([0] + progress, progress)]
        assert max(deltas) <= 4
        assert sum(1 for d in deltas if d) >= 6
        server.run_until_idle()
        assert handle.result().token_ids

    def test_cancel_and_deadline_during_prefill_release_blocks(self, model):
        server = InferenceServer(model, SchedulerPolicy(
            max_batch_size=2, block_size=4, prefill_chunk_size=4,
            enable_prefix_cache=False))
        cancelled = server.submit(GenerateRequest(prompt="c" * 40,
                                                  max_new_tokens=4,
                                                  stop_on_eos=False))
        server.step()
        assert cancelled._session.state == "prefilling"
        assert server._manager.cache.blocks_in_use > 0
        assert cancelled.cancel() is True
        assert server._manager.cache.blocks_in_use == 0
        assert server._manager.num_prefilling == 0
        server._manager.cache.check_invariants()
        with pytest.raises(RequestCancelled):
            cancelled.result()

        doomed = server.submit(GenerateRequest(prompt="d" * 40,
                                               max_new_tokens=4,
                                               stop_on_eos=False,
                                               deadline_s=0.01))
        server.step()
        assert doomed._session.state == "prefilling"
        time.sleep(0.02)
        server.run_until_idle()
        with pytest.raises(DeadlineExceeded):
            doomed.result()
        assert server._manager.cache.blocks_in_use == 0
        server._manager.cache.check_invariants()

    def test_randomized_chunked_admit_decode_cancel_evict(self, model):
        """Pool invariants hold through a random chunked-prefill interleaving
        and every surviving stream still matches standalone generate."""
        rng = np.random.default_rng(77)
        server = InferenceServer(model, SchedulerPolicy(
            max_batch_size=3, block_size=4, prefill_chunk_size=3,
            step_token_budget=10, prefill_padding=0.25))
        manager = server._manager
        prompts, handles = {}, {}
        next_id = 0
        saw_prefilling = 0

        def check():
            manager.cache.check_invariants(
                external_refs=manager.prefix.external_refs()
                if manager.prefix else None)

        for _ in range(180):
            action = rng.random()
            open_handles = [h for h in handles.values() if not h.done()]
            if action < 0.3 and len(handles) < 24:
                length = int(rng.integers(1, 40))  # many prompts span chunks
                prompt = "".join(rng.choice(list("abc 123.")) for _ in range(length))
                prompts[next_id] = prompt
                handles[next_id] = server.submit(GenerateRequest(
                    prompt=prompt, max_new_tokens=int(rng.integers(2, 8)),
                    stop_on_eos=False))
                next_id += 1
            elif action < 0.45 and open_handles:
                victim = open_handles[int(rng.integers(len(open_handles)))]
                victim.cancel()
            else:
                server.step()
            saw_prefilling += manager.num_prefilling
            check()
        server.run_until_idle()
        check()
        assert manager.cache.num_sessions == 0 and manager.num_prefilling == 0
        assert saw_prefilling > 0  # chunked admission really interleaved
        cancelled = finished = 0
        for key, handle in handles.items():
            assert handle.done()
            try:
                result = handle.result()
            except RequestCancelled:
                cancelled += 1
                continue
            finished += 1
            reference = generate(model, prompts[key],
                                 max_new_tokens=result.num_inferences,
                                 stop_on_eos=False)
            assert result.token_ids == reference.token_ids
        assert cancelled >= 3 and finished >= 5

    def test_prefix_eviction_between_match_and_first_chunk_falls_back(self, model):
        """Review regression: a budget-starved session whose matched head is
        LRU-evicted before its first chunk must cold-prefill, not seed from
        pool blocks that now hold a different head's K/V."""
        from repro.serve.session import PREFILLING

        manager = SessionManager(model, max_slots=2, block_size=4,
                                 max_prefixes=1)
        entry = manager.register_prefix("shared head abc ")
        prompt = "shared head abc tail 12345"
        session = GenerationSession(session_id=1, prompt=prompt,
                                    max_new_tokens=4, stop_on_eos=False)
        manager._prepare_prompt(session)
        assert session.prefix_entry is entry and session.prompt_pos > 0
        # Simulate the grant-0 window: the session sits PREFILLING with no
        # chunk admitted while another registration evicts its head.
        session.state = PREFILLING
        manager.prefilling[session.session_id] = session
        manager.register_prefix("a different head!")  # LRU-evicts `entry`
        assert not manager.prefix.is_live(entry)
        while session.state == PREFILLING:
            manager.prefill_chunk(session, 5)
        assert session.metrics.prefix_tokens == 0  # reuse lost, not corrupted
        while manager.num_running:
            manager.step()
        reference = generate(model, prompt, max_new_tokens=4, stop_on_eos=False)
        assert session.generated == reference.token_ids
        manager.cache.check_invariants(
            external_refs=manager.prefix.external_refs())

    def test_budget_pressure_defers_admission_instead_of_zero_grants(self, model):
        """Review regression: while the budget is consumed by an in-flight
        prefill, later arrivals stay in the priority queue (where aging and
        priority ordering apply) instead of being admitted with zero-token
        grants that hoard batch slots in FIFO order."""
        server = InferenceServer(model, SchedulerPolicy(
            max_batch_size=4, block_size=4, prefill_chunk_size=4,
            step_token_budget=4, enable_prefix_cache=False))
        first = server.submit(GenerateRequest(prompt="f" * 30, max_new_tokens=2,
                                              stop_on_eos=False))
        server.step()
        assert first._session.state == "prefilling"
        low = server.submit(GenerateRequest(prompt="low", max_new_tokens=2,
                                            stop_on_eos=False, priority=0))
        high = server.submit(GenerateRequest(prompt="high", max_new_tokens=2,
                                             stop_on_eos=False, priority=2))
        # While `first`'s chunks consume the whole budget, neither arrival
        # may leave the queue: every admitted session must make progress.
        while first._session.state == "prefilling":
            server.step()
            for handle in (low, high):
                session = handle._session
                assert (session.state == "queued"
                        or session.prompt_pos > 0), (
                    "session admitted without receiving any prefill tokens")
        server.run_until_idle()
        # The high-priority arrival overtook the earlier low-priority one.
        assert high.metrics.finished_at < low.metrics.finished_at
        for handle, prompt in ((low, "low"), (high, "high")):
            reference = generate(model, prompt, max_new_tokens=2,
                                 stop_on_eos=False)
            assert handle.result().token_ids == reference.token_ids

    def test_prefix_eviction_before_one_shot_readmission_falls_back(self, model):
        """Review regression: a deferred session re-admitted through the
        banded one-shot path must also re-validate its matched head."""
        manager = SessionManager(model, max_slots=2, block_size=4,
                                 max_prefixes=1)
        entry = manager.register_prefix("shared head abc ")
        prompt = "shared head abc Z"
        session = GenerationSession(session_id=1, prompt=prompt,
                                    max_new_tokens=3, stop_on_eos=False)
        manager._prepare_prompt(session)  # matched, then deferred by budget
        assert session.prefix_entry is entry
        manager.register_prefix("another head entirely")  # LRU-evicts it
        manager.admit_many([session])  # one-shot path must cold-prefill
        assert session.metrics.prefix_tokens == 0
        while manager.num_running:
            manager.step()
        reference = generate(model, prompt, max_new_tokens=3, stop_on_eos=False)
        assert session.generated == reference.token_ids
        manager.cache.check_invariants(
            external_refs=manager.prefix.external_refs())

    def test_requeue_front_preserves_wait_and_fifo_position(self):
        """Review regression: a budget-deferred session goes back to the
        *front* of its class with its original wait, so priority aging and
        FIFO ties are not reset by the deferral."""
        scheduler = ContinuousBatchingScheduler(SchedulerPolicy(
            max_batch_size=8, max_queue=2))
        first = GenerationSession(session_id=1, prompt="a")
        second = GenerationSession(session_id=2, prompt="b")
        assert scheduler.enqueue(first) and scheduler.enqueue(second)
        popped = scheduler.admissions(2)
        assert popped == [first, second]
        later = GenerationSession(session_id=3, prompt="c")
        assert scheduler.enqueue(later)
        # Requeue as the engine does: reversed, so `first` keeps the
        # earliest effective seq.  The queue bound does not apply.
        scheduler.requeue_front(second)
        scheduler.requeue_front(first)
        assert scheduler.queue_depth == 3
        entries = {e.session.session_id: e for e in scheduler._queue}
        # Aging resumes from the original submission time, not from now.
        assert entries[1].enqueued_at == first.metrics.submitted_at
        order = [s.session_id for s in scheduler.admissions(3)]
        assert order == [1, 2, 3]

    def test_one_token_tail_with_one_budget_token_defers(self, model):
        """Review regression: a new session whose whole remaining tail is one
        token needs TWO budget tokens (prefill + same-step decode row); with
        only one left it must stay QUEUED — deferred, holding no slot — not
        enter PREFILLING at zero progress."""
        manager = SessionManager(model, max_slots=4, block_size=4)
        manager.register_prefix("head text ")
        session = GenerationSession(session_id=1, prompt="head text X",
                                    max_new_tokens=2, stop_on_eos=False)
        spent, terminal, failures, deferred = manager.prefill_step(
            [session], chunk_size=4, token_budget=1)
        assert deferred == [session] and not terminal and not failures
        assert session.state == "queued" and session.slot is None
        assert manager.num_prefilling == 0 and spent == 0
        # With two tokens of budget the same session completes one-shot.
        spent, terminal, failures, deferred = manager.prefill_step(
            [session], chunk_size=4, token_budget=2)
        assert not deferred and session.state == "running" and spent == 2
        while manager.num_running:
            manager.step()
        reference = generate(model, "head text X", max_new_tokens=2,
                             stop_on_eos=False)
        assert session.generated == reference.token_ids
        manager.cache.check_invariants(
            external_refs=manager.prefix.external_refs())

    def test_budget_policy_validation_and_math(self):
        with pytest.raises(ValueError, match="prefill_chunk_size"):
            SchedulerPolicy(prefill_chunk_size=0)
        with pytest.raises(ValueError, match="step_token_budget"):
            SchedulerPolicy(prefill_chunk_size=4, step_token_budget=0)
        # A budget of 1 can never admit (prefill + same-step decode is 2).
        with pytest.raises(ValueError, match="step_token_budget must be >= 2"):
            SchedulerPolicy(prefill_chunk_size=4, step_token_budget=1)
        SchedulerPolicy(prefill_chunk_size=4, step_token_budget=2)
        with pytest.raises(ValueError, match="requires prefill_chunk_size"):
            SchedulerPolicy(step_token_budget=32)
        scheduler = ContinuousBatchingScheduler(SchedulerPolicy(
            prefill_chunk_size=8, step_token_budget=24))
        # Decode rows spend one token each before prefill sees the budget.
        assert scheduler.prefill_budget(decode_rows=0) == 24
        assert scheduler.prefill_budget(decode_rows=10) == 14
        assert scheduler.prefill_budget(decode_rows=30) == 0
        unbounded = ContinuousBatchingScheduler(SchedulerPolicy(
            prefill_chunk_size=8))
        assert unbounded.prefill_budget(decode_rows=10) is None


# ---------------------------------------------------------------------- #
# prepare_step gather-plan caching (decode hot path)
# ---------------------------------------------------------------------- #
class TestPrepareStepPlanCache:
    def test_steady_decode_reuses_gather_tables(self, model):
        paged = model.init_paged_cache(max_sessions=4, block_size=8)
        with no_grad():
            cache_a, token_a = _prefill(model, [1, 2, 3])
            cache_b, token_b = _prefill(model, [4, 5, 6, 7])
            sid_a = paged.admit(cache_a)
            sid_b = paged.admit(cache_b)
            ids = np.asarray([sid_a, sid_b], dtype=np.int64)
            tokens = np.asarray([token_a, token_b])
            model.forward_step(tokens, paged, ids)  # builds the plan
            rebuilds = paged.table_rebuilds
            updates = paged.table_row_updates
            # Lengths are now 4 and 5; the next 3 steps stay inside the
            # current tail blocks: the cached plan must be reused untouched.
            for _ in range(3):
                model.forward_step(tokens, paged, ids)
                paged.check_invariants()
            assert paged.table_rebuilds == rebuilds
            assert paged.table_row_updates == updates
            # Step to lengths 8/9: session A crosses a block boundary; that
            # refreshes exactly one cached row — still no full rebuild.
            model.forward_step(tokens, paged, ids)  # a=8 boundary next step
            assert paged.table_rebuilds == rebuilds
            # Changing the batch composition rebuilds the plan once.
            model.forward_step(np.asarray([token_a]), paged,
                               np.asarray([sid_a], dtype=np.int64))
            assert paged.table_rebuilds == rebuilds + 1

    def test_boundary_crossing_updates_single_row(self, model):
        paged = model.init_paged_cache(max_sessions=4, block_size=4)
        with no_grad():
            cache_a, token_a = _prefill(model, [1, 2])        # length 2
            cache_b, token_b = _prefill(model, [3, 4, 5, 6, 7, 8])  # length 6
            sid_a = paged.admit(cache_a)
            sid_b = paged.admit(cache_b)
            ids = np.asarray([sid_a, sid_b], dtype=np.int64)
            tokens = np.asarray([token_a, token_b])
            model.forward_step(tokens, paged, ids)  # plan built; lengths 3, 7
            rebuilds = paged.table_rebuilds
            updates = paged.table_row_updates
            # Next step: a -> 4 (in tail), b -> 8 (allocates block; the plan
            # row is patched in place, no row rewrite needed when the table
            # still fits the cached width... b grows to 3 blocks > width 2,
            # which widens and rewrites that one row).
            model.forward_step(tokens, paged, ids)
            assert paged.table_rebuilds == rebuilds
            assert paged.table_row_updates >= updates
            paged.check_invariants()

    def test_plan_survives_unrelated_eviction(self, model):
        """Evicting a session outside the batch must not corrupt the plan."""
        paged = model.init_paged_cache(max_sessions=4, block_size=4)
        with no_grad():
            cache_a, token_a = _prefill(model, [1, 2, 3])
            cache_b, token_b = _prefill(model, [4, 5])
            cache_c, _ = _prefill(model, [6, 7, 8, 9, 10])
            sid_a = paged.admit(cache_a)
            sid_b = paged.admit(cache_b)
            sid_c = paged.admit(cache_c)
            ids = np.asarray([sid_a, sid_b], dtype=np.int64)
            tokens = [token_a, token_b]
            out = model.forward_step(np.asarray(tokens), paged, ids).data[:, -1, :]
            paged.evict(sid_c)  # bumps the epoch; batch rows unchanged
            for row, cache in enumerate((cache_a, cache_b)):
                expected = model.forward_incremental(
                    np.asarray([[tokens[row]]], dtype=np.int64), cache).data[0, -1]
                np.testing.assert_allclose(out[row], expected, atol=1e-9, rtol=0)
                tokens[row] = int(np.argmax(expected))
            out = model.forward_step(np.asarray(tokens), paged, ids).data[:, -1, :]
            for row, cache in enumerate((cache_a, cache_b)):
                expected = model.forward_incremental(
                    np.asarray([[tokens[row]]], dtype=np.int64), cache).data[0, -1]
                np.testing.assert_allclose(out[row], expected, atol=1e-9, rtol=0)
            paged.check_invariants()

    def test_stepping_an_evicted_session_still_raises(self, model):
        paged = model.init_paged_cache(max_sessions=2, block_size=4)
        with no_grad():
            cache, token = _prefill(model, [1, 2, 3])
            sid = paged.admit(cache)
            model.forward_step(np.asarray([token]), paged,
                               np.asarray([sid], dtype=np.int64))
            paged.evict(sid)
            with pytest.raises(ValueError, match="not live"):
                model.forward_step(np.asarray([token]), paged,
                                   np.asarray([sid], dtype=np.int64))


class TestDecisionPriorityOrdering:
    def test_higher_priority_groups_execute_first_in_a_flush(self):
        order = []

        class Recorder:
            def __init__(self, name):
                self.name = name

            def group_key(self, request):
                return ()

            def execute_batch(self, requests):
                order.append(self.name)
                return [None] * len(requests)

        server = InferenceServer(runtimes={"low": Recorder("low"),
                                           "high": Recorder("high")})
        low = server.submit(DecisionRequest(task="low", payload=1, priority=0))
        high = server.submit(DecisionRequest(task="high", payload=1, priority=2))
        server.run_until_idle()
        low.result(), high.result()
        assert order == ["high", "low"]
