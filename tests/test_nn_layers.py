"""Tests for parameterized layers, containers and checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    Module,
    ModuleList,
    Parameter,
    Sequential,
    Tensor,
    load_state_dict,
    save_state_dict,
)


class TestModuleRegistry:
    def test_parameters_discovered_recursively(self):
        mlp = MLP(4, [8, 8], 2)
        names = [name for name, _ in mlp.named_parameters()]
        assert len(names) == len(set(names))
        assert mlp.num_parameters() == sum(p.size for p in mlp.parameters())
        assert any("layer0" in n for n in names)

    def test_freeze_and_unfreeze(self):
        lin = Linear(3, 2)
        lin.freeze()
        assert all(not p.requires_grad for p in lin.parameters())
        assert lin.num_parameters(trainable_only=True) == 0
        lin.unfreeze()
        assert lin.num_parameters(trainable_only=True) == lin.num_parameters()

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(3, 3), Dropout(0.5), Linear(3, 1))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad(self):
        lin = Linear(3, 2)
        out = lin(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self):
        source = MLP(4, [6], 2, seed=None) if False else MLP(4, [6], 2)
        target = MLP(4, [6], 2, rng=np.random.default_rng(99))
        target.load_state_dict(source.state_dict())
        for (_, a), (_, b) in zip(source.named_parameters(), target.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_state_dict_strict_mismatch(self):
        lin = Linear(3, 2)
        with pytest.raises(KeyError):
            lin.load_state_dict({"weight": np.zeros((3, 2))})  # missing bias

    def test_state_dict_shape_mismatch(self):
        lin = Linear(3, 2)
        state = lin.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            lin.load_state_dict(state)


class TestLayers:
    def test_linear_shapes_and_bias(self):
        lin = Linear(5, 3)
        out = lin(Tensor(np.zeros((7, 5))))
        assert out.shape == (7, 3)
        np.testing.assert_allclose(out.data, np.zeros((7, 3)))

    def test_linear_no_bias(self):
        lin = Linear(5, 3, bias=False)
        assert len(lin.parameters()) == 1

    def test_layernorm_normalizes(self):
        ln = LayerNorm(16)
        x = Tensor(np.random.default_rng(0).normal(3.0, 5.0, size=(4, 16)))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_embedding_lookup_and_bounds(self):
        emb = Embedding(10, 4)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_dropout_eval_is_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(np.ones((3, 3)))
        np.testing.assert_allclose(drop(x).data, np.ones((3, 3)))

    def test_dropout_train_scales(self):
        drop = Dropout(0.5, seed=0)
        x = Tensor(np.ones((1000,)))
        out = drop(x).data
        # Surviving units are scaled to 2.0, so the mean stays near 1.
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert abs(out.mean() - 1.0) < 0.15

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_sequential_and_modulelist(self):
        seq = Sequential(Linear(3, 4), Linear(4, 2))
        assert len(seq) == 2
        out = seq(Tensor(np.ones((1, 3))))
        assert out.shape == (1, 2)
        mlist = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(mlist) == 2
        with pytest.raises(RuntimeError):
            mlist(Tensor(np.ones((1, 2))))

    def test_mlp_activations(self):
        for act in ("relu", "gelu", "tanh"):
            mlp = MLP(3, [5], 2, activation=act)
            assert mlp(Tensor(np.ones((2, 3)))).shape == (2, 2)
        with pytest.raises(ValueError):
            MLP(3, [5], 2, activation="swish")


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path):
        model = MLP(4, [8], 3)
        path = tmp_path / "model.npz"
        save_state_dict(model, path, metadata={"task": "test", "iterations": 5})
        state, metadata = load_state_dict(path)
        assert metadata == {"task": "test", "iterations": 5}
        fresh = MLP(4, [8], 3, rng=np.random.default_rng(123))
        fresh.load_state_dict(state)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4)))
        np.testing.assert_allclose(model(x).data, fresh(x).data)

    def test_load_without_metadata(self, tmp_path):
        model = Linear(2, 2)
        path = tmp_path / "lin.npz"
        save_state_dict(model, path)
        _, metadata = load_state_dict(path)
        assert metadata is None
