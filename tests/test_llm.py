"""Tests for the LLM substitute: configs, tokenizer, model, pre-training, generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.llm import (
    CharTokenizer,
    LanguageModel,
    available_configs,
    build_corpus,
    build_llm,
    generate,
    get_config,
    pretrain,
    profile_generation,
)
from repro.llm.config import LLMConfig


class TestConfigs:
    def test_known_configs_exist(self):
        names = available_configs()
        for required in ("llama2-7b-sim", "opt-7b-sim", "mistral-7b-sim", "llava-7b-sim",
                         "opt-0.35b-sim", "opt-1.3b-sim", "opt-13b-sim", "tiny-test"):
            assert required in names

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError):
            get_config("gpt-5")

    def test_size_ordering_preserved(self):
        """The size sweep must preserve capacity ordering of the real models."""
        sizes = ["opt-0.35b-sim", "opt-1.3b-sim", "opt-2.7b-sim", "opt-7b-sim", "opt-13b-sim"]
        widths = [get_config(name).d_model * get_config(name).num_layers for name in sizes]
        assert widths == sorted(widths)
        simulated = [get_config(name).simulated_param_count for name in sizes]
        assert simulated == sorted(simulated)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LLMConfig(name="bad", family="x", d_model=10, num_layers=1, num_heads=3)

    def test_scaled_override(self):
        cfg = get_config("tiny-test").scaled(num_layers=4)
        assert cfg.num_layers == 4
        assert cfg.d_model == get_config("tiny-test").d_model

    def test_llava_is_multimodal(self):
        assert get_config("llava-7b-sim").multimodal
        assert not get_config("llama2-7b-sim").multimodal


class TestTokenizer:
    def test_roundtrip(self):
        tok = CharTokenizer()
        text = "viewport (6.76,4.40,150.33) next"
        assert tok.decode(tok.encode(text)) == text

    def test_special_tokens(self):
        tok = CharTokenizer()
        ids = tok.encode("abc", add_bos=True, add_eos=True)
        assert ids[0] == tok.bos_id
        assert ids[-1] == tok.eos_id
        assert tok.decode(ids) == "abc"

    def test_unknown_characters_map_to_unk(self):
        tok = CharTokenizer()
        ids = tok.encode("a€b")
        assert tok.unk_id in ids

    def test_batch_encoding_pads(self):
        tok = CharTokenizer()
        batch = tok.encode_batch(["ab", "abcdef"], max_len=10)
        assert batch.shape == (2, 10)
        assert batch[0, -1] == tok.pad_id

    def test_decode_out_of_range(self):
        tok = CharTokenizer()
        with pytest.raises(ValueError):
            tok.decode([tok.vocab_size + 5])

    def test_tokens_per_answer_counts_eos(self):
        tok = CharTokenizer()
        assert tok.tokens_per_answer("12") == 3

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="0123456789. ,()-abcdef", max_size=40))
    def test_property_roundtrip(self, text):
        tok = CharTokenizer()
        assert tok.decode(tok.encode(text)) == text


class TestModel:
    def test_forward_tokens_shape(self, tiny_llm_plain):
        ids = np.array([[1, 5, 9, 12]])
        logits = tiny_llm_plain.forward_tokens(ids)
        assert logits.shape == (1, 4, tiny_llm_plain.tokenizer.vocab_size)

    def test_forward_embeddings_bypasses_lm_head(self, tiny_llm_plain):
        emb = np.random.default_rng(0).normal(size=(2, 3, tiny_llm_plain.d_model))
        from repro.nn import Tensor

        out = tiny_llm_plain.forward_embeddings(Tensor(emb))
        assert out.shape == (2, 3, tiny_llm_plain.d_model)

    def test_freeze_backbone_keeps_lora_trainable(self, tiny_llm):
        tiny_llm.freeze_backbone()
        trainable = [n for n, p in tiny_llm.named_parameters() if p.requires_grad]
        assert trainable
        assert all(n.endswith("lora_a") or n.endswith("lora_b") for n in trainable)
        assert tiny_llm.trainable_fraction() < 0.5

    def test_num_lora_parameters_positive(self, tiny_llm):
        assert tiny_llm.num_lora_parameters() > 0

    def test_set_lora_enabled_changes_output(self, tiny_llm):
        from repro.nn import Tensor

        rng = np.random.default_rng(0)
        # Give LoRA B matrices non-zero values so disabling them matters.
        for name, param in tiny_llm.named_parameters():
            if name.endswith("lora_b"):
                param.data = rng.normal(0, 0.1, size=param.data.shape)
        emb = Tensor(rng.normal(size=(1, 4, tiny_llm.d_model)))
        with_lora = tiny_llm.forward_embeddings(emb).data.copy()
        tiny_llm.set_lora_enabled(False)
        without = tiny_llm.forward_embeddings(emb).data
        tiny_llm.set_lora_enabled(True)
        for name, param in tiny_llm.named_parameters():
            if name.endswith("lora_b"):
                param.data = np.zeros_like(param.data)
        assert not np.allclose(with_lora, without)

    def test_randomize_weights_changes_parameters(self):
        model = build_llm("tiny-test", pretrained=False, seed=3)
        before = model.backbone.position_embedding.data.copy()
        model.randomize_weights(seed=99)
        assert not np.allclose(before, model.backbone.position_embedding.data)

    def test_parameter_memory_accounting(self, tiny_llm):
        total = tiny_llm.parameter_memory_bytes()
        trainable = tiny_llm.parameter_memory_bytes(trainable_only=True)
        assert 0 < trainable < total


class TestPretraining:
    def test_corpus_contains_series_and_text(self):
        corpus = build_corpus(num_documents=40, seed=1)
        assert len(corpus) == 40
        assert any(doc.startswith("series:") for doc in corpus)
        assert any(doc.startswith("wave:") for doc in corpus)

    def test_pretraining_reduces_loss(self):
        model = LanguageModel(get_config("tiny-test"), seed=0)
        result = pretrain(model, steps=40, seed=0)
        assert result.steps == 40
        assert result.improved
        assert result.final_loss < result.initial_loss

    def test_pretrain_validates_steps(self):
        model = LanguageModel(get_config("tiny-test"), seed=0)
        with pytest.raises(ValueError):
            pretrain(model, steps=0)


class TestGeneration:
    def test_greedy_generation_is_deterministic(self, tiny_llm_plain):
        a = generate(tiny_llm_plain, "series: 1.0 2.0", max_new_tokens=8)
        b = generate(tiny_llm_plain, "series: 1.0 2.0", max_new_tokens=8)
        assert a.text == b.text
        assert a.num_inferences <= 8

    def test_generation_counts_inferences(self, tiny_llm_plain):
        result = generate(tiny_llm_plain, "abc", max_new_tokens=5, temperature=0.8, seed=1)
        # One transformer inference per generated token: the latency problem
        # Figure 2 quantifies.
        assert result.num_inferences >= len(result.token_ids)
        assert result.elapsed_seconds > 0

    def test_generation_validates_budget(self, tiny_llm_plain):
        with pytest.raises(ValueError):
            generate(tiny_llm_plain, "abc", max_new_tokens=0)

    def test_profile_generation_validity_fraction(self, tiny_llm_plain):
        profile = profile_generation(tiny_llm_plain, ["1.0 2.0", "3.0 4.0"],
                                     validator=lambda text: "." in text,
                                     max_new_tokens=6, temperature=0.9)
        assert profile.num_answers == 2
        assert 0.0 <= profile.valid_fraction <= 1.0
        assert profile.mean_latency > 0

    def test_collect_timing_breakdown(self, tiny_llm_plain):
        off = generate(tiny_llm_plain, "abc", max_new_tokens=6, stop_on_eos=False)
        assert off.token_seconds is None
        assert off.prefill_seconds == 0.0 and off.decode_seconds_per_token == 0.0
        result = generate(tiny_llm_plain, "abc", max_new_tokens=6, stop_on_eos=False,
                          collect_timing=True)
        assert len(result.token_seconds) == result.num_inferences
        assert all(t >= 0 for t in result.token_seconds)
        assert result.prefill_seconds == result.token_seconds[0]
        expected = sum(result.token_seconds[1:]) / (result.num_inferences - 1)
        assert result.decode_seconds_per_token == pytest.approx(expected)
        # The per-token breakdown accounts for (almost all of) the total.
        assert sum(result.token_seconds) <= result.elapsed_seconds

    def test_profile_generation_through_server_matches_validity(self, tiny_llm_plain):
        from repro.serve import InferenceServer, SchedulerPolicy

        prompts = ["1.0 2.0", "3.0 4.0", "5.5"]
        direct = profile_generation(tiny_llm_plain, prompts,
                                    validator=lambda text: "." in text,
                                    max_new_tokens=6, temperature=0.0)
        server = InferenceServer(tiny_llm_plain, SchedulerPolicy(max_batch_size=3))
        served = profile_generation(tiny_llm_plain, prompts,
                                    validator=lambda text: "." in text,
                                    max_new_tokens=6, temperature=0.0, server=server)
        assert served.num_answers == direct.num_answers
        assert served.valid_fraction == direct.valid_fraction
        assert served.total_inferences == direct.total_inferences


class TestRegistry:
    def test_build_llm_without_pretraining(self):
        model = build_llm("tiny-test", pretrained=False, seed=7)
        assert isinstance(model, LanguageModel)

    def test_cache_returns_same_instance(self):
        from repro.llm import clear_cache, load_llm

        clear_cache()
        a = load_llm("tiny-test", pretrain_steps=5, seed=11)
        b = load_llm("tiny-test", pretrain_steps=5, seed=11)
        assert a is b
        c = load_llm("tiny-test", pretrain_steps=5, seed=11, use_cache=False)
        assert c is not a
