"""Inference fast-path tests: no_grad semantics, dtype control, KV-cache parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm import LanguageModel, generate
from repro.llm.config import LLMConfig
from repro.nn import (
    KVCache,
    Linear,
    Tensor,
    TransformerBackbone,
    causal_mask,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
    set_grad_enabled,
)


@pytest.fixture
def float64_default():
    """Guard: restore the float64 default dtype even if a test fails."""
    previous = set_default_dtype(np.float64)
    yield
    set_default_dtype(previous)


class TestNoGrad:
    def test_ops_inside_no_grad_record_nothing(self):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        with no_grad():
            out = (x * 2.0 + 1.0) @ x
        assert not out.requires_grad
        assert out._prev == ()
        assert out._backward() is None  # default no-op closure

    def test_backward_on_no_grad_result_fails_loudly(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        with no_grad():
            loss = (x * x).sum()
        with pytest.raises(RuntimeError, match="no_grad"):
            loss.backward()

    def test_mode_restored_after_context_and_exception(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():  # nesting
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_decorator_form(self):
        @no_grad()
        def infer(t):
            return t * 3.0

        out = infer(Tensor(np.ones(4), requires_grad=True))
        assert not out.requires_grad and out._prev == ()

    def test_bare_decorator_form(self):
        @no_grad
        def infer(t):
            return t * 3.0

        out = infer(Tensor(np.ones(4), requires_grad=True))
        assert not out.requires_grad and out._prev == ()
        assert is_grad_enabled()

    def test_set_grad_enabled_returns_previous(self):
        previous = set_grad_enabled(False)
        try:
            assert previous is True
            assert not is_grad_enabled()
        finally:
            set_grad_enabled(previous)

    def test_grad_mode_does_not_leak_into_free_functions(self):
        from repro.nn import concatenate, stack, where

        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        with no_grad():
            for out in (concatenate([a, b]), stack([a, b]),
                        where(np.array([True, False, True]), a, b)):
                assert not out.requires_grad
                assert out._prev == ()

    def test_training_still_works_after_no_grad(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        with no_grad():
            (x * x).sum()
        loss = (x * x).sum()
        loss.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_grad_mode_is_thread_local(self):
        """A no_grad inference thread must not disable another thread's
        autograd (the background-serve-loop-vs-training regression)."""
        import threading

        inference_entered = threading.Event()
        training_done = threading.Event()
        observed = {}

        def inference_thread():
            # New threads start with grad enabled regardless of the spawner.
            observed["fresh_default"] = is_grad_enabled()
            with no_grad():
                observed["inference_off"] = not is_grad_enabled()
                out = Tensor(np.ones(3), requires_grad=True) * 2.0
                observed["no_graph"] = (not out.requires_grad and out._prev == ())
                inference_entered.set()
                # Hold no_grad while the main thread trains.
                assert training_done.wait(timeout=30)
            observed["restored"] = is_grad_enabled()

        worker = threading.Thread(target=inference_thread)
        worker.start()
        try:
            assert inference_entered.wait(timeout=30)
            # The worker sits inside no_grad right now; this thread still
            # records graphs and backpropagates.
            assert is_grad_enabled()
            x = Tensor(np.array([3.0]), requires_grad=True)
            loss = (x * x).sum()
            loss.backward()
            np.testing.assert_allclose(x.grad, [6.0])
        finally:
            training_done.set()
            worker.join(timeout=30)
        assert observed == {"fresh_default": True, "inference_off": True,
                            "no_graph": True, "restored": True}


class TestItemDetachDtype:
    def test_item_multi_element_raises_value_error(self):
        with pytest.raises(ValueError, match="one element"):
            Tensor(np.zeros((2, 2))).item()

    def test_item_scalar_shapes(self):
        assert Tensor(np.array(2.5)).item() == pytest.approx(2.5)
        assert Tensor(np.array([[4.0]])).item() == pytest.approx(4.0)

    def test_detach_propagates_dtype(self, float64_default):
        t = Tensor(np.ones(3, dtype=np.float32), dtype=np.float32)
        detached = t.detach()
        assert detached.dtype == np.float32
        assert not detached.requires_grad
        assert detached.data is t.data  # shares storage, cut from graph

    def test_set_default_dtype_controls_new_tensors(self, float64_default):
        assert get_default_dtype() == np.float64
        set_default_dtype(np.float32)
        assert Tensor([1.0, 2.0]).dtype == np.float32
        layer = Linear(4, 2)
        assert layer.weight.dtype == np.float32
        out = layer(Tensor(np.ones((1, 4), dtype=np.float32)))
        assert out.dtype == np.float32

    def test_ops_preserve_model_dtype_across_global_switch(self, float64_default):
        t = Tensor(np.ones(4))  # float64 model tensor
        set_default_dtype(np.float32)
        out = (t * 2.0 + 1.0).sum()
        assert out.dtype == np.float64  # not silently downcast by the switch

    def test_set_default_dtype_rejects_non_float(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)


class TestMaskAndPositionCaches:
    def test_causal_mask_cached_and_immutable(self):
        a = causal_mask(7)
        b = causal_mask(7)
        assert np.shares_memory(a, b)  # views into one cached base mask
        assert np.shares_memory(a, causal_mask(33))  # cycling lengths reuse it
        assert not a.flags.writeable
        assert a.shape == (7, 7)
        assert a[0, 1] == -1e9 and a[1, 0] == 0.0
        np.testing.assert_array_equal(np.tril(np.ones((7, 7))) * a, np.zeros((7, 7)))

    def test_causal_mask_follows_default_dtype(self, float64_default):
        assert causal_mask(5).dtype == np.float64
        set_default_dtype(np.float32)
        assert causal_mask(5).dtype == np.float32

    def test_causal_mask_explicit_dtype_overrides_default(self, float64_default):
        assert causal_mask(5, np.float32).dtype == np.float32

    def test_float32_model_exact_parity_under_float64_default(self, float64_default):
        # Build under float32, use after the global default is restored to
        # float64 (the benchmark pattern): masked full forward, re-primed
        # multi-token and single-token cached steps must all stay float32
        # and agree exactly.
        set_default_dtype(np.float32)
        model = _tiny_model(0, seed=5)
        set_default_dtype(np.float64)
        ids = np.random.default_rng(4).integers(0, model.tokenizer.vocab_size, size=20)
        with no_grad():
            full = model.forward_tokens(ids[None, :]).data
            cache = model.init_cache()
            parts = [model.forward_incremental(ids[None, :8], cache).data]
            for t in range(8, 20):
                parts.append(model.forward_incremental(ids[None, t:t + 1], cache).data)
            incremental = np.concatenate(parts, axis=1)
        assert full.dtype == np.float32 and incremental.dtype == np.float32
        # Parity at float32 machine precision: batched vs single-token sgemm
        # may round differently, unlike the exact float64 case above.
        np.testing.assert_allclose(incremental, full, atol=1e-5, rtol=0)


def _tiny_model(lora_rank: int, seed: int = 0) -> LanguageModel:
    config = LLMConfig(name="parity", family="test", d_model=32, num_layers=2,
                       num_heads=2, max_seq_len=48)
    model = LanguageModel(config, lora_rank=lora_rank, seed=seed)
    if lora_rank:
        # Standard LoRA init keeps B at zero (update inert); randomize it so
        # the parity test actually exercises the LoRA path.
        rng = np.random.default_rng(seed + 1)
        for name, param in model.named_parameters():
            if name.endswith("lora_b"):
                param.data = rng.normal(0.0, 0.05, size=param.data.shape)
    return model


class TestKVCacheParity:
    @pytest.mark.parametrize("lora_rank", [0, 4])
    def test_incremental_logits_match_full_forward(self, lora_rank):
        model = _tiny_model(lora_rank)
        ids = np.random.default_rng(0).integers(0, model.tokenizer.vocab_size, size=32)
        with no_grad():
            full = model.forward_tokens(ids[None, :]).data
            cache = model.init_cache()
            chunks = [model.forward_incremental(ids[None, :6], cache).data]
            for step in range(6, len(ids)):
                chunks.append(model.forward_incremental(ids[None, step:step + 1], cache).data)
            incremental = np.concatenate(chunks, axis=1)
        assert cache.seq_len == len(ids)
        np.testing.assert_allclose(incremental, full, atol=1e-9, rtol=0)

    def test_backbone_cache_parity_with_batch(self):
        backbone = TransformerBackbone(d_model=16, num_layers=2, num_heads=2, max_seq_len=24)
        emb = np.random.default_rng(3).normal(size=(2, 10, 16))
        with no_grad():
            full = backbone(Tensor(emb)).data
            cache = backbone.init_cache()
            parts = [backbone(Tensor(emb[:, :4, :]), cache=cache).data]
            for t in range(4, 10):
                parts.append(backbone(Tensor(emb[:, t:t + 1, :]), cache=cache).data)
            incremental = np.concatenate(parts, axis=1)
        np.testing.assert_allclose(incremental, full, atol=1e-9, rtol=0)

    def test_cache_overflow_raises(self):
        backbone = TransformerBackbone(d_model=16, num_layers=1, num_heads=2, max_seq_len=8)
        cache = backbone.init_cache()
        emb = np.zeros((1, 8, 16))
        with no_grad():
            backbone(Tensor(emb), cache=cache)
            with pytest.raises(ValueError, match="exceeds maximum"):
                backbone(Tensor(emb[:, :1, :]), cache=cache)

    def test_cached_path_requires_no_grad(self):
        backbone = TransformerBackbone(d_model=16, num_layers=1, num_heads=2, max_seq_len=8)
        cache = backbone.init_cache()
        with pytest.raises(RuntimeError, match="no_grad"):
            backbone(Tensor(np.zeros((1, 2, 16))), cache=cache)

    def test_mismatched_cache_layer_count_raises(self):
        backbone = TransformerBackbone(d_model=16, num_layers=2, num_heads=2, max_seq_len=8)
        with no_grad():
            with pytest.raises(ValueError, match="cache has 1 layers"):
                backbone(Tensor(np.zeros((1, 2, 16))), cache=KVCache(1))

    def test_load_state_dict_preserves_model_dtype(self, float64_default):
        layer = Linear(3, 2)  # built under the float64 default
        state = layer.state_dict()
        set_default_dtype(np.float32)  # global switch must not downcast it
        layer.load_state_dict(state)
        assert layer.weight.dtype == np.float64

    def test_cache_reset(self):
        cache = KVCache(3)
        assert cache.seq_len == 0
        cache.layers[0].append(np.zeros((1, 2, 5, 4)), np.zeros((1, 2, 5, 4)))
        assert cache.seq_len == 5
        cache.reset()
        assert cache.seq_len == 0

    def test_generate_cached_matches_uncached(self):
        model = _tiny_model(0, seed=7)
        cached = generate(model, "abc 1.0 2.0", max_new_tokens=20, use_cache=True)
        uncached = generate(model, "abc 1.0 2.0", max_new_tokens=20, use_cache=False)
        assert cached.token_ids == uncached.token_ids
        assert cached.num_inferences == uncached.num_inferences

    def test_generate_evals_dropout_model_so_paths_agree(self):
        # A dropout model left in training mode: generate() must switch to
        # eval (and restore), keeping cached and uncached decoding identical.
        config = LLMConfig(name="drop", family="test", d_model=32, num_layers=2,
                           num_heads=2, max_seq_len=48, dropout=0.2)
        model = LanguageModel(config, seed=0)
        assert model.training
        cached = generate(model, "abc", max_new_tokens=16, stop_on_eos=False)
        uncached = generate(model, "abc", max_new_tokens=16, stop_on_eos=False,
                            use_cache=False)
        assert cached.token_ids == uncached.token_ids
        assert model.training  # mode restored

    def test_non_causal_with_cache_rejected(self):
        backbone = TransformerBackbone(d_model=16, num_layers=1, num_heads=2, max_seq_len=8)
        with no_grad():
            with pytest.raises(ValueError, match="causal"):
                backbone(Tensor(np.zeros((1, 2, 16))), causal=False,
                         cache=backbone.init_cache())

    def test_cached_path_with_active_dropout_rejected(self):
        from repro.nn import MultiHeadAttention
        from repro.nn.attention import LayerKVCache

        attn = MultiHeadAttention(d_model=16, num_heads=2, dropout=0.3)
        assert attn.training
        with no_grad():
            with pytest.raises(RuntimeError, match="dropout"):
                attn(Tensor(np.zeros((1, 2, 16))), layer_cache=LayerKVCache())
        attn.eval()
        with no_grad():
            attn(Tensor(np.zeros((1, 2, 16))), layer_cache=LayerKVCache())

    def test_custom_mask_with_cache_rejected(self):
        from repro.nn import MultiHeadAttention
        from repro.nn.attention import LayerKVCache

        attn = MultiHeadAttention(d_model=16, num_heads=2)
        with no_grad():
            with pytest.raises(ValueError, match="causal"):
                attn(Tensor(np.zeros((1, 2, 16))), mask=np.zeros((2, 2)),
                     layer_cache=LayerKVCache())

    def test_generate_cached_matches_uncached_past_window_overflow(self):
        # max_seq_len=48: generating 60 tokens forces the sliding-window
        # re-priming path; token streams must still agree.
        model = _tiny_model(0, seed=11)
        cached = generate(model, "xyz", max_new_tokens=60, stop_on_eos=False)
        uncached = generate(model, "xyz", max_new_tokens=60, stop_on_eos=False,
                            use_cache=False)
        assert cached.token_ids == uncached.token_ids
