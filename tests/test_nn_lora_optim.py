"""Tests for LoRA adapters, optimizers and schedules."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CosineSchedule,
    Linear,
    LoRALinear,
    MLP,
    SGD,
    Tensor,
    TransformerBackbone,
    clip_grad_norm,
    iter_lora_layers,
    mark_only_lora_trainable,
    mse_loss,
)


class TestLoRA:
    def test_initial_output_matches_frozen_base(self):
        """LoRA B starts at zero, so the layer initially equals the base layer."""
        layer = LoRALinear(6, 4, rank=2)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 6)))
        expected = x.data @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(x).data, expected, atol=1e-12)

    def test_only_lora_matrices_trainable(self):
        layer = LoRALinear(6, 4, rank=2)
        trainable = [p for p in layer.parameters() if p.requires_grad]
        assert len(trainable) == 2
        assert layer.num_lora_parameters() == 6 * 2 + 2 * 4

    def test_disable_lora_reverts_to_base(self):
        layer = LoRALinear(5, 5, rank=3)
        layer.lora_b.data = np.random.default_rng(1).normal(size=layer.lora_b.data.shape)
        x = Tensor(np.ones((1, 5)))
        with_lora = layer(x).data.copy()
        layer.enable_lora(False)
        without = layer(x).data
        assert not np.allclose(with_lora, without)
        np.testing.assert_allclose(without, x.data @ layer.weight.data + layer.bias.data)

    def test_merged_weight(self):
        layer = LoRALinear(4, 4, rank=2, alpha=2.0)
        layer.lora_a.data = np.ones_like(layer.lora_a.data)
        layer.lora_b.data = np.ones_like(layer.lora_b.data)
        merged = layer.merged_weight()
        np.testing.assert_allclose(merged, layer.weight.data + 2.0 * 1.0)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            LoRALinear(4, 4, rank=0)

    def test_mark_only_lora_trainable_on_backbone(self):
        backbone = TransformerBackbone(d_model=16, num_layers=2, num_heads=2, lora_rank=4)
        mark_only_lora_trainable(backbone)
        for name, param in backbone.named_parameters():
            expected = name.endswith("lora_a") or name.endswith("lora_b")
            assert param.requires_grad == expected
        assert len(list(iter_lora_layers(backbone))) == 2 * 6  # 4 attn + 2 mlp per block

    def test_lora_training_reduces_loss_with_frozen_base(self):
        rng = np.random.default_rng(0)
        layer = LoRALinear(8, 1, rank=4, alpha=8.0)
        x = rng.normal(size=(64, 8))
        true_w = rng.normal(size=(8, 1))
        y = x @ true_w
        optimizer = Adam(layer.parameters(), lr=1e-2)
        losses = []
        for _ in range(150):
            pred = layer(Tensor(x))
            loss = mse_loss(pred, Tensor(y))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0] * 0.5
        # The frozen base weight must not have moved.
        assert not layer.weight.requires_grad


class TestOptimizers:
    def _fit(self, optimizer_factory, steps=200):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(128, 4))
        w_true = np.array([[1.0], [-2.0], [0.5], [3.0]])
        y = x @ w_true
        model = Linear(4, 1)
        optimizer = optimizer_factory(model.parameters())
        first = None
        for _ in range(steps):
            loss = mse_loss(model(Tensor(x)), Tensor(y))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            if first is None:
                first = float(loss.data)
        return first, float(loss.data)

    def test_sgd_converges(self):
        first, last = self._fit(lambda p: SGD(p, lr=0.05, momentum=0.9))
        assert last < first * 0.05

    def test_adam_converges(self):
        first, last = self._fit(lambda p: Adam(p, lr=0.05))
        assert last < first * 0.05

    def test_adam_weight_decay_shrinks_weights(self):
        lin = Linear(3, 3)
        lin.weight.data = np.ones((3, 3)) * 5
        optimizer = Adam(lin.parameters(), lr=0.1, weight_decay=0.5)
        loss = (lin(Tensor(np.zeros((1, 3)))) * 0.0).sum()
        loss.backward()
        optimizer.step()
        assert np.all(np.abs(lin.weight.data) < 5)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=1e-3)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD(Linear(2, 2).parameters(), lr=0.0)

    def test_optimizer_state_size_reported(self):
        lin = Linear(4, 4)
        optimizer = Adam(lin.parameters(), lr=1e-3)
        loss = lin(Tensor(np.ones((1, 4)))).sum()
        loss.backward()
        optimizer.step()
        assert optimizer.state_size_bytes() > 0

    def test_clip_grad_norm(self):
        lin = Linear(4, 4)
        (lin(Tensor(np.ones((8, 4)))) * 100.0).sum().backward()
        norm_before = clip_grad_norm(lin.parameters(), max_norm=1.0)
        assert norm_before > 1.0
        total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in lin.parameters()))
        assert total <= 1.0 + 1e-6

    def test_cosine_schedule_decays(self):
        lin = Linear(2, 2)
        optimizer = Adam(lin.parameters(), lr=1.0)
        schedule = CosineSchedule(optimizer, base_lr=1.0, total_steps=10, warmup_steps=2,
                                  min_lr=0.1)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[0] < lrs[1]            # warmup increases
        assert lrs[-1] == pytest.approx(0.1, abs=0.05)  # decays toward min_lr
        assert max(lrs) <= 1.0 + 1e-9

    def test_cosine_schedule_validation(self):
        lin = Linear(2, 2)
        optimizer = Adam(lin.parameters(), lr=1.0)
        with pytest.raises(ValueError):
            CosineSchedule(optimizer, base_lr=1.0, total_steps=0)
