"""Shared fixtures for the test suite.

Expensive artifacts (pre-trained tiny LLM, small datasets, simulators) are
built once per session and reused across test modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr import ABR_SETTINGS, build_setting
from repro.cjs import CJS_SETTINGS, build_workload
from repro.llm import build_llm
from repro.vp import VP_SETTINGS, ViewportDataset


@pytest.fixture(scope="session")
def tiny_llm():
    """A small pre-trained LLM substitute with LoRA adapters."""
    return build_llm("tiny-test", lora_rank=4, pretrained=True, pretrain_steps=25, seed=0)


@pytest.fixture(scope="session")
def tiny_llm_plain():
    """A small pre-trained LLM substitute without LoRA (for LM-head paths)."""
    return build_llm("tiny-test", lora_rank=0, pretrained=True, pretrain_steps=25, seed=1)


@pytest.fixture(scope="session")
def vp_data():
    """Small VP dataset: (setting, train samples, test samples)."""
    setting = VP_SETTINGS["default_test"]
    dataset = ViewportDataset("jin2022", seed=0, num_videos=2, num_viewers=4, video_seconds=30)
    train_traces, _, test_traces = dataset.split_traces(seed=0)
    train = dataset.windows_from_traces(train_traces, setting, stride_steps=5)
    test = dataset.windows_from_traces(test_traces, setting, stride_steps=10)
    return setting, train, test


@pytest.fixture(scope="session")
def abr_setup():
    """Small ABR setup: (video, train traces, test traces)."""
    video, train_traces = build_setting(ABR_SETTINGS["default_train"], num_traces=4,
                                        num_chunks=24, trace_duration=200.0, seed=0)
    _, test_traces = build_setting(ABR_SETTINGS["default_test"], num_traces=3,
                                   num_chunks=24, trace_duration=200.0, seed=50)
    return video, train_traces, test_traces


@pytest.fixture(scope="session")
def cjs_setup():
    """Small CJS setup: (train workloads, test jobs, num executors)."""
    setting = CJS_SETTINGS["default_train"]
    train_workloads = [build_workload(setting, seed=s)[0][:8] for s in range(2)]
    test_jobs, executors = build_workload(CJS_SETTINGS["default_test"], seed=11)
    return train_workloads, test_jobs[:8], executors
