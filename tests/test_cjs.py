"""Tests for the cluster-job-scheduling substrate: jobs, simulator, schedulers."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cjs import (
    CJS_SETTINGS,
    DecimaScheduler,
    FIFOScheduler,
    FairScheduler,
    Job,
    MAX_CANDIDATES,
    PARALLELISM_FRACTIONS,
    ShortestJobFirstScheduler,
    Stage,
    TPCHLikeJobGenerator,
    build_workload,
    collect_trajectory,
    decision_from_action,
    encode_observation,
    observation_size,
    run_workload,
    train_decima,
)
from repro.cjs.simulator import ClusterSimulator, SchedulingDecision


class TestJobs:
    def test_stage_validation(self):
        with pytest.raises(ValueError):
            Stage(0, num_tasks=0, task_duration=1.0)
        with pytest.raises(ValueError):
            Stage(0, num_tasks=1, task_duration=0.0)

    def test_job_requires_dag(self):
        graph = nx.DiGraph([(0, 1), (1, 0)])
        stages = {0: Stage(0, 1, 1.0), 1: Stage(1, 1, 1.0)}
        with pytest.raises(ValueError):
            Job(job_id=0, stages=stages, dag=graph)

    def test_generator_produces_valid_dags(self):
        generator = TPCHLikeJobGenerator(seed=0)
        for _ in range(20):
            job = generator.generate()
            assert nx.is_directed_acyclic_graph(job.dag)
            assert 2 <= job.num_stages <= 10
            assert job.total_work > 0
            assert job.critical_path_length() <= job.total_work + 1e-9
            assert job.roots()

    def test_adjacency_and_features_shapes(self):
        job = TPCHLikeJobGenerator(seed=1).generate()
        adj = job.adjacency_matrix()
        features = job.node_features()
        assert adj.shape == (job.num_stages, job.num_stages)
        assert features.shape == (job.num_stages, 3)
        assert adj.sum() == job.dag.number_of_edges()

    def test_workload_arrival_times_sorted_batch_first(self):
        jobs = TPCHLikeJobGenerator(seed=2).generate_workload(10, batch_fraction=0.3)
        assert len(jobs) == 10
        assert sum(1 for j in jobs if j.arrival_time == 0.0) >= 3
        assert all(j.arrival_time >= 0 for j in jobs)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            TPCHLikeJobGenerator(min_stages=5, max_stages=2)
        with pytest.raises(ValueError):
            TPCHLikeJobGenerator().generate_workload(0)

    def test_settings_table4(self):
        assert set(CJS_SETTINGS) == {"default_train", "default_test", "unseen_setting1",
                                     "unseen_setting2", "unseen_setting3"}
        assert CJS_SETTINGS["unseen_setting2"].num_jobs > CJS_SETTINGS["default_test"].num_jobs
        assert CJS_SETTINGS["unseen_setting1"].num_executors < CJS_SETTINGS["default_test"].num_executors
        jobs, executors = build_workload(CJS_SETTINGS["default_test"], seed=0)
        assert jobs and executors >= 2


class TestSimulator:
    def _simple_workload(self):
        return TPCHLikeJobGenerator(seed=3).generate_workload(6)

    def test_all_jobs_complete(self):
        jobs = self._simple_workload()
        result = run_workload(FIFOScheduler(), jobs, num_executors=4)
        assert set(result.job_completion_times) == {job.job_id for job in jobs}
        assert result.makespan > 0
        assert np.all(result.jcts > 0)

    def test_jct_at_least_critical_path(self):
        jobs = self._simple_workload()
        result = run_workload(ShortestJobFirstScheduler(), jobs, num_executors=100)
        for job in jobs:
            jct = result.job_completion_times[job.job_id] - job.arrival_time
            # With unlimited executors each stage runs in one wave, so the JCT
            # cannot beat the critical path of task durations.
            min_path = 0.0
            order = list(nx.topological_sort(job.dag))
            longest = {}
            for node in order:
                parent = max((longest[p] for p in job.dag.predecessors(node)), default=0.0)
                longest[node] = parent + job.stages[node].task_duration
            min_path = max(longest.values())
            assert jct >= min_path - 1e-6

    def test_more_executors_never_hurt_fifo(self):
        jobs = self._simple_workload()
        small = run_workload(FIFOScheduler(), jobs, num_executors=2).average_jct
        large = run_workload(FIFOScheduler(), jobs, num_executors=20).average_jct
        assert large <= small + 1e-9

    def test_sjf_beats_fifo_on_average_jct(self, cjs_setup):
        _, test_jobs, executors = cjs_setup
        fifo = run_workload(FIFOScheduler(), test_jobs, executors).average_jct
        sjf = run_workload(ShortestJobFirstScheduler(), test_jobs, executors).average_jct
        assert sjf < fifo

    def test_invalid_scheduler_choice_rejected(self):
        jobs = self._simple_workload()

        class BadScheduler:
            def schedule(self, context):
                return SchedulingDecision(job_id=9999, stage_id=0, num_executors=1)

        with pytest.raises(ValueError):
            run_workload(BadScheduler(), jobs, num_executors=2)

    def test_simulator_validation(self):
        with pytest.raises(ValueError):
            ClusterSimulator([], num_executors=2)
        with pytest.raises(ValueError):
            ClusterSimulator(self._simple_workload(), num_executors=0)


class TestObservations:
    def test_observation_vector_size(self, cjs_setup):
        _, test_jobs, executors = cjs_setup
        trajectory = collect_trajectory(FIFOScheduler(), test_jobs, executors)
        assert trajectory.transitions
        for transition in trajectory.transitions[:5]:
            assert transition.observation.shape == (observation_size(),)
            assert 0 <= transition.candidate_index < MAX_CANDIDATES
            assert 0 <= transition.parallelism_bucket < len(PARALLELISM_FRACTIONS)

    def test_rewards_are_nonpositive_and_sum_relates_to_jct(self, cjs_setup):
        _, test_jobs, executors = cjs_setup
        trajectory = collect_trajectory(ShortestJobFirstScheduler(), test_jobs, executors)
        assert all(t.reward <= 0 for t in trajectory.transitions)
        assert trajectory.total_reward < 0

    def test_better_scheduler_gets_higher_total_reward(self, cjs_setup):
        _, test_jobs, executors = cjs_setup
        sjf = collect_trajectory(ShortestJobFirstScheduler(), test_jobs, executors)
        fifo = collect_trajectory(FIFOScheduler(), test_jobs, executors)
        assert sjf.total_reward > fifo.total_reward

    def test_decision_from_action_clamps(self, cjs_setup):
        _, test_jobs, executors = cjs_setup
        captured = {}

        class Spy(ShortestJobFirstScheduler):
            def schedule(self, context):
                if "context" not in captured:
                    captured["context"] = context
                return super().schedule(context)

        run_workload(Spy(), test_jobs, executors)
        context = captured["context"]
        decision = decision_from_action(context, candidate_index=999, parallelism_bucket=999)
        assert (decision.job_id, decision.stage_id) in context.runnable
        assert decision.num_executors >= 1


class TestSchedulers:
    def test_fair_rotates_between_jobs(self, cjs_setup):
        _, test_jobs, executors = cjs_setup
        result = run_workload(FairScheduler(), test_jobs, executors)
        assert result.average_jct > 0

    def test_decima_untrained_produces_valid_schedule(self, cjs_setup):
        _, test_jobs, executors = cjs_setup
        result = run_workload(DecimaScheduler(seed=0), test_jobs, executors)
        assert set(result.job_completion_times) == {j.job_id for j in test_jobs}

    def test_decima_training_improves_over_fifo(self, cjs_setup):
        train_workloads, test_jobs, executors = cjs_setup
        decima, train_result = train_decima(train_workloads, executors, epochs=2, seed=0)
        assert train_result.imitation_losses[-1] < train_result.imitation_losses[0]
        decima_jct = run_workload(decima, test_jobs, executors).average_jct
        fifo_jct = run_workload(FIFOScheduler(), test_jobs, executors).average_jct
        assert decima_jct < fifo_jct

    def test_train_decima_requires_workloads(self):
        with pytest.raises(ValueError):
            train_decima([], num_executors=2)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=10))
def test_property_stage_waves(num_tasks, executors):
    """A stage with t tasks on e executors takes ceil(t/e) waves."""
    stage = Stage(0, num_tasks=num_tasks, task_duration=2.0)
    allocation = min(executors, stage.num_tasks)
    waves = int(np.ceil(stage.num_tasks / allocation))
    assert waves * allocation >= stage.num_tasks
    assert (waves - 1) * allocation < stage.num_tasks
