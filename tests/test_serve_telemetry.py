"""Flight-recorder observability suite (``repro.serve.telemetry``).

Covers the trace ring buffer (O(1) seq lookup, wraparound), the wall-clock
window aggregator (empty windows, boundary landing, bounded retention), the
disabled no-op paths, the engine integration (step records, JSONL export,
``ServerStats.report()["telemetry"]``), and the headline acceptance test:
a seeded ``decode.step`` delay fault produces an ITL spike that
``explain_request`` attributes to the correct step record — right seq,
right co-batched session set, right fault event.
"""

from __future__ import annotations

import json

import pytest

from repro.llm import LanguageModel
from repro.llm.config import LLMConfig
from repro.serve import (
    FaultInjector,
    FaultSpec,
    GenerationSession,
    InferenceServer,
    SchedulerPolicy,
    ServeTelemetry,
    StepRecord,
    TraceLog,
    WindowAggregator,
)
from repro.serve.scheduler import ContinuousBatchingScheduler


@pytest.fixture(scope="module")
def model():
    config = LLMConfig(name="telemetry-test", family="test", d_model=32,
                       num_layers=2, num_heads=2, max_seq_len=64)
    return LanguageModel(config, seed=3)


def _record(seq, start, end, **fields):
    return StepRecord(seq=seq, started_at=start, ended_at=end, **fields)


# ---------------------------------------------------------------------- #
# TraceLog ring buffer
# ---------------------------------------------------------------------- #
class TestTraceLog:
    def test_append_and_seq_lookup(self):
        log = TraceLog(capacity=8)
        for seq in range(5):
            log.append(_record(seq, float(seq), float(seq) + 0.5))
        assert len(log) == 5 and log.dropped == 0
        assert [r.seq for r in log.records()] == [0, 1, 2, 3, 4]
        assert log.for_seq(3).started_at == 3.0
        assert log.for_seq(5) is None  # never appended
        assert log.for_seq(-1) is None

    def test_wraparound_drops_oldest(self):
        # A long run: 20 records through a 6-slot ring.
        log = TraceLog(capacity=6)
        for seq in range(20):
            log.append(_record(seq, float(seq), float(seq) + 0.5))
        assert log.total == 20 and len(log) == 6
        assert log.dropped == 14
        assert [r.seq for r in log.records()] == list(range(14, 20))
        # Rotated-out seqs resolve to None, never to a wrong record.
        assert log.for_seq(13) is None
        assert log.for_seq(14).seq == 14 and log.for_seq(19).seq == 19

    def test_covering_interval_overlap(self):
        log = TraceLog(capacity=8)
        for seq in range(4):
            log.append(_record(seq, float(seq), float(seq) + 1.0))
        assert [r.seq for r in log.covering(1.5, 2.5)] == [1, 2]
        assert [r.seq for r in log.covering(0.0, 10.0)] == [0, 1, 2, 3]
        assert log.covering(8.0, 9.0) == []

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceLog(capacity=0)

    def test_export_jsonl(self, tmp_path):
        log = TraceLog(capacity=4)
        for seq in range(3):
            log.append(_record(seq, float(seq), float(seq) + 0.5,
                               decode_sessions=(1, 2)))
        path = tmp_path / "trace.jsonl"
        assert log.export_jsonl(str(path)) == 3
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["seq"] for row in rows] == [0, 1, 2]
        assert rows[0]["decode_sessions"] == [1, 2]
        assert rows[0]["decode_tokens"] == 2


# ---------------------------------------------------------------------- #
# Window aggregation edge cases
# ---------------------------------------------------------------------- #
class TestWindowAggregator:
    def test_empty_windows_materialized(self):
        agg = WindowAggregator(window_s=1.0)
        agg.observe(_record(0, 0.0, 0.5, decode_sessions=(1,)))
        agg.observe(_record(1, 3.2, 3.5, decode_sessions=(1,)))
        windows = agg.windows()
        assert [w.index for w in windows] == [0, 1, 2, 3]
        assert windows[1].steps == 0 and windows[2].steps == 0
        assert windows[0].decode_tokens == 1 and windows[3].decode_tokens == 1
        # The sparse view skips the quiet gap entirely.
        assert [w.index for w in agg.windows(fill_empty=False)] == [0, 3]

    def test_record_on_window_boundary(self):
        # A record ending exactly at the boundary lands in the next window
        # (windows are [start, start + window_s) half-open).
        agg = WindowAggregator(window_s=1.0)
        agg.observe(_record(0, 0.0, 0.5))
        agg.observe(_record(1, 0.9, 1.0, decode_sessions=(7,)))
        windows = agg.windows()
        assert windows[0].steps == 1 and windows[1].steps == 1
        assert windows[1].decode_tokens == 1

    def test_request_spanning_boundary_splits_tokens(self):
        # One request decoding across a boundary: each window counts only
        # the steps that ended inside it; nothing is lost or double-counted.
        agg = WindowAggregator(window_s=1.0)
        spans = [(0.0, 0.4), (0.5, 0.8), (0.9, 1.2), (1.3, 1.6)]
        for seq, (start, end) in enumerate(spans):
            agg.observe(_record(seq, start, end, decode_sessions=(42,)))
        windows = agg.windows()
        assert [w.decode_tokens for w in windows] == [2, 2]
        assert sum(w.decode_tokens for w in windows) == 4

    def test_bounded_retention_drops_oldest(self):
        agg = WindowAggregator(window_s=1.0, max_windows=3)
        for seq in range(6):  # one record per window 0..5
            agg.observe(_record(seq, float(seq), float(seq) + 0.1))
        assert agg.windows_dropped == 3
        assert [w.index for w in agg.windows()] == [3, 4, 5]

    def test_aggregate_sums_and_means(self):
        agg = WindowAggregator(window_s=10.0)
        agg.observe(_record(0, 0.0, 0.1, decode_sessions=(1, 2),
                            prefill_chunks=((3, 8),), queue_depth=4,
                            admitted=(3,), finished=(9,), shed=1,
                            retries=2, quarantines=1,
                            faults=(("decode.step", 5, "delay"),),
                            blocks_in_use=7))
        agg.observe(_record(1, 0.2, 0.3, decode_sessions=(1,),
                            queue_depth=2, cancelled=1, blocks_in_use=3))
        (window,) = agg.windows()
        assert window.steps == 2
        assert window.queue_depth_mean == pytest.approx(3.0)
        assert window.queue_depth_max == 4
        assert window.batch_occupancy_mean == pytest.approx(2.0)  # (3 + 1) / 2
        assert window.decode_tokens == 3 and window.prefill_tokens == 8
        assert window.admissions == 1
        assert window.evictions == 2  # finished + cancelled
        assert window.sheds == 1 and window.retries == 2
        assert window.faults == 2  # one quarantine + one injector fire
        assert window.blocks_in_use_max == 7

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="window_s"):
            WindowAggregator(window_s=0.0)
        with pytest.raises(ValueError, match="max_windows"):
            WindowAggregator(max_windows=0)


# ---------------------------------------------------------------------- #
# ServeTelemetry step lifecycle
# ---------------------------------------------------------------------- #
class TestServeTelemetry:
    def test_idle_steps_discarded(self):
        telemetry = ServeTelemetry()
        for _ in range(5):
            telemetry.begin_step(0.0)
            assert telemetry.commit_step(0.1, did_work=False, queue_depth=0,
                                         queue_depth_by_priority={},
                                         blocks_in_use=0,
                                         prefix_hits_total=0) is None
        assert telemetry.idle_steps == 5 and len(telemetry.records()) == 0

    def test_out_of_step_events_fold_into_next_record(self):
        telemetry = ServeTelemetry()
        # Shed at submit time and a client-thread cancel, both between steps.
        telemetry.note_shed()
        telemetry.note_cancelled()
        telemetry.begin_step(1.0)
        record = telemetry.commit_step(1.1, did_work=False, queue_depth=0,
                                       queue_depth_by_priority={},
                                       blocks_in_use=0, prefix_hits_total=0)
        assert record is not None  # pending events rescue an idle step
        assert record.shed == 1 and record.cancelled == 1
        # Folded exactly once.
        telemetry.note_decode([1])
        telemetry.begin_step(2.0)
        second = telemetry.commit_step(2.1, did_work=True, queue_depth=0,
                                       queue_depth_by_priority={},
                                       blocks_in_use=0, prefix_hits_total=0)
        assert second.shed == 0 and second.cancelled == 0

    def test_deferred_admission_not_counted_admitted(self):
        telemetry = ServeTelemetry()
        telemetry.begin_step(0.0)
        telemetry.note_admitted([4, 5])
        telemetry.note_deferred(5)
        record = telemetry.commit_step(0.1, did_work=True, queue_depth=1,
                                       queue_depth_by_priority={0: 1},
                                       blocks_in_use=0, prefix_hits_total=0)
        assert record.admitted == (4,) and record.deferred == (5,)

    def test_prefix_hit_gauge_is_per_step_delta(self):
        telemetry = ServeTelemetry()
        telemetry.begin_step(0.0)
        telemetry.note_decode([1])
        first = telemetry.commit_step(0.1, True, 0, {}, 0,
                                      prefix_hits_total=3)
        telemetry.begin_step(0.2)
        telemetry.note_decode([1])
        second = telemetry.commit_step(0.3, True, 0, {}, 0,
                                       prefix_hits_total=4)
        assert first.prefix_hits == 3 and second.prefix_hits == 1

    def test_disabled_is_noop_everywhere(self):
        telemetry = ServeTelemetry(enabled=False)
        telemetry.begin_step(0.0)
        telemetry.note_decode([1])
        telemetry.note_shed()
        telemetry.note_cancelled()
        telemetry.note_expired()
        assert telemetry.commit_step(0.1, did_work=True, queue_depth=0,
                                     queue_depth_by_priority={},
                                     blocks_in_use=0,
                                     prefix_hits_total=0) is None
        assert telemetry.records() == [] and telemetry.windows() == []
        summary = telemetry.summary()
        assert summary["enabled"] is False and summary["windows"] == []
        with pytest.raises(RuntimeError, match="disabled"):
            telemetry.explain_request(object())


# ---------------------------------------------------------------------- #
# Engine integration
# ---------------------------------------------------------------------- #
class TestEngineTelemetry:
    def test_step_records_cover_a_generation(self, model):
        server = InferenceServer(model=model)
        first = server.submit_generation("the quick brown fox",
                                         max_new_tokens=6)
        second = server.submit_generation("jumps over the lazy dog",
                                          max_new_tokens=6)
        server.run_until_idle()
        first.result(); second.result()
        records = server.telemetry.records()
        assert records, "an enabled recorder must capture the run"
        assert [r.seq for r in records] == list(range(len(records)))
        admitted = [sid for r in records for sid in r.admitted]
        assert set(admitted) == {first.request_id, second.request_id}
        prefilled = {sid for r in records for sid, _ in r.prefill_chunks}
        assert prefilled == {first.request_id, second.request_id}
        # Mid-run steps decode both sessions batched together.
        assert any(set(r.decode_sessions) == {first.request_id,
                                             second.request_id}
                   for r in records)
        finished = [sid for r in records for sid in r.finished]
        assert set(finished) == {first.request_id, second.request_id}
        # The window view sees every decode token the trace recorded.
        assert (sum(w.decode_tokens for w in server.telemetry.windows())
                == sum(r.decode_tokens for r in records))

    def test_disabled_engine_pays_no_bookkeeping(self, model):
        server = InferenceServer(model=model, telemetry=False)
        assert server._trace is None  # hot-path guard collapses to one check
        assert server._manager.telemetry is None
        handle = server.submit_generation("hello", max_new_tokens=4)
        server.run_until_idle()
        handle.result()
        assert server.telemetry.records() == []
        assert server.stats().report()["telemetry"]["enabled"] is False
        with pytest.raises(RuntimeError, match="disabled"):
            server.explain_request(handle.request_id)

    def test_trace_ring_wraps_during_long_run(self, model):
        telemetry = ServeTelemetry(trace_capacity=4)
        server = InferenceServer(model=model, telemetry=telemetry)
        handle = server.submit_generation("count with me", max_new_tokens=12)
        server.run_until_idle()
        handle.result()
        assert telemetry.trace.total > 4
        records = server.telemetry.records()
        assert len(records) == 4
        assert [r.seq for r in records] == list(
            range(telemetry.trace.total - 4, telemetry.trace.total))
        assert telemetry.trace.dropped == telemetry.trace.total - 4

    def test_jsonl_export_roundtrips(self, model, tmp_path):
        server = InferenceServer(model=model)
        server.submit_generation("export me", max_new_tokens=4).result()
        path = tmp_path / "steps.jsonl"
        count = server.telemetry.export_jsonl(str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == count == len(server.telemetry.records())
        assert all("decode_sessions" in row and "queue_depth" in row
                   for row in rows)

    def test_stats_report_carries_telemetry_and_stays_compatible(self, model):
        server = InferenceServer(model=model)
        server.submit_generation("stats please", max_new_tokens=4).result()
        report = server.stats().report()
        # Backward-compatible keys survive the ServeCounters refactor.
        for key in ("tokens_per_second", "prefix_hits", "faults_quarantined",
                    "retries", "shed", "health", "itl_p95_s"):
            assert key in report
        telemetry = report["telemetry"]
        assert telemetry["enabled"] is True
        assert telemetry["steps_recorded"] > 0
        assert telemetry["windows"], "at least one window must be live"
        assert "queue_depth_mean" in telemetry["windows"][-1]

    def test_shed_lands_in_trace(self, model):
        server = InferenceServer(
            model=model, policy=SchedulerPolicy(shed_queue_depth=1))
        first = server.submit_generation("one", max_new_tokens=4)
        shed = server.submit_generation("two", max_new_tokens=4)
        server.run_until_idle()
        first.result()
        assert shed.done() and not shed.cancelled()
        assert sum(r.shed for r in server.telemetry.records()) == 1

    def test_queue_depth_by_priority_gauge(self):
        scheduler = ContinuousBatchingScheduler()
        for priority in (0, 0, 2):
            scheduler.enqueue(GenerationSession(session_id=priority + 10,
                                                prompt="x",
                                                priority=priority))
        assert scheduler.queue_depth_by_priority() == {0: 2, 2: 1}


# ---------------------------------------------------------------------- #
# Tail-latency attribution (the acceptance test)
# ---------------------------------------------------------------------- #
class TestExplainRequest:
    def test_fault_delay_attributed_to_culprit_step(self, model, monkeypatch):
        """A seeded decode.step delay must be fingered by explain_request.

        The injector stalls decode visit 5 for 80ms — an ITL spike two
        orders of magnitude above this model's ~1ms steps.  The recorder
        must attribute each victim's worst gap to exactly that step record:
        correct seq, the co-batched sibling session, and the fault event.
        """
        monkeypatch.setenv("REPRO_FAULTS", "1")
        injector = FaultInjector(
            [FaultSpec(site="decode.step", at=5, action="delay",
                       delay_s=0.08)], seed=11)
        server = InferenceServer(model=model, fault_injector=injector)
        first = server.submit_generation("tell me a story",
                                         max_new_tokens=12)
        second = server.submit_generation("sing me a song",
                                          max_new_tokens=12)
        server.run_until_idle()
        first.result(); second.result()

        assert injector.total_fired == 1
        fault_steps = [r for r in server.telemetry.records() if r.faults]
        assert len(fault_steps) == 1, "the delay fires inside exactly one step"
        culprit_step = fault_steps[0]
        assert culprit_step.faults == (("decode.step", 5, "delay"),)
        assert set(culprit_step.decode_sessions) == {first.request_id,
                                                     second.request_id}

        for victim, sibling in ((first, second), (second, first)):
            explanation = server.explain_request(victim.request_id)
            assert explanation.request_id == victim.request_id
            assert explanation.outcome == "ok"
            worst = explanation.worst_gaps[0]
            # The spike dwarfs ordinary steps and sits on the delayed step.
            assert worst.gap_s >= 0.08
            assert worst.culprit is not None
            assert worst.culprit.seq == culprit_step.seq
            assert sibling.request_id in worst.co_sessions
            assert victim.request_id not in worst.co_sessions
            assert ("decode.step", 5, "delay") in worst.faults
            # The JSON view names the culprit too.
            as_dict = explanation.to_dict()
            assert as_dict["worst_gaps"][0]["culprit_seq"] == culprit_step.seq

    def test_ttft_attribution_names_own_prefill(self, model):
        # Chunked prefill: a long prompt's TTFT is explained by its own
        # PREFILLING chunks across several step records.
        policy = SchedulerPolicy(prefill_chunk_size=4, step_token_budget=8)
        server = InferenceServer(model=model, policy=policy)
        prompt = "a much longer prompt that certainly spans several chunks"
        handle = server.submit_generation(prompt, max_new_tokens=3)
        server.run_until_idle()
        handle.result()
        explanation = server.explain_request(handle.request_id)
        assert explanation.ttft is not None
        assert explanation.ttft.token_index == 0
        assert handle.request_id in explanation.ttft.prefill_sessions
        chunked = [r for r in explanation.ttft.steps
                   if any(sid == handle.request_id
                          for sid, _ in r.prefill_chunks)]
        assert len(chunked) >= 2, "chunked prefill spans multiple steps"

    def test_unknown_or_inflight_request_raises(self, model):
        server = InferenceServer(model=model)
        with pytest.raises(KeyError, match="no completed request"):
            server.explain_request(999)
