"""Tests for the ABR substrate: manifests, traces, simulator, QoE, policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.abr import (
    ABR_SETTINGS,
    ABREnvironment,
    ABRObservation,
    BBAPolicy,
    BandwidthTrace,
    EmulationConfig,
    GenetPolicy,
    HISTORY_LENGTH,
    MPCPolicy,
    OracleMPCPolicy,
    SimulatorConfig,
    StreamingSession,
    VideoManifest,
    build_setting,
    cellular_like_traces,
    chunk_reward,
    envivio_dash3,
    fcc_like_traces,
    get_traces,
    get_video,
    normalize_observation,
    observe,
    rollout,
    run_realworld_test,
    simulate_session,
    synth_traces,
    synth_video,
    train_genet,
)


class TestVideo:
    def test_envivio_ladder_matches_pensieve(self):
        video = envivio_dash3()
        assert video.bitrates_kbps == (300, 750, 1200, 1850, 2850, 4300)
        assert video.num_chunks == 48
        assert video.chunk_seconds == 4.0

    def test_synth_video_has_larger_bitrates(self):
        assert max(synth_video().bitrates_kbps) > max(envivio_dash3().bitrates_kbps)

    def test_chunk_sizes_scale_with_bitrate(self):
        video = envivio_dash3()
        sizes = video.chunk_sizes_bytes
        assert np.all(np.diff(sizes.mean(axis=0)) > 0)

    def test_get_video_lookup(self):
        assert get_video("envivio-dash3").name == "envivio-dash3"
        assert get_video("synthvideo").name == "synth-video"
        with pytest.raises(KeyError):
            get_video("bbb")

    def test_manifest_validation(self):
        with pytest.raises(ValueError):
            VideoManifest("bad", (750, 300), np.ones((4, 2)))
        with pytest.raises(ValueError):
            VideoManifest("bad", (300, 750), np.ones((4, 3)))


class TestTraces:
    def test_generators_produce_requested_count(self):
        for generator in (fcc_like_traces, cellular_like_traces, synth_traces):
            traces = generator(count=5, duration=100.0, seed=0)
            assert len(traces) == 5
            for trace in traces:
                assert trace.duration >= 90.0
                assert np.all(trace.bandwidth_mbps > 0)

    def test_synth_traces_more_variable_than_fcc(self):
        fcc = fcc_like_traces(count=10, seed=0)
        synth = synth_traces(count=10, seed=0)
        fcc_cv = np.mean([t.bandwidth_mbps.std() / t.bandwidth_mbps.mean() for t in fcc])
        synth_cv = np.mean([t.bandwidth_mbps.std() / t.bandwidth_mbps.mean() for t in synth])
        assert synth_cv > fcc_cv

    def test_bandwidth_at_loops(self):
        trace = BandwidthTrace(timestamps=np.array([0.0, 10.0, 20.0]),
                               bandwidth_mbps=np.array([1.0, 2.0, 3.0]), name="t")
        assert trace.bandwidth_at(5.0) == 1.0
        assert trace.bandwidth_at(15.0) == 2.0
        assert trace.bandwidth_at(25.0) == 1.0  # wrapped around the 20 s duration

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            BandwidthTrace(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            BandwidthTrace(np.array([0.0, 1.0]), np.array([1.0, -1.0]))

    def test_get_traces_lookup(self):
        assert get_traces("fcc", count=2)[0].name.startswith("fcc")
        assert get_traces("cellular", count=2)[0].name.startswith("cellular")
        with pytest.raises(KeyError):
            get_traces("lte")

    def test_settings_table3(self):
        assert set(ABR_SETTINGS) == {"default_train", "default_test", "unseen_setting1",
                                     "unseen_setting2", "unseen_setting3"}
        video, traces = build_setting(ABR_SETTINGS["unseen_setting3"], num_traces=3)
        assert video.name == "synth-video"
        assert traces[0].name.startswith("synth")


class TestSimulator:
    def test_session_downloads_all_chunks(self, abr_setup):
        video, traces, _ = abr_setup
        session = StreamingSession(video, traces[0])
        result = session.run_policy(BBAPolicy())
        assert result.num_chunks == video.num_chunks
        assert session.finished

    def test_buffer_never_negative_and_capped(self, abr_setup):
        video, traces, _ = abr_setup
        config = SimulatorConfig(max_buffer_seconds=30.0)
        session = StreamingSession(video, traces[0], config=config)
        while not session.finished:
            session.download_chunk(0)
            assert 0.0 <= session.buffer_seconds <= 30.0

    def test_low_bandwidth_high_bitrate_rebuffers(self):
        video = envivio_dash3(num_chunks=10)
        slow = BandwidthTrace(np.arange(0, 400, 4.0), np.full(100, 0.3), name="slow")
        session = StreamingSession(video, slow)
        result = session.run_policy(type("Max", (), {
            "select_bitrate": lambda self, s: s.video.num_bitrates - 1,
            "reset": lambda self: None})())
        assert result.total_rebuffer_seconds > 0

    def test_high_bandwidth_no_rebuffering_after_startup(self):
        video = envivio_dash3(num_chunks=10)
        fast = BandwidthTrace(np.arange(0, 400, 4.0), np.full(100, 50.0), name="fast")
        config = SimulatorConfig(initial_buffer_seconds=4.0)
        result = simulate_session(BBAPolicy(), video, fast, config=config)
        assert result.total_rebuffer_seconds == pytest.approx(0.0, abs=1e-9)

    def test_invalid_bitrate_rejected(self, abr_setup):
        video, traces, _ = abr_setup
        session = StreamingSession(video, traces[0])
        with pytest.raises(ValueError):
            session.download_chunk(99)

    def test_download_after_finish_rejected(self):
        video = envivio_dash3(num_chunks=2)
        trace = BandwidthTrace(np.array([0.0, 100.0]), np.array([5.0, 5.0]), name="t")
        session = StreamingSession(video, trace)
        session.download_chunk(0)
        session.download_chunk(0)
        with pytest.raises(RuntimeError):
            session.download_chunk(0)


class TestQoE:
    def test_chunk_reward_formula(self):
        reward = chunk_reward(3.0, rebuffer_seconds=1.0, previous_bitrate_mbps=2.0)
        assert reward == pytest.approx(3.0 - 4.3 * 1.0 - 1.0)

    def test_session_qoe_matches_manual_computation(self, abr_setup):
        video, traces, _ = abr_setup
        result = simulate_session(BBAPolicy(), video, traces[0])
        manual = (result.bitrates_mbps.sum()
                  - 4.3 * result.rebuffer_seconds.sum()
                  - np.abs(np.diff(result.bitrates_mbps)).sum()) / result.num_chunks
        assert result.qoe() == pytest.approx(manual)

    def test_per_chunk_qoe_sums_to_total(self, abr_setup):
        video, traces, _ = abr_setup
        result = simulate_session(MPCPolicy(horizon=3), video, traces[0])
        assert result.per_chunk_qoe().sum() / result.num_chunks == pytest.approx(result.qoe())

    def test_breakdown_keys(self, abr_setup):
        video, traces, _ = abr_setup
        breakdown = simulate_session(BBAPolicy(), video, traces[0]).breakdown()
        assert set(breakdown) == {"qoe", "bitrate", "rebuffering", "bitrate_variation"}


class TestPolicies:
    def test_bba_monotone_in_buffer(self, abr_setup):
        video, traces, _ = abr_setup
        policy = BBAPolicy(reservoir_seconds=5, cushion_seconds=40)
        session = StreamingSession(video, traces[0])
        session.buffer_seconds = 2.0
        low = policy.select_bitrate(session)
        session.buffer_seconds = 50.0
        high = policy.select_bitrate(session)
        assert low == 0
        assert high == video.num_bitrates - 1

    def test_bba_validation(self):
        with pytest.raises(ValueError):
            BBAPolicy(reservoir_seconds=10, cushion_seconds=5)

    def test_mpc_actions_always_valid(self, abr_setup):
        video, traces, _ = abr_setup
        result = simulate_session(MPCPolicy(horizon=4), video, traces[0])
        indices = [r.bitrate_index for r in result.records]
        assert all(0 <= i < video.num_bitrates for i in indices)

    def test_mpc_beats_bba_on_average(self, abr_setup):
        video, traces, test_traces = abr_setup
        bba = np.mean([simulate_session(BBAPolicy(), video, t, seed=i).qoe()
                       for i, t in enumerate(test_traces)])
        mpc = np.mean([simulate_session(MPCPolicy(horizon=5), video, t, seed=i).qoe()
                       for i, t in enumerate(test_traces)])
        assert mpc > bba

    def test_oracle_mpc_runs(self, abr_setup):
        video, traces, _ = abr_setup
        result = simulate_session(OracleMPCPolicy(horizon=4), video, traces[0])
        assert result.num_chunks == video.num_chunks

    def test_observation_shapes_and_normalization(self, abr_setup):
        video, traces, _ = abr_setup
        session = StreamingSession(video, traces[0])
        session.download_chunk(0)
        observation = observe(session)
        flat = observation.flatten()
        assert flat.shape == (ABRObservation.flat_size(video.num_bitrates),)
        normalized = normalize_observation(flat)
        assert normalized.shape == flat.shape
        assert np.all(np.isfinite(normalized))

    def test_environment_rollout(self, abr_setup):
        video, traces, _ = abr_setup
        env = ABREnvironment(video, traces, seed=0)
        outcome = rollout(env, BBAPolicy())
        assert len(outcome["steps"]) == video.num_chunks
        assert outcome["session"].num_chunks == video.num_chunks

    def test_environment_requires_traces(self, abr_setup):
        video, _, _ = abr_setup
        with pytest.raises(ValueError):
            ABREnvironment(video, [])

    def test_genet_training_and_inference(self, abr_setup):
        video, traces, test_traces = abr_setup
        env = ABREnvironment(video, traces, seed=0)
        policy, result = train_genet(env, imitation_epochs=20, seed=0)
        assert result.imitation_losses[-1] < result.imitation_losses[0]
        qoe = np.mean([simulate_session(policy, video, t, seed=i).qoe()
                       for i, t in enumerate(test_traces)])
        # At this tiny scale the learned policy should at least be in the same
        # league as its MPC teacher (the full comparison lives in the benchmarks).
        mpc = np.mean([simulate_session(MPCPolicy(horizon=5), video, t, seed=i).qoe()
                       for i, t in enumerate(test_traces)])
        assert qoe > 0.6 * mpc

    def test_genet_validation(self, abr_setup):
        video, traces, _ = abr_setup
        env = ABREnvironment(video, traces, seed=0)
        with pytest.raises(ValueError):
            train_genet(env, imitation_epochs=0, rl_episodes=0)

    def test_realworld_emulation(self, abr_setup):
        video, _, _ = abr_setup
        config = EmulationConfig(num_traces=2, trace_duration=150.0)
        results = run_realworld_test({"BBA": BBAPolicy()}, "cellular", video=video, config=config)
        assert "BBA" in results and "qoe" in results["BBA"]
        with pytest.raises(KeyError):
            run_realworld_test({"BBA": BBAPolicy()}, "satellite", video=video, config=config)


@settings(max_examples=10, deadline=None)
@given(st.floats(min_value=0.1, max_value=10.0), st.floats(min_value=0.0, max_value=5.0))
def test_property_chunk_reward_decreases_with_rebuffering(bitrate, rebuffer):
    base = chunk_reward(bitrate, 0.0, bitrate)
    worse = chunk_reward(bitrate, rebuffer, bitrate)
    assert worse <= base
