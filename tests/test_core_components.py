"""Tests for NetLLM core components: encoders, heads, adapters, experience pool."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ABRHead,
    CJSHead,
    DecisionAdapter,
    DecisionBatch,
    DiscreteEncoder,
    ExperiencePool,
    GraphModalityEncoder,
    ImageEncoder,
    ScalarEncoder,
    TASKS,
    TimeSeriesEncoder,
    Trajectory,
    VPAdapter,
    VPHead,
    tokens_to_sequence,
)
from repro.nn import Tensor
from repro.vp import VPSample


class TestEncoders:
    def test_time_series_encoder_single_token(self):
        encoder = TimeSeriesEncoder(in_channels=3, d_model=32)
        out = encoder(Tensor(np.random.default_rng(0).normal(size=(4, 10, 3))))
        assert out.shape == (4, 32)

    def test_time_series_encoder_sequence_tokens(self):
        encoder = TimeSeriesEncoder(in_channels=3, d_model=32)
        out = encoder.forward_sequence(Tensor(np.random.default_rng(0).normal(size=(4, 10, 3))))
        assert out.shape == (4, 10, 32)

    def test_image_encoder_frozen_backbone(self):
        encoder = ImageEncoder(d_model=32, freeze_backbone=True)
        images = np.random.default_rng(0).random((2, 32, 32))
        assert encoder(images).shape == (2, 32)
        backbone_params = encoder.encoder.parameters()
        assert all(not p.requires_grad for p in backbone_params)
        projector_params = encoder.projector.parameters()
        assert all(p.requires_grad for p in projector_params)

    def test_scalar_encoder(self):
        encoder = ScalarEncoder(in_features=5, d_model=16)
        assert encoder(Tensor(np.ones((3, 5)))).shape == (3, 16)

    def test_graph_encoder_batches_graphs(self):
        encoder = GraphModalityEncoder(node_features=3, d_model=16)
        features = [np.random.default_rng(i).normal(size=(4, 3)) for i in range(2)]
        adjacency = [np.eye(4) * 0 for _ in range(2)]
        assert encoder(features, adjacency).shape == (2, 16)

    def test_discrete_encoder(self):
        encoder = DiscreteEncoder(num_values=7, d_model=12)
        assert encoder(np.array([[0, 6], [3, 2]])).shape == (2, 2, 12)

    def test_tokens_to_sequence(self):
        tokens = [Tensor(np.ones((2, 8))), Tensor(np.zeros((2, 8)))]
        assert tokens_to_sequence(tokens).shape == (2, 2, 8)
        with pytest.raises(ValueError):
            tokens_to_sequence([])

    def test_token_embeddings_are_normalized(self):
        """Layer normalization keeps token embeddings well-scaled (§4.1)."""
        encoder = ScalarEncoder(in_features=4, d_model=32)
        out = encoder(Tensor(np.random.default_rng(0).normal(0, 100, size=(6, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(6), atol=1e-6)


class TestHeads:
    def test_vp_head_output_shape(self):
        head = VPHead(d_model=16, prediction_steps=5)
        out = head(Tensor(np.random.default_rng(0).normal(size=(3, 16))))
        assert out.shape == (3, 5, 3)

    def test_abr_head_always_valid(self):
        head = ABRHead(d_model=16, num_bitrates=6)
        features = Tensor(np.random.default_rng(1).normal(size=(10, 16)))
        choices = head.select(features)
        assert choices.shape == (10,)
        assert np.all((choices >= 0) & (choices < 6))

    def test_cjs_head_masking(self):
        head = CJSHead(d_model=16, max_candidates=8, num_parallelism_buckets=4)
        features = Tensor(np.random.default_rng(2).normal(size=(5, 16)))
        mask = np.zeros(8)
        mask[:3] = 1.0
        stages, buckets = head.select(features, valid_mask=mask)
        assert np.all(stages < 3)
        assert np.all((buckets >= 0) & (buckets < 4))

    def test_single_inference_answer_generation(self, tiny_llm):
        """The networking head produces an answer from ONE LLM forward pass."""
        head = ABRHead(d_model=tiny_llm.d_model, num_bitrates=6)
        embeddings = Tensor(np.random.default_rng(0).normal(size=(1, 4, tiny_llm.d_model)))
        features = tiny_llm.forward_embeddings(embeddings)
        choice = head.select(features[:, -1, :])
        assert choice.shape == (1,)
        assert 0 <= int(choice[0]) < 6


class TestVPAdapter:
    def test_forward_and_predict_shapes(self, tiny_llm, vp_data):
        setting, train, _ = vp_data
        adapter = VPAdapter(tiny_llm, prediction_steps=setting.prediction_steps, seed=0)
        histories = np.stack([s.history for s in train[:3]])
        saliencies = np.stack([s.saliency for s in train[:3]])
        out = adapter.forward(histories, saliencies)
        assert out.shape == (3, setting.prediction_steps, 3)
        single = adapter.predict(train[0])
        assert single.shape == (setting.prediction_steps, 3)

    def test_backbone_frozen_adapter_trainable(self, tiny_llm, vp_data):
        setting, _, _ = vp_data
        adapter = VPAdapter(tiny_llm, prediction_steps=setting.prediction_steps, seed=0)
        fraction = adapter.trainable_fraction()
        assert 0 < fraction < 1.0
        llm_frozen = [p for n, p in adapter.llm.named_parameters()
                      if not (n.endswith("lora_a") or n.endswith("lora_b"))]
        assert all(not p.requires_grad for p in llm_frozen)

    def test_works_without_saliency(self, tiny_llm, vp_data):
        setting, train, _ = vp_data
        adapter = VPAdapter(tiny_llm, prediction_steps=setting.prediction_steps,
                            use_saliency=False, seed=0)
        out = adapter.forward(np.stack([s.history for s in train[:2]]), None)
        assert out.shape == (2, setting.prediction_steps, 3)

    def test_domain_knowledge_toggle(self, tiny_llm, vp_data):
        setting, train, _ = vp_data
        adapter = VPAdapter(tiny_llm, prediction_steps=setting.prediction_steps, seed=0)
        adapter.set_domain_knowledge_enabled(False)
        adapter.set_domain_knowledge_enabled(True)


class TestDecisionAdapter:
    def test_abr_adapter_shapes(self, tiny_llm):
        adapter = DecisionAdapter(tiny_llm, state_dim=12, action_dims=(6,), context_window=4,
                                  head="abr", seed=0)
        batch = DecisionBatch(
            returns=np.ones((2, 4, 1)),
            states=np.random.default_rng(0).normal(size=(2, 4, 12)),
            actions=np.random.default_rng(1).integers(0, 6, size=(2, 4, 1)),
        )
        logits = adapter.forward(batch)
        assert len(logits) == 1
        assert logits[0].shape == (2, 4, 6)

    def test_cjs_adapter_two_heads(self, tiny_llm):
        adapter = DecisionAdapter(tiny_llm, state_dim=10, action_dims=(8, 4), context_window=3,
                                  head="cjs", seed=0)
        batch = DecisionBatch(
            returns=np.zeros((1, 3, 1)),
            states=np.zeros((1, 3, 10)),
            actions=np.zeros((1, 3, 2), dtype=np.int64),
        )
        stage_logits, parallel_logits = adapter.forward(batch)
        assert stage_logits.shape == (1, 3, 8)
        assert parallel_logits.shape == (1, 3, 4)

    def test_act_returns_valid_components(self, tiny_llm):
        adapter = DecisionAdapter(tiny_llm, state_dim=10, action_dims=(8, 4), context_window=3,
                                  head="cjs", seed=0)
        mask = np.array([1, 1, 0, 0, 0, 0, 0, 0], dtype=float)
        stage, bucket = adapter.act(np.zeros((2, 1)), np.zeros((2, 10)),
                                    np.zeros((2, 2), dtype=np.int64), valid_mask=mask)
        assert stage in (0, 1)
        assert 0 <= bucket < 4

    def test_head_kind_validation(self, tiny_llm):
        with pytest.raises(ValueError):
            DecisionAdapter(tiny_llm, state_dim=4, action_dims=(3, 2), head="abr")
        with pytest.raises(ValueError):
            DecisionAdapter(tiny_llm, state_dim=4, action_dims=(3,), head="cjs")
        with pytest.raises(ValueError):
            DecisionAdapter(tiny_llm, state_dim=4, action_dims=(3,), head="unknown")


class TestExperiencePool:
    def _trajectory(self, length=6, reward=1.0, name="p"):
        return Trajectory(states=np.random.default_rng(0).normal(size=(length, 4)),
                          actions=np.zeros((length, 1), dtype=np.int64),
                          rewards=np.full(length, reward), policy_name=name)

    def test_returns_to_go(self):
        trajectory = Trajectory(states=np.zeros((3, 2)), actions=np.zeros((3, 1)),
                                rewards=np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(trajectory.returns_to_go(), [6.0, 5.0, 3.0])

    def test_pool_add_and_summary(self):
        pool = ExperiencePool(state_dim=4, action_dims=(3,))
        pool.add(self._trajectory(reward=1.0, name="good"))
        pool.add(self._trajectory(reward=-1.0, name="bad"))
        summary = pool.summary()
        assert summary["num_trajectories"] == 2
        assert pool.best_return == pytest.approx(6.0)
        assert pool.policy_names() == ["bad", "good"]

    def test_pool_validates_dimensions(self):
        pool = ExperiencePool(state_dim=4, action_dims=(3,))
        with pytest.raises(ValueError):
            pool.add(Trajectory(states=np.zeros((3, 5)), actions=np.zeros((3, 1)),
                                rewards=np.zeros(3)))
        with pytest.raises(ValueError):
            pool.add(Trajectory(states=np.zeros((3, 4)), actions=np.full((3, 1), 7),
                                rewards=np.zeros(3)))

    def test_sampling_shapes_and_padding(self):
        pool = ExperiencePool(state_dim=4, action_dims=(3,))
        pool.add(self._trajectory(length=3))
        returns, states, actions = pool.sample_windows(batch_size=5, window=6, seed=0)
        assert returns.shape == (5, 6, 1)
        assert states.shape == (5, 6, 4)
        assert actions.shape == (5, 6, 1)

    def test_sampling_from_empty_pool_rejected(self):
        pool = ExperiencePool(state_dim=4, action_dims=(3,))
        with pytest.raises(ValueError):
            pool.sample_windows(2, 4)

    def test_empty_trajectory_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(states=np.zeros((0, 4)), actions=np.zeros((0, 1)), rewards=np.zeros(0))

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=1, max_size=20))
    def test_property_returns_to_go_first_equals_total(self, rewards):
        length = len(rewards)
        trajectory = Trajectory(states=np.zeros((length, 2)), actions=np.zeros((length, 1)),
                                rewards=np.asarray(rewards))
        rtg = trajectory.returns_to_go()
        assert rtg[0] == pytest.approx(sum(rewards), abs=1e-9)
        # Returns-to-go must satisfy the recursion R_t = r_t + R_{t+1}.
        for t in range(length - 1):
            assert rtg[t] == pytest.approx(rewards[t] + rtg[t + 1], abs=1e-9)


class TestTaskInventory:
    def test_table1_rows(self):
        assert set(TASKS) == {"vp", "abr", "cjs"}
        assert TASKS["vp"].learning_paradigm == "SL"
        assert TASKS["abr"].learning_paradigm == "RL"
        assert TASKS["cjs"].learning_paradigm == "RL"

    def test_packages_exist(self):
        import importlib

        for info in TASKS.values():
            assert importlib.import_module(info.package)
