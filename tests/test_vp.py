"""Tests for the viewport-prediction substrate: datasets, metric, baselines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vp import (
    DATASET_SPECS,
    SALIENCY_SIZE,
    VP_SETTINGS,
    LinearRegressionPredictor,
    VPSample,
    VelocityPredictor,
    ViewportDataset,
    evaluate_predictor,
    make_vp_data,
    mean_absolute_error,
    train_track,
)


class TestSettings:
    def test_table2_rows_present(self):
        assert set(VP_SETTINGS) == {"default_train", "default_test", "unseen_setting1",
                                    "unseen_setting2", "unseen_setting3"}

    def test_window_steps_follow_sample_rate(self):
        default = VP_SETTINGS["default_test"]
        assert default.history_steps == 10   # 2 s at 5 Hz
        assert default.prediction_steps == 20  # 4 s at 5 Hz

    def test_unseen_settings_change_dataset_or_windows(self):
        default = VP_SETTINGS["default_test"]
        assert VP_SETTINGS["unseen_setting1"].prediction_seconds > default.prediction_seconds
        assert VP_SETTINGS["unseen_setting2"].dataset != default.dataset


class TestDataset:
    def test_trace_generation_shapes(self):
        dataset = ViewportDataset("jin2022", seed=0, num_videos=2, num_viewers=3,
                                  video_seconds=20)
        assert len(dataset.traces) == 6
        trace = dataset.traces[0]
        assert trace.viewports.shape == (100, 3)  # 20 s * 5 Hz

    def test_pitch_and_roll_bounded(self):
        dataset = ViewportDataset("jin2022", seed=1, num_videos=2, num_viewers=2,
                                  video_seconds=30)
        for trace in dataset.traces:
            assert np.all(np.abs(trace.viewports[:, 0]) <= 20.0)   # roll
            assert np.all(np.abs(trace.viewports[:, 1]) <= 45.0)   # pitch

    def test_saliency_maps_normalized(self):
        dataset = ViewportDataset("wu2017", seed=0, num_videos=2, num_viewers=2,
                                  video_seconds=20)
        for video in dataset.videos:
            assert video.saliency.shape == (SALIENCY_SIZE, SALIENCY_SIZE)
            assert 0.0 <= video.saliency.min() and video.saliency.max() == pytest.approx(1.0)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            ViewportDataset("jin2099")

    def test_split_by_viewer_is_disjoint(self):
        dataset = ViewportDataset("jin2022", seed=0, num_videos=2, num_viewers=6,
                                  video_seconds=20)
        train, val, test = dataset.split_traces(seed=0)
        train_viewers = {t.viewer_id for t in train}
        test_viewers = {t.viewer_id for t in test}
        assert train_viewers.isdisjoint(test_viewers)
        assert len(train) + len(val) + len(test) == len(dataset.traces)

    def test_split_fraction_validation(self):
        dataset = ViewportDataset("jin2022", seed=0, num_videos=1, num_viewers=2,
                                  video_seconds=20)
        with pytest.raises(ValueError):
            dataset.split_traces(fractions=(0.5, 0.2, 0.2))

    def test_windowing_shapes_and_counts(self, vp_data):
        setting, train, test = vp_data
        assert train and test
        sample = train[0]
        assert sample.history.shape == (setting.history_steps, 3)
        assert sample.future.shape == (setting.prediction_steps, 3)
        assert sample.saliency is not None

    def test_windowing_respects_max_samples(self):
        setting = VP_SETTINGS["default_test"]
        dataset = ViewportDataset("jin2022", seed=0, num_videos=2, num_viewers=4,
                                  video_seconds=30)
        traces, _, _ = dataset.split_traces(seed=0)
        samples = dataset.windows_from_traces(traces, setting, stride_steps=2, max_samples=10)
        assert len(samples) == 10

    def test_make_vp_data_returns_train_and_test(self):
        train, test = make_vp_data(VP_SETTINGS["default_test"], seed=0, num_videos=2,
                                   num_viewers=4, video_seconds=20)
        assert train and test

    def test_determinism_with_same_seed(self):
        a = ViewportDataset("jin2022", seed=5, num_videos=1, num_viewers=2, video_seconds=20)
        b = ViewportDataset("jin2022", seed=5, num_videos=1, num_viewers=2, video_seconds=20)
        np.testing.assert_allclose(a.traces[0].viewports, b.traces[0].viewports)

    def test_wu2017_more_dynamic_than_jin2022(self):
        """Unseen dataset should be harder (larger motion), as intended by Table 2."""
        assert DATASET_SPECS["wu2017"].saccade_prob > DATASET_SPECS["jin2022"].saccade_prob


class TestMetric:
    def test_mae_zero_for_perfect_prediction(self):
        future = np.ones((5, 3))
        assert mean_absolute_error(future, future) == 0.0

    def test_mae_known_value(self):
        pred = np.zeros((2, 3))
        actual = np.ones((2, 3)) * 3.0
        assert mean_absolute_error(pred, actual) == pytest.approx(3.0)

    def test_mae_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            VPSample(history=np.zeros((5, 2)), future=np.zeros((5, 3)))

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.0, max_value=50.0))
    def test_property_mae_equals_constant_offset(self, offset):
        base = np.zeros((4, 3))
        assert mean_absolute_error(base + offset, base) == pytest.approx(offset)


class TestBaselines:
    def test_linear_regression_extrapolates_line(self):
        steps = 10
        history = np.column_stack([np.arange(steps) * 2.0,
                                   np.arange(steps) * -1.0,
                                   np.full(steps, 5.0)])
        sample = VPSample(history=history, future=np.zeros((4, 3)))
        prediction = LinearRegressionPredictor(4).predict(sample)
        np.testing.assert_allclose(prediction[:, 0], [20.0, 22.0, 24.0, 26.0], atol=1e-8)
        np.testing.assert_allclose(prediction[:, 2], np.full(4, 5.0), atol=1e-8)

    def test_velocity_extrapolates_constant_speed(self):
        history = np.column_stack([np.arange(5) * 1.0, np.zeros(5), np.zeros(5)])
        sample = VPSample(history=history, future=np.zeros((3, 3)))
        prediction = VelocityPredictor(3).predict(sample)
        np.testing.assert_allclose(prediction[:, 0], [5.0, 6.0, 7.0], atol=1e-8)

    def test_velocity_handles_single_sample_history(self):
        sample = VPSample(history=np.ones((1, 3)), future=np.zeros((2, 3)))
        prediction = VelocityPredictor(2).predict(sample)
        np.testing.assert_allclose(prediction, np.ones((2, 3)))

    def test_predictor_validation(self):
        with pytest.raises(ValueError):
            LinearRegressionPredictor(0)
        with pytest.raises(ValueError):
            VelocityPredictor(0)

    def test_track_training_reduces_loss_and_beats_naive(self, vp_data):
        setting, train, test = vp_data
        track, result = train_track(train, setting.prediction_steps, epochs=4, seed=0)
        assert result.losses[-1] < result.losses[0]
        track_mae = evaluate_predictor(track, test)["mae"]
        lr_mae = evaluate_predictor(LinearRegressionPredictor(setting.prediction_steps), test)["mae"]
        # The learned baseline should beat naive extrapolation on this data.
        assert track_mae < lr_mae

    def test_track_requires_samples(self):
        with pytest.raises(ValueError):
            train_track([], prediction_steps=4)

    def test_evaluate_predictor_returns_per_sample_errors(self, vp_data):
        setting, _, test = vp_data
        result = evaluate_predictor(VelocityPredictor(setting.prediction_steps), test[:5])
        assert len(result["per_sample_mae"]) == 5
        assert result["mae"] == pytest.approx(np.mean(result["per_sample_mae"]))
