"""Tests for shared utilities: RNG, statistics, timers."""

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils import (
    RunningStats,
    Timer,
    empirical_cdf,
    normalize_min_max,
    percentile,
    seeded_rng,
    spawn_rngs,
    summarize,
)


class TestRNG:
    def test_seeded_rng_deterministic(self):
        assert seeded_rng(3).integers(0, 100) == seeded_rng(3).integers(0, 100)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert seeded_rng(gen) is gen

    def test_spawn_rngs_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(0, 10**6) != b.integers(0, 10**6)

    def test_spawn_rngs_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestStats:
    def test_running_stats_matches_numpy(self):
        values = np.random.default_rng(0).normal(size=100)
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(values.mean())
        assert stats.std == pytest.approx(values.std(ddof=0), rel=1e-2)
        assert stats.minimum == pytest.approx(values.min())
        assert stats.maximum == pytest.approx(values.max())
        assert stats.as_dict()["count"] == 100

    def test_empirical_cdf_monotone(self):
        xs, cdf = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_allclose(xs, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(cdf, [1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_empty(self):
        xs, cdf = empirical_cdf([])
        assert xs.size == 0 and cdf.size == 0

    def test_percentile(self):
        assert percentile(range(101), 90) == pytest.approx(90.0)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_normalize_min_max(self):
        normalized = normalize_min_max({"a": 0.0, "b": 5.0, "c": 10.0})
        assert normalized == {"a": 0.0, "b": 0.5, "c": 1.0}
        assert normalize_min_max({"a": 3.0, "b": 3.0}) == {"a": 0.5, "b": 0.5}
        assert normalize_min_max({}) == {}

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert {"mean", "std", "p50", "p90", "min", "max", "count"} <= set(summary)
        assert summarize([]) == {"count": 0}

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1,
                    max_size=50))
    def test_property_cdf_reaches_one(self, values):
        _, cdf = empirical_cdf(values)
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= 0)


class TestTimer:
    def test_named_segments_accumulate(self):
        timer = Timer()
        timer.start("a")
        time.sleep(0.01)
        timer.stop("a")
        timer.start("a")
        time.sleep(0.01)
        timer.stop("a")
        assert timer.total("a") >= 0.02
        assert timer.total() >= timer.total("a")

    def test_stop_without_start_raises(self):
        with pytest.raises(KeyError):
            Timer().stop("missing")

    def test_context_manager(self):
        with Timer() as timer:
            time.sleep(0.005)
        assert timer.elapsed >= 0.004
