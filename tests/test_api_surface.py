"""Public-API snapshot for ``repro.serve``.

The serving package is the repo's outward-facing surface: these tests pin
``repro.serve.__all__`` and the signatures of the typed request/result
dataclasses so a future PR that changes the wire surface has to edit this
file — breaking the API consciously instead of by accident.
"""

from __future__ import annotations

import dataclasses
import inspect

import repro.serve as serve

#: The exported surface.  Additions are fine (extend the list); removals or
#: renames are breaking changes — update every client with the same PR.
EXPECTED_ALL = {
    # Typed requests / results / errors.
    "GenerateRequest", "DecisionRequest",
    "GenerationResult", "VPResult", "ABRResult", "CJSResult",
    "RequestCancelled", "DeadlineExceeded",
    "RequestFailed", "ServerOverloaded",
    "PRIORITY_LOW", "PRIORITY_NORMAL", "PRIORITY_HIGH",
    # Pluggable task runtimes.
    "TaskRuntime", "VPRuntime", "ABRRuntime", "CJSRuntime", "build_runtime",
    # Engine and scheduling.
    "InferenceServer", "RequestHandle",
    "ContinuousBatchingScheduler", "SchedulerPolicy", "RetryPolicy",
    "GenerationSession", "SessionManager",
    # Speculative decoding (draft proposers + adaptive draft length).
    "DraftProposer", "NgramProposer", "AdaptiveK",
    "PrefixCache", "PrefixEntry",
    "RequestMetrics", "ServeCounters", "ServerStats", "ServerHealth",
    # Flight-recorder observability (trace / windows / attribution).
    "ServeTelemetry", "StepRecord", "TraceLog",
    "WindowAggregator", "WindowStats",
    "GapAttribution", "RequestExplanation",
    # Fault injection (chaos testing; gated behind REPRO_FAULTS).
    "FaultInjector", "FaultSpec", "InjectedFault", "TransientFault",
    "FAULT_SITES",
    # Task-side clients.
    "LockstepABRDriver", "ServedABRPolicy", "ServedCJSScheduler",
    "ServedVPPredictor", "serve_vp_predictions",
}


def _fields(cls):
    return {f.name: f.default for f in dataclasses.fields(cls)}


class TestServeSurface:
    def test_all_matches_snapshot(self):
        assert set(serve.__all__) == EXPECTED_ALL
        for name in serve.__all__:  # every export actually resolves
            assert hasattr(serve, name), f"__all__ lists missing name {name!r}"

    def test_generate_request_signature(self):
        fields = _fields(serve.GenerateRequest)
        assert fields == {
            "prompt": dataclasses.MISSING,
            "max_new_tokens": 64,
            "temperature": 0.0,
            "seed": 0,
            "stop_on_eos": True,
            "stream": False,
            "priority": 0,
            "deadline_s": None,
        }
        assert serve.GenerateRequest.__dataclass_params__.frozen
        assert serve.GenerateRequest.task == "generate"

    def test_decision_request_signature(self):
        fields = _fields(serve.DecisionRequest)
        assert fields == {
            "task": dataclasses.MISSING,
            "payload": None,
            "priority": 0,
            "deadline_s": None,
        }
        assert serve.DecisionRequest.__dataclass_params__.frozen

    def test_result_types(self):
        assert set(_fields(serve.VPResult)) == {"viewport"}
        assert set(_fields(serve.ABRResult)) == {"action"}
        assert set(_fields(serve.CJSResult)) == {"stage_index", "bucket"}
        for result_cls in (serve.VPResult, serve.ABRResult, serve.CJSResult):
            assert result_cls.__dataclass_params__.frozen
            assert isinstance(getattr(result_cls, "value"), property)
        assert isinstance(getattr(serve.ABRResult, "bitrate"), property)
        # Generation resolves to the shared GenerationResult dataclass.
        assert {"text", "token_ids", "num_inferences", "elapsed_seconds",
                "stopped_by_eos"} <= set(_fields(serve.GenerationResult))

    def test_lifecycle_errors(self):
        assert issubclass(serve.RequestCancelled, RuntimeError)
        assert issubclass(serve.DeadlineExceeded, TimeoutError)
        assert issubclass(serve.RequestFailed, RuntimeError)
        assert issubclass(serve.ServerOverloaded, RuntimeError)
        assert issubclass(serve.TransientFault, serve.InjectedFault)
        assert issubclass(serve.InjectedFault, RuntimeError)
        assert (serve.PRIORITY_LOW, serve.PRIORITY_NORMAL,
                serve.PRIORITY_HIGH) == (0, 1, 2)

    def test_request_handle_lifecycle_methods(self):
        for method in ("result", "stream", "cancel", "done", "cancelled"):
            assert callable(getattr(serve.RequestHandle, method))
        stream_params = inspect.signature(serve.RequestHandle.stream).parameters
        assert "timeout" in stream_params

    def test_task_runtime_protocol(self):
        assert hasattr(serve.TaskRuntime, "group_key")
        assert hasattr(serve.TaskRuntime, "execute_batch")
        for runtime_cls in (serve.VPRuntime, serve.ABRRuntime, serve.CJSRuntime):
            assert isinstance(runtime_cls(adapter=None), serve.TaskRuntime)

    def test_server_submission_surface(self):
        submit_params = list(
            inspect.signature(serve.InferenceServer.submit).parameters)
        assert submit_params[:3] == ["self", "request", "payload"]
        for method in ("register_task", "register_adapter", "register_prefix",
                       "submit_generation", "start", "stop", "step",
                       "run_until_idle", "stats"):
            assert callable(getattr(serve.InferenceServer, method))

    def test_scheduler_policy_knobs(self):
        fields = _fields(serve.SchedulerPolicy)
        assert {"max_batch_size", "max_context", "max_queue",
                "priority_aging_s", "block_size", "prefill_padding",
                "ragged_prefill", "enable_prefix_cache", "max_prefixes",
                "prefill_chunk_size", "step_token_budget",
                "retry_policy", "shed_queue_depth", "shed_queue_age_s",
                "health_window_s", "speculation",
                "speculation_k"} == set(fields)
        assert fields["priority_aging_s"] == 30.0
        # Chunked prefill is opt-in: the defaults preserve one-shot prefill
        # with unbounded steps (the pre-chunking engine behaviour).
        assert fields["prefill_chunk_size"] is None
        assert fields["step_token_budget"] is None
        # Fault tolerance is opt-in too: no retries, no shedding by default.
        assert fields["retry_policy"] is None
        assert fields["shed_queue_depth"] is None
        assert fields["shed_queue_age_s"] is None
        # Speculative decoding is opt-in: sequential decode by default.
        assert fields["speculation"] == "off"
        assert fields["speculation_k"] == 4

    def test_retry_policy_knobs(self):
        fields = _fields(serve.RetryPolicy)
        assert {"max_attempts", "backoff_s", "backoff_multiplier",
                "retry_on"} == set(fields)
        assert fields["max_attempts"] == 2  # one retry by default
