"""Tests for convolution, attention, transformer, LSTM and GNN layers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (
    Conv1D,
    GraphEncoder,
    LSTM,
    LSTMCell,
    MultiHeadAttention,
    PatchImageEncoder,
    TemporalConvEncoder,
    Tensor,
    TransformerBackbone,
    TransformerBlock,
    causal_mask,
    normalized_adjacency,
)


class TestConv1D:
    def test_output_length(self):
        conv = Conv1D(2, 4, kernel_size=3, padding=1)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 10, 2)))
        assert conv(x).shape == (2, 10, 4)
        assert conv.output_length(10) == 10

    def test_stride(self):
        conv = Conv1D(1, 2, kernel_size=2, stride=2)
        x = Tensor(np.zeros((1, 8, 1)))
        assert conv(x).shape == (1, 4, 2)

    def test_gradient_flows(self):
        conv = Conv1D(3, 5, kernel_size=3, padding=1)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 6, 3)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad.shape == (2, 6, 3)
        assert conv.weight.grad is not None

    def test_channel_mismatch_rejected(self):
        conv = Conv1D(3, 5, kernel_size=3)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 6, 2))))

    def test_too_short_input_rejected(self):
        conv = Conv1D(1, 1, kernel_size=5)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 3, 1))))

    def test_temporal_encoder_pools_to_feature_dim(self):
        encoder = TemporalConvEncoder(in_channels=2, feature_dim=16)
        out = encoder(Tensor(np.random.default_rng(2).normal(size=(4, 12, 2))))
        assert out.shape == (4, 16)

    def test_patch_image_encoder(self):
        encoder = PatchImageEncoder(image_size=32, patch_size=8, feature_dim=24)
        images = np.random.default_rng(3).random((5, 32, 32))
        out = encoder(images)
        assert out.shape == (5, 24)
        with pytest.raises(ValueError):
            encoder(np.zeros((1, 16, 16)))


class TestAttention:
    def test_causal_mask_structure(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert np.all(mask[np.tril_indices(4)] == 0)
        assert np.all(mask[np.triu_indices(4, k=1)] < -1e8)

    def test_attention_shapes(self):
        attn = MultiHeadAttention(d_model=16, num_heads=4)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)))
        assert attn(x).shape == (2, 5, 16)

    def test_invalid_head_count(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(d_model=10, num_heads=3)

    def test_causality_future_does_not_leak(self):
        """Changing a future timestep must not change earlier outputs."""
        backbone = TransformerBackbone(d_model=16, num_layers=2, num_heads=2, max_seq_len=8)
        rng = np.random.default_rng(4)
        base = rng.normal(size=(1, 6, 16))
        modified = base.copy()
        modified[0, 5, :] = rng.normal(size=16) * 3.0
        out_base = backbone(Tensor(base)).data
        out_mod = backbone(Tensor(modified)).data
        np.testing.assert_allclose(out_base[0, :5], out_mod[0, :5], atol=1e-9)
        assert not np.allclose(out_base[0, 5], out_mod[0, 5])

    def test_backbone_rejects_long_sequences(self):
        backbone = TransformerBackbone(d_model=8, num_layers=1, num_heads=1, max_seq_len=4)
        with pytest.raises(ValueError):
            backbone(Tensor(np.zeros((1, 5, 8))))

    def test_backbone_rejects_wrong_dim(self):
        backbone = TransformerBackbone(d_model=8, num_layers=1, num_heads=1, max_seq_len=4)
        with pytest.raises(ValueError):
            backbone(Tensor(np.zeros((1, 3, 16))))

    def test_lora_backbone_has_lora_parameters(self):
        backbone = TransformerBackbone(d_model=16, num_layers=1, num_heads=2, lora_rank=4)
        names = [name for name, _ in backbone.named_parameters()]
        assert any(name.endswith("lora_a") for name in names)
        assert any(name.endswith("lora_b") for name in names)

    def test_transformer_block_residual_path(self):
        block = TransformerBlock(d_model=16, num_heads=2)
        x = Tensor(np.random.default_rng(5).normal(size=(1, 4, 16)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None


class TestRecurrent:
    def test_lstm_cell_step(self):
        cell = LSTMCell(3, 6)
        h, c = cell.initial_state(batch=2)
        h2, c2 = cell(Tensor(np.ones((2, 3))), (h, c))
        assert h2.shape == (2, 6)
        assert c2.shape == (2, 6)

    def test_lstm_sequence_output(self):
        lstm = LSTM(3, 5)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 7, 3)))
        seq, (h, c) = lstm(x)
        assert seq.shape == (2, 7, 5)
        np.testing.assert_allclose(seq.data[:, -1, :], h.data)

    def test_lstm_gradient(self):
        lstm = LSTM(2, 4)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 5, 2)), requires_grad=True)
        _, (h, _) = lstm(x)
        h.sum().backward()
        assert x.grad is not None
        assert lstm.cell.w_ih.grad is not None


class TestGraph:
    def test_normalized_adjacency_rows_sum_to_one(self):
        adj = np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=float)
        norm = normalized_adjacency(adj)
        np.testing.assert_allclose(norm.sum(axis=1), np.ones(3))

    def test_normalized_adjacency_rejects_non_square(self):
        with pytest.raises(ValueError):
            normalized_adjacency(np.zeros((2, 3)))

    def test_graph_encoder_shapes(self):
        encoder = GraphEncoder(in_features=4, hidden_features=8, out_features=6, num_layers=2)
        features = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        adj = np.zeros((5, 5))
        adj[0, 1] = adj[1, 2] = adj[2, 3] = 1
        nodes = encoder(features, adj)
        assert nodes.shape == (5, 6)
        graph = encoder.encode_graph(features, adj)
        assert graph.shape == (6,)

    def test_graph_encoder_invalid_layers(self):
        with pytest.raises(ValueError):
            GraphEncoder(3, 4, 5, num_layers=0)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=3, max_value=12), st.integers(min_value=1, max_value=3))
def test_property_conv_output_length_formula(length, kernel):
    conv = Conv1D(1, 1, kernel_size=kernel)
    x = Tensor(np.zeros((1, length, 1)))
    assert conv(x).shape[1] == length - kernel + 1
