"""Speculative multi-token decode suite (``repro.serve.speculative``).

Covers the drafting layer (:class:`NgramProposer` / :class:`AdaptiveK`),
the paged multi-token substrate (``prepare_multi_step`` / ``forward_step``
with ragged ``counts`` / ``truncate_session`` rollback, fork/CoW safety),
and the headline acceptance property: the speculative engine's emitted
token streams are **exactly** the sequential engine's, at every draft
length and at temperature 0 and temperature > 0 (seeded), while the pool
invariants hold after every step — interleaved with chunked prefill,
prefix-cache hits and random cancels.  The fused multi-chunk prefill path
is pinned the same way: grouped equal-history chunks must commit logits
identical to the one-at-a-time path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm import LanguageModel
from repro.llm.config import LLMConfig
from repro.nn import no_grad
from repro.serve import (
    AdaptiveK,
    GenerateRequest,
    InferenceServer,
    NgramProposer,
    SchedulerPolicy,
)
from repro.serve.session import SessionManager


@pytest.fixture(scope="module")
def model():
    config = LLMConfig(name="spec-test", family="test", d_model=48,
                       num_layers=2, num_heads=4, max_seq_len=256)
    return LanguageModel(config, seed=11)


def _invariants(server):
    manager = server._manager
    manager.cache.check_invariants(
        external_refs=manager.prefix.external_refs()
        if manager.prefix is not None else None)


# ---------------------------------------------------------------------- #
# Drafting layer: NgramProposer / AdaptiveK unit behaviour
# ---------------------------------------------------------------------- #
class TestNgramProposer:
    def test_copies_continuation_of_most_recent_match(self):
        proposer = NgramProposer()
        #          0  1  2  3  4  5  6  7
        history = [5, 6, 7, 8, 5, 6, 7, 9]
        proposer.sync(0, history + [5, 6, 7])
        # Longest (order-3) suffix [5, 6, 7] last occurred at 4..6, so the
        # draft copies from position 7 — the *most recent* continuation.
        assert proposer.propose(0, 4) == [9, 5, 6, 7]

    def test_prefers_longer_orders(self):
        proposer = NgramProposer()
        # order-1 match for [3] points at 10; order-2 match [2, 3] at 20.
        proposer.sync(0, [3, 10, 9, 9, 2, 3, 20, 9, 2, 3])
        assert proposer.propose(0, 1) == [20]

    def test_cyclic_continuation_extends_past_history(self):
        proposer = NgramProposer()
        # The most recent [7, 8, 9] occurrence's continuation runs right up
        # to the present: the session is cycling with period 3, and the
        # draft continues the cycle instead of clamping to 3 tokens.
        proposer.sync(0, [7, 8, 9, 7, 8, 9, 7, 8, 9])
        assert proposer.propose(0, 7) == [7, 8, 9, 7, 8, 9, 7]

    def test_no_match_returns_empty(self):
        proposer = NgramProposer()
        proposer.sync(0, [1, 2, 3, 4, 5])
        assert proposer.propose(0, 4) == []
        assert proposer.propose(99, 4) == []  # unknown session

    def test_incremental_sync_matches_fresh_index(self):
        tokens = [1, 2, 3, 1, 2, 4, 1, 2, 3, 5, 1, 2]
        incremental = NgramProposer()
        for end in range(1, len(tokens) + 1):
            incremental.sync(0, tokens[:end])
        fresh = NgramProposer()
        fresh.sync(0, tokens)
        assert incremental.propose(0, 4) == fresh.propose(0, 4)

    def test_history_must_be_append_only(self):
        proposer = NgramProposer()
        proposer.sync(0, [1, 2, 3])
        with pytest.raises(ValueError, match="append-only"):
            proposer.sync(0, [1, 2])

    def test_forget_drops_all_state(self):
        proposer = NgramProposer()
        proposer.sync(0, [1, 2, 1, 2, 1])
        assert proposer.propose(0, 1)
        proposer.forget(0)
        assert proposer.propose(0, 1) == []
        proposer.forget(0)  # idempotent


class TestAdaptiveK:
    def test_full_acceptance_grows_to_cap(self):
        adaptive = AdaptiveK(cap=8)
        adaptive._k[1] = 2
        adaptive.observe(1, drafted=2, accepted=2)
        assert adaptive.current(1) == 3
        for _ in range(10):
            adaptive.observe(1, drafted=adaptive.current(1),
                             accepted=adaptive.current(1))
        assert adaptive.current(1) == 8

    def test_full_rejection_halves_toward_one(self):
        adaptive = AdaptiveK(cap=8)
        adaptive.observe(1, drafted=8, accepted=0)
        assert adaptive.current(1) == 4
        for _ in range(5):
            adaptive.observe(1, drafted=adaptive.current(1), accepted=0)
        assert adaptive.current(1) == 1  # floor, never 0

    def test_partial_acceptance_settles_at_accepted(self):
        adaptive = AdaptiveK(cap=8)
        adaptive.observe(1, drafted=6, accepted=3)
        assert adaptive.current(1) == 3

    def test_zero_draft_is_a_no_op(self):
        adaptive = AdaptiveK(cap=4)
        adaptive.observe(1, drafted=0, accepted=0)
        assert adaptive.current(1) == 4

    def test_cap_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            AdaptiveK(cap=0)


# ---------------------------------------------------------------------- #
# Paged multi-token substrate (ragged verification forward + rollback)
# ---------------------------------------------------------------------- #
class TestMultiStepSubstrate:
    @pytest.fixture()
    def setup(self, model):
        was_training = model.training
        model.eval()
        cache = model.init_paged_cache(max_sessions=4, block_size=8)
        try:
            with no_grad():  # KV-cached forwards are inference-only
                yield model, cache
        finally:
            if was_training:
                model.train()

    def _admit(self, model, cache, prompt_len, seed):
        rng = np.random.default_rng(seed)
        tokens = rng.integers(0, model.tokenizer.vocab_size,
                              size=(1, prompt_len)).astype(np.int64)
        kv = model.init_cache()
        model.forward_incremental(tokens, kv)
        [sid] = cache.admit_rows(kv, lengths=[prompt_len])
        return sid, tokens[0]

    def test_ragged_multi_step_matches_sequential(self, setup):
        model, cache = setup
        sid_a, _ = self._admit(model, cache, 13, seed=0)
        sid_b, _ = self._admit(model, cache, 21, seed=1)
        feeds = {sid_a: [3, 7, 11, 2], sid_b: [5, 9]}
        # Reference: one token at a time on a parallel pool.
        ref_cache = model.init_paged_cache(max_sessions=4, block_size=8)
        rid_a, _ = self._admit(model, ref_cache, 13, seed=0)
        rid_b, _ = self._admit(model, ref_cache, 21, seed=1)
        ref_logits = {sid_a: [], sid_b: []}
        for sid, rid in ((sid_a, rid_a), (sid_b, rid_b)):
            for token in feeds[sid]:
                out = model.forward_step(
                    np.asarray([token], dtype=np.int64), ref_cache,
                    np.asarray([rid], dtype=np.int64)).data[0, -1, :]
                ref_logits[sid].append(out)
        # Ragged multi-token verification forward: both rows in one call.
        counts = np.asarray([4, 2], dtype=np.int64)
        tokens = np.asarray([feeds[sid_a],
                             feeds[sid_b] + [feeds[sid_b][-1]] * 2],
                            dtype=np.int64)
        logits = model.forward_step(tokens, cache,
                                    np.asarray([sid_a, sid_b], dtype=np.int64),
                                    counts=counts).data
        for row, sid in enumerate((sid_a, sid_b)):
            for t in range(int(counts[row])):
                np.testing.assert_allclose(logits[row, t, :],
                                           ref_logits[sid][t],
                                           rtol=1e-5, atol=1e-6)
        cache.check_invariants()

    def test_truncate_rolls_back_and_decode_continues_exact(self, setup):
        model, cache = setup
        sid, _ = self._admit(model, cache, 11, seed=2)
        base_len = cache.length(sid)
        # Grow by 5 speculative tokens, then reject the last 3.
        counts = np.asarray([5], dtype=np.int64)
        feed = np.asarray([[1, 2, 3, 4, 5]], dtype=np.int64)
        model.forward_step(feed, cache, np.asarray([sid], dtype=np.int64),
                           counts=counts)
        assert cache.length(sid) == base_len + 5
        cache.truncate_session(sid, base_len + 2)
        assert cache.length(sid) == base_len + 2
        cache.check_invariants()
        # Post-rollback decode must match a pool that never speculated.
        ref_cache = model.init_paged_cache(max_sessions=4, block_size=8)
        rid, _ = self._admit(model, ref_cache, 11, seed=2)
        for token in (1, 2):
            model.forward_step(np.asarray([token], dtype=np.int64), ref_cache,
                               np.asarray([rid], dtype=np.int64))
        out = model.forward_step(np.asarray([9], dtype=np.int64), cache,
                                 np.asarray([sid], dtype=np.int64)).data
        ref = model.forward_step(np.asarray([9], dtype=np.int64), ref_cache,
                                 np.asarray([rid], dtype=np.int64)).data
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-6)

    def test_truncate_is_cow_safe_under_forks(self, setup):
        model, cache = setup
        sid, _ = self._admit(model, cache, 10, seed=3)
        fork = cache.fork(sid)
        fork_tables = list(cache.table(fork))
        fork_len = cache.length(fork)
        # Speculate on the parent (CoW-splits the shared partial tail), then
        # roll everything back.
        counts = np.asarray([4], dtype=np.int64)
        model.forward_step(np.asarray([[1, 2, 3, 4]], dtype=np.int64), cache,
                           np.asarray([sid], dtype=np.int64), counts=counts)
        cache.truncate_session(sid, 10)
        cache.check_invariants()
        # The fork is untouched: same blocks, same length, still decodable.
        assert list(cache.table(fork)) == fork_tables
        assert cache.length(fork) == fork_len
        model.forward_step(np.asarray([7], dtype=np.int64), cache,
                           np.asarray([fork], dtype=np.int64))
        cache.check_invariants()

    def test_truncate_validation(self, setup):
        model, cache = setup
        sid, _ = self._admit(model, cache, 9, seed=4)
        with pytest.raises(ValueError):
            cache.truncate_session(sid, 0)
        with pytest.raises(ValueError):
            cache.truncate_session(sid, 10)  # beyond current length
        cache.truncate_session(sid, 9)  # no-op at current length


# ---------------------------------------------------------------------- #
# Engine parity: speculative output == sequential output, exactly
# ---------------------------------------------------------------------- #
#: Repetitive/templated prompts the n-gram drafter feeds on, plus an
#: incompressible one that forces rejections and adaptive back-off.
PROMPTS = [
    "the quick brown fox jumps over the lazy dog. the quick brown fox",
    "status: ok; status: ok; status: ok; status:",
    "zqxjkvbw ylfmd ghpt",
]


def _collect(speculation, k, temps, seeds, policy_kwargs=None, model=None,
             max_new_tokens=24):
    policy = SchedulerPolicy(max_batch_size=8, block_size=16,
                             speculation=speculation, speculation_k=k,
                             **(policy_kwargs or {}))
    server = InferenceServer(model=model, policy=policy)
    handles = [server.submit(GenerateRequest(
        prompt=prompt, max_new_tokens=max_new_tokens, temperature=temps[i],
        seed=seeds[i], stop_on_eos=False))
        for i, prompt in enumerate(PROMPTS)]
    server.run_until_idle()
    streams = [handle.result(timeout=60).token_ids for handle in handles]
    _invariants(server)
    assert server._manager.cache.num_sessions == 0
    return streams, server


class TestEngineParity:
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_greedy_parity_at_every_draft_length(self, model, k):
        temps = [0.0] * len(PROMPTS)
        seeds = [0] * len(PROMPTS)
        base, _ = _collect("off", k, temps, seeds, model=model)
        spec, server = _collect("ngram", k, temps, seeds, model=model)
        assert spec == base
        stats = server.stats()
        assert stats.tokens_drafted > 0  # speculation actually ran
        assert 0.0 <= stats.acceptance_rate <= 1.0

    def test_seeded_sampled_parity(self, model):
        temps = [0.9, 0.7, 1.1]
        seeds = [101, 202, 303]
        base, _ = _collect("off", 4, temps, seeds, model=model)
        spec, server = _collect("ngram", 4, temps, seeds, model=model)
        # The acceptance rule replays the session's own seeded sampling, so
        # parity is exact even at temperature > 0.
        assert spec == base
        assert server.stats().tokens_drafted > 0

    def test_parity_under_token_budget(self, model):
        temps = [0.0] * len(PROMPTS)
        seeds = [0] * len(PROMPTS)
        budget = dict(prefill_chunk_size=8, step_token_budget=24)
        base, _ = _collect("off", 4, temps, seeds, budget, model=model)
        spec, server = _collect("ngram", 4, temps, seeds, budget, model=model)
        assert spec == base
        # The budget is a hard per-step bound on planned decode tokens plus
        # prefill grants: no committed step may exceed it.
        for record in server.telemetry.records():
            charged = (len(record.decode_sessions) + record.tokens_drafted
                       + record.prefill_tokens)
            assert charged <= 24 + len(record.decode_sessions)

    def test_acceptance_counters_on_stats_and_records(self, model):
        temps = [0.0] * len(PROMPTS)
        seeds = [0] * len(PROMPTS)
        _, server = _collect("ngram", 4, temps, seeds, model=model)
        stats = server.stats()
        assert stats.tokens_accepted <= stats.tokens_drafted
        report = stats.report()
        assert report["tokens_drafted"] == stats.tokens_drafted
        assert report["tokens_accepted"] == stats.tokens_accepted
        assert report["acceptance_rate"] == pytest.approx(
            stats.tokens_accepted / stats.tokens_drafted)
        records = [r for r in server.telemetry.records() if r.tokens_drafted]
        assert records, "no speculative step was recorded"
        assert sum(r.tokens_drafted for r in records) == stats.tokens_drafted
        assert sum(r.tokens_accepted for r in records) == stats.tokens_accepted
        for record in records:
            assert record.decode_tokens == (len(record.decode_sessions)
                                            + record.tokens_accepted)
            row = record.to_dict()
            assert row["tokens_drafted"] == record.tokens_drafted
            assert row["tokens_accepted"] == record.tokens_accepted


class TestInterleavedChaosFreeProperty:
    def test_speculative_parity_with_prefill_prefix_and_cancels(self, model):
        """The randomized interleaving property (fault-free).

        A seeded workload of templated prompts sharing a registered prefix
        head runs against both engines with chunked prefill and a step
        token budget; a seeded subset is cancelled mid-flight.  Every
        surviving request's token stream must match the sequential engine
        exactly, and the pool invariants must hold after every step.
        """
        rng = np.random.default_rng(42)
        head = "system: answer briefly. "
        prompts = []
        for i in range(10):
            body = " ".join(["alpha beta gamma", "delta delta delta",
                             "alpha beta gamma"][j % 3]
                            for j in range(2 + int(rng.integers(0, 3))))
            prompts.append(head + body)
        cancel_at = {3: 2, 7: 5}  # request index -> cancel after N steps

        def run(speculation):
            policy = SchedulerPolicy(max_batch_size=4, block_size=16,
                                     prefill_chunk_size=8,
                                     step_token_budget=32,
                                     speculation=speculation, speculation_k=4)
            server = InferenceServer(model=model, policy=policy)
            server.register_prefix(head)
            handles = [server.submit(GenerateRequest(
                prompt=prompt, max_new_tokens=16,
                temperature=(0.8 if i % 2 else 0.0), seed=1000 + i,
                stop_on_eos=False)) for i, prompt in enumerate(prompts)]
            steps = 0
            while server.has_pending_work():
                server.step()
                _invariants(server)  # pool sound after *every* step
                steps += 1
                for index, when in cancel_at.items():
                    if steps == when:
                        handles[index].cancel()
                assert steps < 2000
            outputs = {}
            for i, handle in enumerate(handles):
                if i in cancel_at:
                    continue
                outputs[i] = handle.result(timeout=60).token_ids
            assert server._manager.cache.num_sessions == 0
            return outputs, server

        base, _ = run("off")
        spec, server = run("ngram")
        assert spec == base
        assert server.stats().tokens_drafted > 0
        assert server._manager.prefix.hits > 0  # prefix cache engaged


# ---------------------------------------------------------------------- #
# Fused multi-chunk prefill: grouped equal-history chunks, exact parity
# ---------------------------------------------------------------------- #
class TestFusedPrefill:
    def test_fused_groups_fire_and_match_solo_chunks(self, model, monkeypatch):
        fused_calls = []
        original = SessionManager.prefill_chunk_group

        def spy(self, group, take):
            fused_calls.append(len(group))
            return original(self, group, take)

        monkeypatch.setattr(SessionManager, "prefill_chunk_group", spy)
        # Five equal-length prompts: after admission they are PREFILLING
        # with equal committed history, so every later chunk wave fuses.
        prompts = [f"w{i} " * 24 for i in range(5)]

        def run(fused):
            policy = SchedulerPolicy(max_batch_size=8, block_size=16,
                                     prefill_chunk_size=8)
            server = InferenceServer(model=model, policy=policy)
            if not fused:  # force the one-at-a-time path
                monkeypatch.setattr(SessionManager, "prefill_chunk_group",
                                    lambda self, group, take: (_ for _ in ())
                                    .throw(RuntimeError("solo only")))
            handles = [server.submit(GenerateRequest(
                prompt=prompt, max_new_tokens=8, temperature=0.0,
                stop_on_eos=False)) for prompt in prompts]
            server.run_until_idle()
            streams = [h.result(timeout=60).token_ids for h in handles]
            _invariants(server)
            return streams

        fused_streams = run(fused=True)
        assert fused_calls and max(fused_calls) >= 4  # >= 4 sessions fused
        fused_calls.clear()
        solo_streams = run(fused=False)
        # The fused forward raising pre-commit falls back to solo chunks, so
        # the run completes either way — and the streams are identical.
        assert fused_streams == solo_streams

    def test_fused_history_memo_tracks_group_lifecycle(self, model):
        policy = SchedulerPolicy(max_batch_size=8, block_size=16,
                                 prefill_chunk_size=8)
        server = InferenceServer(model=model, policy=policy)
        handles = [server.submit(GenerateRequest(
            prompt="m " * 30, max_new_tokens=2, stop_on_eos=False))
            for _ in range(4)]
        manager = server._manager
        server.step()   # admission chunk: sessions become PREFILLING
        server.step()   # first fused wave: the stacked cache is memoized
        memo = manager._fused_prefill
        assert memo is not None
        (ids, length), fused = memo
        assert set(ids) == set(manager.prefilling.keys())
        assert fused.seq_len == length
        assert all(s.prefill_cache.seq_len == length
                   for s in manager.prefilling.values())
        server.run_until_idle()
        # Dropped once the group leaves PREFILLING (no stale K/V pinned).
        assert manager._fused_prefill is None
        for handle in handles:
            handle.result(timeout=30)
        _invariants(server)

    def test_fused_rejects_unequal_history(self, model):
        policy = SchedulerPolicy(max_batch_size=4, block_size=16,
                                 prefill_chunk_size=8)
        server = InferenceServer(model=model, policy=policy)
        a = server.submit(GenerateRequest(prompt="x " * 30, max_new_tokens=2,
                                          stop_on_eos=False))
        server.step()  # a is mid-prefill now
        manager = server._manager
        sessions = list(manager.prefilling.values())
        assert sessions
        with pytest.raises(ValueError, match="equal-history"):
            fake = type(sessions[0])(session_id=999, prompt="y",
                                     max_new_tokens=1)
            fake.prefill_cache = server.model.init_cache()
            manager.prefill_chunk_group([sessions[0], fake], 4)
        server.run_until_idle()
        a.result(timeout=30)
