"""Integration tests: DD-LRNA adaptation pipelines, NetLLM policies, prompt learning,
profiling and the Figure 9 APIs, all at tiny scale."""

import numpy as np
import pytest

from repro.abr import BBAPolicy, MPCPolicy, simulate_session
from repro.cjs import FIFOScheduler, ShortestJobFirstScheduler, run_workload
from repro.core import (
    DecisionAdapter,
    NetLLMABRPolicy,
    NetLLMCJSScheduler,
    PromptLearningVP,
    VPAdapter,
    adapt_decision,
    adapt_prediction,
    adapt_vp,
    build_prompt,
    collect_abr_experience,
    collect_cjs_experience,
    evaluate_abr_policies,
    evaluate_cjs_schedulers,
    evaluate_vp_methods,
    finetune_memory_bytes,
    parse_answer,
    profile_finetune,
    profile_inference,
    profile_rl_adaptation,
    rl_collect_abr,
    rl_collect_cjs,
)
from repro.core.api import adapt_abr, adapt_cjs
from repro.llm import build_llm
from repro.nn import Adam, Tensor
from repro.vp import evaluate_predictor


# ---------------------------------------------------------------------- #
# Prediction pipeline (VP)
# ---------------------------------------------------------------------- #
class TestVPAdaptation:
    def test_adapt_prediction_reduces_loss(self, tiny_llm, vp_data):
        setting, train, _ = vp_data
        adapter = VPAdapter(tiny_llm, prediction_steps=setting.prediction_steps, seed=0)
        result = adapt_prediction(adapter, train, iterations=30, batch_size=8, seed=0)
        assert result.iterations == 30
        assert np.mean(result.losses[-5:]) < np.mean(result.losses[:5])
        assert 0 < result.trainable_fraction < 1

    def test_adapt_vp_api_learns_and_is_competitive(self, vp_data):
        setting, train, test = vp_data
        llm = build_llm("tiny-test", lora_rank=4, pretrained=True, pretrain_steps=20, seed=2)
        untrained = VPAdapter(build_llm("tiny-test", lora_rank=4, pretrained=True,
                                        pretrain_steps=20, seed=2),
                              prediction_steps=setting.prediction_steps, seed=0)
        untrained_mae = evaluate_predictor(untrained, test)["mae"]
        adaptation = adapt_vp(train, setting.prediction_steps, llm=llm, iterations=120,
                              lr=3e-3, seed=0)
        results = evaluate_vp_methods(setting, train, test, netllm=adaptation.adapter,
                                      track_epochs=3, seed=0)
        assert set(results) == {"LR", "Velocity", "TRACK", "NetLLM"}
        # Adaptation must clearly improve over an unadapted model, and the
        # adapted model must be in the same league as the learned baseline.
        # (The full "NetLLM beats all baselines" claim is checked at benchmark
        # scale, not at this deliberately tiny unit-test scale.)
        assert results["NetLLM"]["mae"] < untrained_mae * 0.8
        rule_based = max(results["LR"]["mae"], results["Velocity"]["mae"])
        assert results["NetLLM"]["mae"] < 1.5 * rule_based

    def test_adapt_prediction_validation(self, tiny_llm, vp_data):
        setting, train, _ = vp_data
        adapter = VPAdapter(tiny_llm, prediction_steps=setting.prediction_steps, seed=0)
        with pytest.raises(ValueError):
            adapt_prediction(adapter, train, iterations=0)
        with pytest.raises(ValueError):
            adapt_prediction(adapter, [], iterations=5)


# ---------------------------------------------------------------------- #
# Decision-making pipeline (ABR)
# ---------------------------------------------------------------------- #
class TestABRAdaptation:
    def test_experience_collection(self, abr_setup):
        video, traces, _ = abr_setup
        pool = collect_abr_experience({"BBA": BBAPolicy(), "MPC": MPCPolicy(horizon=3)},
                                      video, traces[:2], seed=0)
        assert len(pool) == 4  # 2 policies x 2 traces
        assert pool.num_transitions == 4 * video.num_chunks
        assert set(pool.policy_names()) == {"BBA", "MPC"}

    def test_experience_collection_fills_provided_empty_pool(self, abr_setup):
        # Regression: `pool or ExperiencePool(...)` treated a caller's still-
        # empty pool as falsy and filled a fresh pool instead, so callers that
        # seed a pool before training (the fig03 benchmark) saw it stay empty.
        from repro.abr.env import ABRObservation
        from repro.core import ExperiencePool

        video, traces, _ = abr_setup
        pool = ExperiencePool(state_dim=ABRObservation.flat_size(video.num_bitrates),
                              action_dims=(video.num_bitrates,))
        returned = collect_abr_experience({"BBA": BBAPolicy()}, video, traces[:1],
                                          pool=pool, seed=0)
        assert returned is pool
        assert len(pool) == 1

    def test_cjs_experience_collection_fills_provided_empty_pool(self, cjs_setup):
        from repro.cjs.env import MAX_CANDIDATES, PARALLELISM_FRACTIONS, observation_size
        from repro.core import ExperiencePool

        workloads, _, executors = cjs_setup
        pool = ExperiencePool(state_dim=observation_size(),
                              action_dims=(MAX_CANDIDATES, len(PARALLELISM_FRACTIONS)))
        returned = collect_cjs_experience({"SJF": ShortestJobFirstScheduler()},
                                          workloads[:1], executors, pool=pool)
        assert returned is pool
        assert len(pool) == 1

    def test_adapt_decision_reduces_loss(self, tiny_llm, abr_setup):
        video, traces, _ = abr_setup
        pool = rl_collect_abr(video, traces[:2], policies={"MPC": MPCPolicy(horizon=3)}, seed=0)
        from repro.abr.env import ABRObservation

        adapter = DecisionAdapter(tiny_llm, state_dim=ABRObservation.flat_size(video.num_bitrates),
                                  action_dims=(video.num_bitrates,), context_window=4,
                                  head="abr", seed=0)
        result = adapt_decision(adapter, pool, iterations=40, batch_size=8, seed=0)
        assert np.mean(result.losses[-10:]) < np.mean(result.losses[:10])

    def test_netllm_abr_policy_streams_whole_video(self, abr_setup):
        video, traces, test_traces = abr_setup
        llm = build_llm("tiny-test", lora_rank=4, pretrained=True, pretrain_steps=15, seed=3)
        adaptation = adapt_abr(video, traces[:2], llm=llm, iterations=60, context_window=4,
                               seed=0)
        policy = adaptation.policy
        session = simulate_session(policy, video, test_traces[0], seed=0)
        assert session.num_chunks == video.num_chunks
        indices = [r.bitrate_index for r in session.records]
        # Answers produced by the networking head are always valid bitrates.
        assert all(0 <= i < video.num_bitrates for i in indices)

    def test_evaluate_abr_policies_reports_factors(self, abr_setup):
        video, _, test_traces = abr_setup
        results = evaluate_abr_policies({"BBA": BBAPolicy()}, video, test_traces[:2])
        assert {"qoe", "bitrate", "rebuffering", "bitrate_variation"} <= set(results["BBA"])


# ---------------------------------------------------------------------- #
# Decision-making pipeline (CJS)
# ---------------------------------------------------------------------- #
class TestCJSAdaptation:
    def test_experience_collection(self, cjs_setup):
        train_workloads, _, executors = cjs_setup
        pool = collect_cjs_experience({"SJF": ShortestJobFirstScheduler()},
                                      train_workloads, executors)
        assert len(pool) == len(train_workloads)
        assert pool.best_return < 0  # JCT costs are negative rewards

    def test_netllm_cjs_scheduler_completes_workload(self, cjs_setup):
        train_workloads, test_jobs, executors = cjs_setup
        llm = build_llm("tiny-test", lora_rank=4, pretrained=True, pretrain_steps=15, seed=4)
        adaptation = adapt_cjs(train_workloads, executors, llm=llm, iterations=60,
                               context_window=4, seed=0)
        scheduler = adaptation.scheduler
        scheduler.reset()
        result = run_workload(scheduler, test_jobs, executors)
        assert set(result.job_completion_times) == {j.job_id for j in test_jobs}
        assert result.average_jct > 0

    def test_evaluate_cjs_schedulers(self, cjs_setup):
        _, test_jobs, executors = cjs_setup
        results = evaluate_cjs_schedulers({"FIFO": FIFOScheduler()}, [test_jobs], executors)
        assert "jct" in results["FIFO"]
        assert len(results["FIFO"]["per_job_jct"]) == len(test_jobs)

    def test_rl_collect_cjs_default_policies(self, cjs_setup):
        train_workloads, _, executors = cjs_setup
        pool = rl_collect_cjs(train_workloads[:1], executors)
        assert set(pool.policy_names()) == {"SJF", "Fair"}


# ---------------------------------------------------------------------- #
# Prompt learning baseline (Figure 2)
# ---------------------------------------------------------------------- #
class TestPromptLearning:
    def test_prompt_and_answer_roundtrip(self):
        history = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        prompt = build_prompt(history, prediction_steps=2)
        assert "past 2 viewports" in prompt
        parsed = parse_answer("(1.00,2.00,3.00) (4.00,5.00,6.00)", 2)
        np.testing.assert_allclose(parsed, history)

    def test_parse_rejects_invalid_answers(self):
        assert parse_answer("gibberish", 2) is None
        assert parse_answer("(1.0,2.0)", 2) is None          # too few numbers
        assert parse_answer("(99999.0," * 6 + ")", 2) is None  # out of range

    def test_prompt_learning_pipeline(self, vp_data):
        setting, train, test = vp_data
        llm = build_llm("tiny-test", lora_rank=0, pretrained=True, pretrain_steps=15, seed=5)
        prompt_vp = PromptLearningVP(llm, prediction_steps=setting.prediction_steps, seed=0)
        losses = prompt_vp.fine_tune(train[:20], iterations=15, batch_size=4)
        assert losses[-1] < losses[0] * 1.5  # training runs and does not diverge wildly
        result = prompt_vp.evaluate(test[:3], max_new_tokens=30)
        assert result.mae > 0
        assert 0.0 <= result.valid_fraction <= 1.0
        assert result.mean_inferences > 1  # token-by-token generation needs many inferences


# ---------------------------------------------------------------------- #
# Cost profiling (Figures 3 and 4, §5.4)
# ---------------------------------------------------------------------- #
class TestProfiling:
    def test_lora_uses_fewer_trainable_params_and_less_memory(self):
        full = build_llm("tiny-test", lora_rank=0, pretrained=False, seed=0)
        lora = build_llm("tiny-test", lora_rank=4, pretrained=False, seed=0)
        lora.freeze_backbone()
        assert lora.num_parameters(trainable_only=True) < full.num_parameters(trainable_only=True)
        assert finetune_memory_bytes(lora) < finetune_memory_bytes(full)

    def test_profile_finetune_reports_costs(self, tiny_llm):
        x = np.random.default_rng(0).normal(size=(4, 3, tiny_llm.d_model))
        optimizer = Adam(tiny_llm.trainable_parameters(), lr=1e-3)

        def step():
            out = tiny_llm.forward_embeddings(Tensor(x))
            loss = (out * out).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            return float(loss.data)

        cost = profile_finetune("lora", tiny_llm, step, steps=3)
        assert cost.wall_seconds > 0
        assert 0 < cost.trainable_fraction < 1

    def test_profile_rl_adaptation_split(self):
        calls = {"collect": 0, "update": 0}
        cost = profile_rl_adaptation(
            "standard", lambda: calls.__setitem__("collect", calls["collect"] + 1),
            lambda: calls.__setitem__("update", calls["update"] + 1),
            collect_rounds=5, update_rounds=5)
        assert calls == {"collect": 5, "update": 5}
        assert 0.0 <= cost.experience_fraction <= 1.0

    def test_profile_inference(self, tiny_llm):
        x = np.random.default_rng(0).normal(size=(1, 4, tiny_llm.d_model))
        overhead = profile_inference("tiny", tiny_llm,
                                     lambda: tiny_llm.forward_embeddings(Tensor(x)),
                                     repetitions=3)
        assert overhead.mean_latency_seconds > 0
        assert overhead.model_memory_bytes > 0
