"""Chaos suite for the fault-isolated serving engine.

Covers the deterministic :class:`FaultInjector` (env gating, scripted
triggers, seeded replay), per-request quarantine (blast radius, pool
soundness, escalation), bounded retries, overload shedding, the health
surface, and the randomized seeded chaos property test that pins exact
parity between a faulty run's survivors and the fault-free reference run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.llm import LanguageModel, build_llm
from repro.llm.config import LLMConfig
from repro.serve import (
    FAULT_SITES,
    DecisionRequest,
    FaultInjector,
    FaultSpec,
    GenerateRequest,
    InferenceServer,
    InjectedFault,
    RequestFailed,
    RetryPolicy,
    SchedulerPolicy,
    ServerHealth,
    ServerOverloaded,
    TransientFault,
)
from repro.serve.faults import injection_allowed


@pytest.fixture(scope="module")
def model():
    config = LLMConfig(name="faults-test", family="test", d_model=32,
                       num_layers=2, num_heads=2, max_seq_len=64)
    return LanguageModel(config, seed=3)


@pytest.fixture(autouse=True)
def _arm_faults(monkeypatch):
    """Arm the REPRO_FAULTS gate for every test in this module."""
    monkeypatch.setenv("REPRO_FAULTS", "1")


def _invariants(server):
    manager = server._manager
    manager.cache.check_invariants(
        external_refs=manager.prefix.external_refs()
        if manager.prefix is not None else None)


class _EchoRuntime:
    """Trivial decision runtime: one shared group, echoes payloads doubled."""

    def group_key(self, request):
        return ()

    def execute_batch(self, requests):
        return [request.payload * 2 for request in requests]


# ---------------------------------------------------------------------- #
# FaultInjector unit behaviour
# ---------------------------------------------------------------------- #
class TestFaultInjector:
    def test_env_gate_blocks_construction(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert not injection_allowed()
        with pytest.raises(RuntimeError, match="REPRO_FAULTS"):
            FaultInjector([FaultSpec(site="decode.step", at=1)])
        monkeypatch.setenv("REPRO_FAULTS", "0")
        assert not injection_allowed()
        monkeypatch.setenv("REPRO_FAULTS", "true")
        assert injection_allowed()
        FaultInjector([])  # armed: constructs fine

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="nope.nope", at=1)
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site="decode.step", action="explode", at=1)
        with pytest.raises(ValueError, match="exactly one trigger"):
            FaultSpec(site="decode.step")
        with pytest.raises(ValueError, match="exactly one trigger"):
            FaultSpec(site="decode.step", at=1, every=2)
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(site="decode.step", at=0)
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(site="decode.step", rate=1.5)
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultInjector(["decode.step"])

    def test_at_and_every_triggers(self):
        injector = FaultInjector([
            FaultSpec(site="decode.step", at=2),
            FaultSpec(site="kv.admit", every=3, max_fires=2),
        ])
        fired = []
        for visit in range(1, 10):
            try:
                injector.fire("decode.step")
            except InjectedFault as fault:
                fired.append(("decode.step", fault.occurrence))
            try:
                injector.fire("kv.admit")
            except InjectedFault as fault:
                fired.append(("kv.admit", fault.occurrence))
        # at=2 fires exactly once; every=3 fires on visits 3 and 6 only
        # (max_fires=2 suppresses visit 9).
        assert fired == [("decode.step", 2), ("kv.admit", 3), ("kv.admit", 6)]
        assert injector.visit_count("decode.step") == 9
        assert injector.total_fired == 3

    def test_rate_trigger_is_seeded_deterministic(self):
        def run(seed):
            injector = FaultInjector(
                [FaultSpec(site="decode.step", rate=0.3)], seed=seed)
            fires = []
            for _ in range(50):
                try:
                    injector.fire("decode.step")
                except InjectedFault:
                    fires.append(injector.visit_count("decode.step"))
            return fires

        assert run(7) == run(7)  # same seed: identical fault sequence
        assert run(7) != run(8)  # different seed: different sequence
        assert 0 < len(run(7)) < 50

    def test_transient_classification(self):
        injector = FaultInjector([
            FaultSpec(site="decode.step", at=1, transient=True)])
        with pytest.raises(TransientFault) as info:
            injector.fire("decode.step")
        assert info.value.transient
        assert isinstance(info.value, InjectedFault)
        assert RetryPolicy().is_retryable(info.value)
        assert not RetryPolicy().is_retryable(InjectedFault("decode.step", 1))

    def test_corrupt_perturbs_payload_deterministically(self):
        payload_a = np.zeros(8)
        payload_b = np.zeros(8)
        for payload in (payload_a, payload_b):
            injector = FaultInjector(
                [FaultSpec(site="decode.logits", action="corrupt", at=1,
                           corrupt_scale=0.5)], seed=11)
            injector.fire("decode.logits", payload=payload)
        assert np.any(payload_a != 0)
        np.testing.assert_array_equal(payload_a, payload_b)
        # No payload at the site: corrupt is a no-op, not an error.
        injector = FaultInjector(
            [FaultSpec(site="decode.logits", action="corrupt", at=1)])
        injector.fire("decode.logits")

    def test_delay_action_sleeps(self):
        injector = FaultInjector(
            [FaultSpec(site="decode.step", action="delay", at=1,
                       delay_s=0.05)])
        start = time.perf_counter()
        injector.fire("decode.step")
        assert time.perf_counter() - start >= 0.05

    def test_site_catalog_is_documented(self):
        assert set(FAULT_SITES) == {
            "runtime.execute_batch", "prefill.band", "prefill.chunk",
            "decode.step", "decode.logits", "draft.propose", "decode.verify",
            "kv.admit", "kv.extend", "prefix.seed"}
        for site, where in FAULT_SITES.items():
            assert where, f"site {site!r} has no description"


# ---------------------------------------------------------------------- #
# Quarantine: fault isolation with pool soundness
# ---------------------------------------------------------------------- #
class TestQuarantine:
    def test_decode_fault_quarantines_batch_and_keeps_serving(self, model):
        injector = FaultInjector([FaultSpec(site="decode.step", at=2)])
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=2),
                                 fault_injector=injector)
        doomed = [server.submit(GenerateRequest(prompt=f"d{i}",
                                                max_new_tokens=4,
                                                stop_on_eos=False))
                  for i in range(2)]
        server.run_until_idle()
        for handle in doomed:
            with pytest.raises(RequestFailed, match="decode step"):
                handle.result(timeout=5)
        _invariants(server)
        assert server._manager.cache.num_sessions == 0  # blocks reclaimed
        # The engine keeps serving: a fresh request completes normally.
        survivor = server.submit(GenerateRequest(prompt="ok",
                                                 max_new_tokens=4,
                                                 stop_on_eos=False))
        server.run_until_idle()
        assert len(survivor.result(timeout=5).token_ids) == 4
        stats = server.stats()
        assert stats.failed == 2
        assert stats.faults_quarantined == 1
        assert stats.requests_completed == 1

    def test_request_failed_chains_original_error(self, model):
        injector = FaultInjector([FaultSpec(site="decode.step", at=1)])
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1),
                                 fault_injector=injector)
        handle = server.submit(GenerateRequest(prompt="x", max_new_tokens=2,
                                               stop_on_eos=False))
        server.run_until_idle()
        with pytest.raises(RequestFailed) as info:
            handle.result(timeout=5)
        assert isinstance(info.value.cause, InjectedFault)
        assert info.value.__cause__ is info.value.cause
        assert "injected fault at 'decode.step'" in str(info.value)

    def test_single_band_fault_is_absorbed_by_per_session_retry(self, model):
        # A batched prefill band that faults once is retried session by
        # session (the pre-existing admission fallback); one band fault is
        # absorbed transparently and the request still completes.
        injector = FaultInjector([FaultSpec(site="prefill.band", at=1)])
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=2),
                                 fault_injector=injector)
        first = server.submit(GenerateRequest(prompt="aaa", max_new_tokens=3,
                                              stop_on_eos=False))
        server.run_until_idle()
        assert len(first.result(timeout=5).token_ids) == 3
        assert injector.total_fired == 1
        _invariants(server)

    def test_persistent_prefill_fault_quarantines_only_that_admission(self, model):
        # Both the batched band and the per-session retry fault: now the
        # admission is quarantined — and only this admission, the next
        # submission (fires exhausted) completes.
        injector = FaultInjector(
            [FaultSpec(site="prefill.band", every=1, max_fires=2)])
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=2),
                                 fault_injector=injector)
        first = server.submit(GenerateRequest(prompt="aaa", max_new_tokens=3,
                                              stop_on_eos=False))
        server.run_until_idle()
        with pytest.raises(RequestFailed, match="prefill"):
            first.result(timeout=5)
        _invariants(server)
        second = server.submit(GenerateRequest(prompt="bbb", max_new_tokens=3,
                                               stop_on_eos=False))
        server.run_until_idle()
        assert len(second.result(timeout=5).token_ids) == 3

    def test_kv_admit_fault_leaves_pool_sound(self, model):
        # every=1: fault both the batched admission and its per-session retry
        # (a single admission fault is absorbed by the retry fallback).
        injector = FaultInjector(
            [FaultSpec(site="kv.admit", every=1, max_fires=2)])
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=2),
                                 fault_injector=injector)
        handle = server.submit(GenerateRequest(prompt="x", max_new_tokens=2,
                                               stop_on_eos=False))
        server.run_until_idle()
        with pytest.raises(RequestFailed):
            handle.result(timeout=5)
        _invariants(server)
        assert server._manager.cache.num_sessions == 0

    def test_chunked_prefill_fault_quarantined(self, model):
        injector = FaultInjector([FaultSpec(site="prefill.chunk", at=2)])
        server = InferenceServer(
            model, SchedulerPolicy(max_batch_size=2, prefill_chunk_size=4),
            fault_injector=injector)
        long_prompt = "tok " * 12  # several chunks
        doomed = server.submit(GenerateRequest(prompt=long_prompt,
                                               max_new_tokens=3,
                                               stop_on_eos=False))
        short = server.submit(GenerateRequest(prompt="hi", max_new_tokens=3,
                                              stop_on_eos=False))
        server.run_until_idle()
        with pytest.raises(RequestFailed, match="prefill"):
            doomed.result(timeout=5)
        assert len(short.result(timeout=5).token_ids) == 3
        _invariants(server)

    def test_decision_fault_blast_radius_is_one_batch(self, model):
        """Satellite regression test: a runtime raising inside one decision
        batch fails exactly that batch's handles — the concurrently queued
        generation session and later decision batches are untouched."""
        injector = FaultInjector(
            [FaultSpec(site="runtime.execute_batch", at=1)])
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=2),
                                 runtimes={"echo": _EchoRuntime()},
                                 fault_injector=injector)
        generation = server.submit(GenerateRequest(prompt="gen",
                                                   max_new_tokens=4,
                                                   stop_on_eos=False))
        doomed = [server.submit(DecisionRequest(task="echo", payload=i))
                  for i in range(3)]
        server.run_until_idle()
        for handle in doomed:  # the faulted batch: exactly these fail
            with pytest.raises(RequestFailed, match="decision batch"):
                handle.result(timeout=5)
        assert len(generation.result(timeout=5).token_ids) == 4
        after = server.submit(DecisionRequest(task="echo", payload=21))
        server.run_until_idle()
        assert after.result(timeout=5) == 42
        stats = server.stats()
        assert stats.failed == 3
        assert stats.faults_quarantined == 1
        _invariants(server)

    def test_invariant_violation_escalates_to_crash_guard(self, model):
        """Quarantine that cannot prove the pool sound must fail everything:
        the engine turns FAILED and the error reaches the driver."""
        injector = FaultInjector([FaultSpec(site="decode.step", at=1)])
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1),
                                 fault_injector=injector)
        handle = server.submit(GenerateRequest(prompt="x", max_new_tokens=2,
                                               stop_on_eos=False))

        def violated(external_refs=None):
            raise AssertionError("refcount mismatch (simulated)")

        server._manager.cache.check_invariants = violated
        with pytest.raises(RuntimeError, match="unrecoverable fault"):
            server.run_until_idle()
        assert handle.done()
        with pytest.raises(RuntimeError, match="unrecoverable fault"):
            handle.result(timeout=5)
        assert server.health == ServerHealth.FAILED
        assert server.stats().health == ServerHealth.FAILED

    def test_health_degrades_after_quarantine_then_recovers(self, model):
        injector = FaultInjector([FaultSpec(site="decode.step", at=1)])
        server = InferenceServer(
            model, SchedulerPolicy(max_batch_size=1, health_window_s=0.2),
            fault_injector=injector)
        assert server.health == ServerHealth.HEALTHY
        handle = server.submit(GenerateRequest(prompt="x", max_new_tokens=2,
                                               stop_on_eos=False))
        server.run_until_idle()
        with pytest.raises(RequestFailed):
            handle.result(timeout=5)
        assert server.health == ServerHealth.DEGRADED
        time.sleep(0.25)  # the fault ages out of the health window
        assert server.health == ServerHealth.HEALTHY


# ---------------------------------------------------------------------- #
# Bounded retries
# ---------------------------------------------------------------------- #
class TestRetries:
    def test_transient_generation_fault_retries_to_completion(self, model):
        injector = FaultInjector(
            [FaultSpec(site="decode.step", at=1, transient=True)])
        server = InferenceServer(
            model, SchedulerPolicy(max_batch_size=2,
                                   retry_policy=RetryPolicy(max_attempts=2)),
            fault_injector=injector)
        handle = server.submit(GenerateRequest(prompt="retry me",
                                               max_new_tokens=4,
                                               stop_on_eos=False))
        server.run_until_idle()
        assert len(handle.result(timeout=10).token_ids) == 4
        assert handle.metrics.attempts == 2
        stats = server.stats()
        assert stats.retries == 1
        assert stats.faults_quarantined == 1
        assert stats.failed == 0
        assert stats.requests_completed == 1
        _invariants(server)

    def test_retry_result_matches_fault_free_run(self, model):
        reference = InferenceServer(model, SchedulerPolicy(max_batch_size=2))
        expected = reference.submit(GenerateRequest(
            prompt="parity", max_new_tokens=5, stop_on_eos=False))
        reference.run_until_idle()
        injector = FaultInjector(
            [FaultSpec(site="decode.step", at=2, transient=True)])
        server = InferenceServer(
            model, SchedulerPolicy(max_batch_size=2,
                                   retry_policy=RetryPolicy(max_attempts=3)),
            fault_injector=injector)
        handle = server.submit(GenerateRequest(
            prompt="parity", max_new_tokens=5, stop_on_eos=False))
        server.run_until_idle()
        assert handle.result(timeout=10).token_ids \
            == expected.result(timeout=10).token_ids

    def test_attempts_are_bounded(self, model):
        # Every decode step faults transiently: with max_attempts=2 the
        # request fails after its retry — retries never loop unbounded.
        injector = FaultInjector(
            [FaultSpec(site="decode.step", every=1, transient=True)])
        server = InferenceServer(
            model, SchedulerPolicy(max_batch_size=1,
                                   retry_policy=RetryPolicy(max_attempts=2)),
            fault_injector=injector)
        handle = server.submit(GenerateRequest(prompt="x", max_new_tokens=2,
                                               stop_on_eos=False))
        server.run_until_idle()
        with pytest.raises(RequestFailed):
            handle.result(timeout=10)
        assert handle.metrics.attempts == 2
        assert server.stats().retries == 1

    def test_permanent_fault_is_not_retried(self, model):
        injector = FaultInjector([FaultSpec(site="decode.step", at=1)])
        server = InferenceServer(
            model, SchedulerPolicy(max_batch_size=1,
                                   retry_policy=RetryPolicy(max_attempts=3)),
            fault_injector=injector)
        handle = server.submit(GenerateRequest(prompt="x", max_new_tokens=2,
                                               stop_on_eos=False))
        server.run_until_idle()
        with pytest.raises(RequestFailed):
            handle.result(timeout=5)
        assert handle.metrics.attempts == 1
        assert server.stats().retries == 0

    def test_retry_on_classifies_custom_errors(self, model):
        policy = RetryPolicy(max_attempts=2, retry_on=(KeyError,))
        assert policy.is_retryable(KeyError("missing"))
        assert not policy.is_retryable(ValueError("other"))
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(TypeError, match="exception types"):
            RetryPolicy(retry_on=("KeyError",))

    def test_backoff_schedule_is_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.1,
                             backoff_multiplier=3.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.3)
        assert policy.backoff_for(3) == pytest.approx(0.9)
        assert RetryPolicy(backoff_s=0.0).backoff_for(2) == 0.0

    def test_backoff_parks_then_completes(self, model):
        injector = FaultInjector(
            [FaultSpec(site="decode.step", at=1, transient=True)])
        server = InferenceServer(
            model, SchedulerPolicy(
                max_batch_size=1,
                retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.05)),
            fault_injector=injector)
        handle = server.submit(GenerateRequest(prompt="x", max_new_tokens=3,
                                               stop_on_eos=False))
        # After the quarantine the retry is parked: step() finds no runnable
        # work, but run_until_idle waits out the backoff instead of failing.
        server.run_until_idle()
        assert len(handle.result(timeout=10).token_ids) == 3
        assert handle.metrics.attempts == 2

    def test_transient_decision_fault_retries(self, model):
        injector = FaultInjector(
            [FaultSpec(site="runtime.execute_batch", at=1, transient=True)])
        server = InferenceServer(
            model, SchedulerPolicy(retry_policy=RetryPolicy(max_attempts=2)),
            runtimes={"echo": _EchoRuntime()}, fault_injector=injector)
        handles = [server.submit(DecisionRequest(task="echo", payload=i))
                   for i in range(3)]
        server.run_until_idle()
        assert [h.result(timeout=10) for h in handles] == [0, 2, 4]
        assert all(h.metrics.attempts == 2 for h in handles)
        assert server.stats().retries == 3  # one re-enqueue per entry


# ---------------------------------------------------------------------- #
# Overload shedding
# ---------------------------------------------------------------------- #
class TestShedding:
    def test_depth_shedding_rejects_with_typed_error(self, model):
        server = InferenceServer(
            model, SchedulerPolicy(max_batch_size=1, shed_queue_depth=2))
        handles = [server.submit(GenerateRequest(prompt=f"p{i}",
                                                 max_new_tokens=2,
                                                 stop_on_eos=False))
                   for i in range(4)]
        # Shed handles fail immediately, before any engine step.
        assert handles[2].done() and handles[3].done()
        for handle in handles[2:]:
            with pytest.raises(ServerOverloaded, match="queue depth"):
                handle.result(timeout=5)
        server.run_until_idle()
        for handle in handles[:2]:  # admitted work is protected, not shed
            assert len(handle.result(timeout=5).token_ids) == 2
        stats = server.stats()
        assert stats.shed == 2
        assert stats.requests_completed == 2

    def test_age_shedding_and_degraded_health(self, model):
        server = InferenceServer(
            model, SchedulerPolicy(max_batch_size=1, shed_queue_age_s=0.02))
        server.submit(GenerateRequest(prompt="old", max_new_tokens=2,
                                      stop_on_eos=False))
        blocked = server.submit(GenerateRequest(prompt="wait", max_new_tokens=2,
                                                stop_on_eos=False))
        time.sleep(0.05)  # the queued request ages past the shed bound
        assert server.health == ServerHealth.DEGRADED
        shed = server.submit(GenerateRequest(prompt="new", max_new_tokens=2,
                                             stop_on_eos=False))
        with pytest.raises(ServerOverloaded, match="waited"):
            shed.result(timeout=5)
        server.run_until_idle()
        assert blocked.result(timeout=5).token_ids  # queued work survived
        assert server.health == ServerHealth.HEALTHY

    def test_decision_depth_shedding(self, model):
        server = InferenceServer(
            policy=SchedulerPolicy(shed_queue_depth=2),
            runtimes={"echo": _EchoRuntime()})
        handles = [server.submit(DecisionRequest(task="echo", payload=i))
                   for i in range(4)]
        for handle in handles[2:]:
            with pytest.raises(ServerOverloaded):
                handle.result(timeout=5)
        server.run_until_idle()
        assert [h.result(timeout=5) for h in handles[:2]] == [0, 2]
        assert server.stats().shed == 2

    def test_shed_outcome_in_stats(self, model):
        server = InferenceServer(
            model, SchedulerPolicy(max_batch_size=1, shed_queue_depth=1))
        ok = server.submit(GenerateRequest(prompt="a", max_new_tokens=2,
                                           stop_on_eos=False))
        shed = server.submit(GenerateRequest(prompt="b", max_new_tokens=2,
                                             stop_on_eos=False))
        server.run_until_idle()
        ok.result(timeout=5)
        with pytest.raises(ServerOverloaded):
            shed.result(timeout=5)
        report = server.stats().report()
        assert report["shed"] == 1
        assert report["failed"] == 0
        assert report["health"] == ServerHealth.HEALTHY


# ---------------------------------------------------------------------- #
# Engine shutdown diagnostics (satellite fixes)
# ---------------------------------------------------------------------- #
class TestShutdownDiagnostics:
    def test_stop_raises_loudly_on_wedged_loop_thread(self, model, monkeypatch):
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        monkeypatch.setattr(InferenceServer, "JOIN_TIMEOUT_S", 0.1)
        release = time.perf_counter() + 1.0

        def wedged_step():
            while time.perf_counter() < release:
                time.sleep(0.01)
            return False

        monkeypatch.setattr(server, "step", wedged_step)
        server.start()
        time.sleep(0.02)  # let the loop enter the wedged step
        with pytest.raises(RuntimeError, match="did not exit within"):
            server.stop(drain=False)
        # Cleanup: the wedge releases itself and the thread exits.
        time.sleep(1.1)

    def test_fail_all_pending_does_not_mask_original_error(self, model):
        """Satellite regression test: a failing per-session evict inside the
        crash guard must not replace the error every handle reports."""
        server = InferenceServer(model, SchedulerPolicy(max_batch_size=1))
        handle = server.submit(GenerateRequest(prompt="x", max_new_tokens=4,
                                               stop_on_eos=False))
        server.step()  # admit the session so the crash guard must evict it
        assert server._manager.num_running == 1

        def exploding_evict(session, reason="failed"):
            raise RuntimeError("evict exploded too")

        server._manager.evict = exploding_evict
        original = RuntimeError("the original fault")
        server._fail_all_pending(original)
        with pytest.raises(RuntimeError, match="the original fault"):
            handle.result(timeout=5)


# ---------------------------------------------------------------------- #
# Seeded chaos property suite
# ---------------------------------------------------------------------- #
def _mixed_workload(rng, count):
    """A seeded list of (kind, payload) submissions."""
    events = []
    for index in range(count):
        kind = rng.choice(["generate", "echo"])
        if kind == "generate":
            words = " ".join(f"w{rng.integers(0, 50)}"
                             for _ in range(int(rng.integers(1, 6))))
            events.append(("generate", (words, int(rng.integers(2, 6)))))
        else:
            events.append(("echo", int(rng.integers(0, 1000))))
    return events


def _run_workload(server, events, steps_between=2):
    handles = []
    for kind, payload in events:
        if kind == "generate":
            prompt, max_new = payload
            handles.append(server.submit(GenerateRequest(
                prompt=prompt, max_new_tokens=max_new, stop_on_eos=False)))
        else:
            handles.append(server.submit(
                DecisionRequest(task="echo", payload=payload)))
        for _ in range(steps_between):
            server.step()
    server.run_until_idle()
    return handles


def _collect(handles):
    """(outcome, value) per handle: 'ok' payload or the failure class name."""
    results = []
    for handle in handles:
        assert handle.done(), "no handle may hang after the run goes idle"
        try:
            value = handle.result(timeout=5)
        except Exception as error:
            results.append(("error", type(error).__name__))
            continue
        value = value.token_ids if hasattr(value, "token_ids") else value
        results.append(("ok", value))
    return results


class TestSpeculativeFaults:
    """Faults at the speculative sites: drafting can never corrupt KV, and a
    verify-phase fault quarantines only the implicated decode batch with its
    speculatively-grown KV provably rolled back (pool invariants hold)."""

    POLICY = dict(max_batch_size=4, speculation="ngram", speculation_k=4)

    def test_verify_fault_quarantines_batch_with_rolled_back_kv(self, model):
        # The adversarial moment: decode.verify fires *after* the multi-token
        # forward grew KV for every draft token but *before* acceptance — the
        # quarantine must reclaim the speculative tails too.
        injector = FaultInjector([FaultSpec(site="decode.verify", at=2)])
        server = InferenceServer(model, SchedulerPolicy(**self.POLICY),
                                 fault_injector=injector)
        doomed = [server.submit(GenerateRequest(
            prompt="loop loop loop loop loop", max_new_tokens=12,
            stop_on_eos=False)) for _ in range(2)]
        server.run_until_idle()
        assert injector.total_fired == 1
        for handle in doomed:
            with pytest.raises(RequestFailed, match="decode step"):
                handle.result(timeout=5)
        _invariants(server)
        assert server._manager.cache.num_sessions == 0  # tails reclaimed
        # Only the implicated batch died: the engine keeps serving.
        survivor = server.submit(GenerateRequest(
            prompt="loop loop loop loop", max_new_tokens=6,
            stop_on_eos=False))
        server.run_until_idle()
        assert len(survivor.result(timeout=5).token_ids) == 6
        assert server.stats().faults_quarantined == 1

    def test_draft_propose_fault_quarantines_only_running_batch(self, model):
        # draft.propose fires in the engine's plan pass (pre-drafting, no KV
        # grown yet); the quarantine implicates the running batch only — a
        # queued request admitted afterwards completes untouched.
        injector = FaultInjector([FaultSpec(site="draft.propose", at=2)])
        server = InferenceServer(
            model, SchedulerPolicy(prefill_chunk_size=8, step_token_budget=32,
                                   **self.POLICY),
            fault_injector=injector)
        doomed = server.submit(GenerateRequest(
            prompt="tick tock tick tock tick", max_new_tokens=12,
            stop_on_eos=False))
        server.run_until_idle()
        with pytest.raises(RequestFailed, match="draft propose"):
            doomed.result(timeout=5)
        _invariants(server)
        survivor = server.submit(GenerateRequest(
            prompt="tick tock tick tock", max_new_tokens=4,
            stop_on_eos=False))
        server.run_until_idle()
        assert len(survivor.result(timeout=5).token_ids) == 4

    def test_verify_corrupt_cannot_break_the_pool(self, model):
        # A corrupt spec perturbs the verification logits in place: emitted
        # tokens may diverge (acceptance resamples from corrupted logits) but
        # the rollback arithmetic is logits-independent — requests complete
        # and the pool stays sound.
        injector = FaultInjector(
            [FaultSpec(site="decode.verify", action="corrupt", every=2,
                       corrupt_scale=5.0)])
        server = InferenceServer(model, SchedulerPolicy(**self.POLICY),
                                 fault_injector=injector)
        handles = [server.submit(GenerateRequest(
            prompt="repeat repeat repeat repeat", max_new_tokens=10,
            stop_on_eos=False)) for _ in range(3)]
        server.run_until_idle()
        assert injector.total_fired > 0
        for handle in handles:
            assert len(handle.result(timeout=5).token_ids) == 10
        _invariants(server)
        assert server._manager.cache.num_sessions == 0

    def test_speculative_chaos_survivors_match_sequential_reference(self, model):
        """Seeded chaos over a speculative engine: survivors must match the
        fault-free *non-speculative* run exactly — speculation plus faults
        plus rollback still never changes a single emitted token."""
        rng = np.random.default_rng(7)
        prompts = []
        for i in range(12):
            word = f"w{int(rng.integers(0, 4))}"
            prompts.append(" ".join([word] * int(rng.integers(3, 8))))

        def run(policy_extra, injector=None):
            server = InferenceServer(
                model, SchedulerPolicy(max_batch_size=4, **policy_extra),
                fault_injector=injector)
            handles = [server.submit(GenerateRequest(
                prompt=prompt, max_new_tokens=8,
                temperature=(0.7 if i % 2 else 0.0), seed=500 + i,
                stop_on_eos=False)) for i, prompt in enumerate(prompts)]
            server.run_until_idle()
            outcomes = []
            for handle in handles:
                try:
                    outcomes.append(("ok", handle.result(timeout=5).token_ids))
                except RequestFailed:
                    outcomes.append(("failed", None))
            _invariants(server)
            return outcomes, server

        reference, _ = run(dict())  # sequential, fault-free
        injector = FaultInjector([
            FaultSpec(site="decode.verify", rate=0.10, transient=True),
            FaultSpec(site="draft.propose", at=4, transient=True),
        ], seed=21)
        observed, server = run(
            dict(speculation="ngram", speculation_k=4,
                 retry_policy=RetryPolicy(max_attempts=3)),
            injector=injector)
        assert injector.total_fired > 0
        survivors = 0
        for (kind, tokens), (_, expected) in zip(observed, reference):
            if kind == "ok":
                survivors += 1
                assert tokens == expected  # exact cross-engine parity
        assert survivors > 0
        assert server._manager.cache.num_sessions == 0


class TestChaosSmoke:
    def test_seeded_chaos_smoke_fast_lane(self, model):
        """Fast-lane chaos: a short seeded fault schedule over a mixed
        workload — survivors match the fault-free reference run exactly."""
        start = time.perf_counter()
        rng = np.random.default_rng(42)
        events = _mixed_workload(rng, count=24)

        reference = InferenceServer(model, SchedulerPolicy(max_batch_size=4),
                                    runtimes={"echo": _EchoRuntime()})
        expected = _collect(_run_workload(reference, events))

        injector = FaultInjector([
            FaultSpec(site="decode.step", rate=0.15, transient=True),
            FaultSpec(site="prefill.band", at=3),
            FaultSpec(site="runtime.execute_batch", at=2),
        ], seed=42)
        server = InferenceServer(
            model, SchedulerPolicy(max_batch_size=4,
                                   retry_policy=RetryPolicy(max_attempts=2)),
            runtimes={"echo": _EchoRuntime()}, fault_injector=injector)
        observed = _collect(_run_workload(server, events))

        assert injector.total_fired > 0  # the schedule actually fired
        survivors = failures = 0
        for (kind, value), (_, reference_value) in zip(observed, expected):
            if kind == "ok":
                survivors += 1
                assert value == reference_value  # exact parity
            else:
                failures += 1
                assert value == "RequestFailed"
        assert survivors > 0 and failures > 0
        _invariants(server)
        stats = server.stats()
        assert stats.faults_quarantined > 0
        assert stats.requests_completed == survivors
        assert stats.failed == failures
        assert time.perf_counter() - start < 60  # fast-lane guard


@pytest.mark.slow
class TestChaosProperty:
    def test_200_step_chaos_parity_with_real_adapters(self, model, vp_data,
                                                      tiny_llm, abr_setup):
        """The tentpole property test: a 200-submission seeded chaos run over
        mixed generate+vp/abr traffic.  Every non-implicated request finishes
        with exact parity against the fault-free reference run, pool
        invariants hold after every quarantine (the engine re-proves them
        internally; re-checked here at the end), no handle hangs, and the
        engine keeps progressing throughout."""
        from repro.abr.env import ABRObservation
        from repro.core import DecisionAdapter, VPAdapter

        setting, _, vp_test = vp_data
        video, _, _ = abr_setup
        vp_llm = build_llm("tiny-test", lora_rank=0, pretrained=False, seed=0)
        vp_adapter = VPAdapter(vp_llm,
                               prediction_steps=setting.prediction_steps,
                               seed=0)
        state_dim = ABRObservation.flat_size(video.num_bitrates)
        abr_adapter = DecisionAdapter(tiny_llm, state_dim=state_dim,
                                      action_dims=(video.num_bitrates,),
                                      context_window=4, head="abr", seed=0)

        rng = np.random.default_rng(1234)
        events = []
        for _ in range(200):
            kind = rng.choice(["generate", "vp", "abr", "echo"])
            if kind == "generate":
                words = " ".join(f"w{rng.integers(0, 50)}"
                                 for _ in range(int(rng.integers(1, 8))))
                events.append(("generate", (words, int(rng.integers(2, 6)))))
            elif kind == "vp":
                events.append(("vp", int(rng.integers(0, len(vp_test)))))
            elif kind == "abr":
                window = 3
                events.append(("abr", {
                    "returns": rng.normal(size=(window, 1)),
                    "states": rng.normal(size=(window, state_dim)),
                    "actions": rng.integers(0, video.num_bitrates,
                                            size=(window, 1)),
                }))
            else:
                events.append(("echo", int(rng.integers(0, 1000))))

        def build_server(injector=None, retry=None):
            return InferenceServer(
                model,
                SchedulerPolicy(max_batch_size=4, prefill_chunk_size=8,
                                retry_policy=retry),
                adapters={"vp": vp_adapter, "abr": abr_adapter},
                runtimes={"echo": _EchoRuntime()},
                fault_injector=injector)

        def run(server):
            handles = []
            progressed = 0
            for kind, payload in events:
                if kind == "generate":
                    prompt, max_new = payload
                    handles.append(server.submit(GenerateRequest(
                        prompt=prompt, max_new_tokens=max_new,
                        stop_on_eos=False)))
                elif kind == "vp":
                    handles.append(server.submit(DecisionRequest(
                        task="vp", payload=vp_test[payload])))
                elif kind == "abr":
                    handles.append(server.submit(DecisionRequest(
                        task="abr", payload=payload)))
                else:
                    handles.append(server.submit(DecisionRequest(
                        task="echo", payload=payload)))
                server.step()
                progressed += sum(h.done() for h in handles)
            server.run_until_idle()
            assert progressed > 0  # the engine progressed throughout
            return handles

        expected = run(build_server())

        injector = FaultInjector([
            FaultSpec(site="decode.step", rate=0.05, transient=True),
            FaultSpec(site="prefill.band", rate=0.05),
            FaultSpec(site="prefill.chunk", rate=0.03, transient=True),
            FaultSpec(site="runtime.execute_batch", rate=0.05),
            FaultSpec(site="kv.admit", rate=0.02),
        ], seed=99)
        observed = run(build_server(injector=injector,
                                    retry=RetryPolicy(max_attempts=2)))

        assert injector.total_fired > 0
        survivors = failures = 0
        for expected_handle, handle in zip(expected, observed):
            assert handle.done()
            reference = expected_handle.result(timeout=5)
            try:
                value = handle.result(timeout=5)
            except RequestFailed:
                failures += 1
                continue
            survivors += 1
            if hasattr(value, "token_ids"):  # generation: exact token parity
                assert value.token_ids == reference.token_ids
            elif hasattr(value, "viewport"):  # vp: repo parity convention
                np.testing.assert_allclose(value.viewport,
                                           reference.viewport,
                                           atol=1e-9, rtol=0)
            elif hasattr(value, "action"):  # abr: exact greedy action
                assert value.action == reference.action
            else:
                assert value == reference
        assert survivors > 100  # most traffic survives the chaos
        assert failures > 0     # and the schedule really implicated some
        server = observed[0]._server
        _invariants(server)
        stats = server.stats()
        assert stats.faults_quarantined > 0
        assert stats.failed == failures
        assert stats.requests_completed == survivors
