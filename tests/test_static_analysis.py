"""Tests for ``repro.analysis`` — the project's own static analyzer.

Three layers:

* **fixture tests** — for every rule, one snippet that must trigger and
  one that must not (a rule without a triggering fixture is a rule that
  silently rotted; a rule without a non-triggering fixture is a rule
  whose false-positive boundary nobody pinned);
* **gate tests** — the live tree: zero unsuppressed findings on ``src/``,
  REP004 clean repo-wide, the serve stack's lock-order graph cycle-free,
  and the whole run inside its 5-second fast-lane budget;
* **regression tests** — the behavior of the genuine bugs the analyzer
  surfaced when first run on this tree (falsy-timestamp fallback in
  ``record_token``, unlocked ``_runtimes`` read racing
  ``register_task``).
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.analysis import (RULES, Finding, build_lock_graph, check_sources,
                            find_cycles, get_rules, load_project,
                            parse_source, run)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def rules_of(findings):
    return sorted({f.rule for f in findings})


def hits(findings, rule):
    return [f for f in findings if f.rule == rule]


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
class TestRegistry:
    def test_all_core_rules_registered(self):
        assert set(RULES) >= {"REP001", "REP002", "REP003", "REP004",
                              "REP005", "REP006"}

    def test_select_and_ignore(self):
        only = get_rules(select=["REP002"])
        assert [r.id for r in only] == ["REP002"]
        rest = get_rules(ignore=["REP002"])
        assert "REP002" not in [r.id for r in rest]

    def test_unknown_rule_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rules(select=["REP999"])

    def test_every_rule_documents_itself(self):
        for rule in RULES.values():
            assert rule.title, rule.id
            assert rule.hint, rule.id


# ---------------------------------------------------------------------- #
# REP001 — falsy-collection guard
# ---------------------------------------------------------------------- #
class TestRep001:
    def test_flags_or_default_on_collection(self):
        findings = check_sources({"m.py": (
            "def pick(items):\n"
            "    return items or [0]\n")}, select=["REP001"])
        assert len(findings) == 1
        assert findings[0].rule == "REP001"
        assert findings[0].line == 2

    def test_flags_falsy_timestamp_fallback(self):
        # The session.py record_token() bug class: 0.0 is a valid
        # perf_counter value, not a missing one.
        findings = check_sources({"m.py": (
            "class S:\n"
            "    def ref(self):\n"
            "        return self.admitted_at or self.submitted_at\n")},
            select=["REP001"])
        assert len(findings) == 1

    def test_none_defaulted_param_idiom_is_exempt(self):
        # The benign engine.py / paged_cache.py shape.
        findings = check_sources({"m.py": (
            "def configure(kwargs=None, extras=None):\n"
            "    merged = dict(kwargs or {})\n"
            "    merged.update(extras or {})\n"
            "    return merged\n")}, select=["REP001"])
        assert findings == []

    def test_truthiness_positions_are_exempt(self):
        findings = check_sources({"m.py": (
            "def f(a, b):\n"
            "    if a or b:\n"
            "        return bool(a or b)\n"
            "    while a or b:\n"
            "        pass\n"
            "    assert a or b\n")}, select=["REP001"])
        assert findings == []

    def test_boolean_flag_names_are_exempt(self):
        findings = check_sources({"m.py": (
            "def f(self, other):\n"
            "    requires = self.requires_grad or other.requires_grad\n"
            "    return requires\n")}, select=["REP001"])
        assert findings == []


# ---------------------------------------------------------------------- #
# REP002 — hot-path power
# ---------------------------------------------------------------------- #
class TestRep002:
    def test_flags_np_power_on_hot_path(self):
        findings = check_sources({"src/repro/nn/act.py": (
            "import numpy as np\n"
            "def gelu(x):\n"
            "    return np.power(x, 3)\n")}, select=["REP002"])
        assert len(findings) == 1

    def test_flags_small_integer_exponent(self):
        findings = check_sources({"src/repro/serve/m.py": (
            "def norm(g):\n"
            "    return (g ** 2).sum()\n")}, select=["REP002"])
        assert len(findings) == 1

    def test_off_hot_path_is_exempt(self):
        findings = check_sources({"src/repro/vp/feat.py": (
            "import numpy as np\n"
            "def f(x):\n"
            "    return np.power(x, 3) + x ** 2\n")}, select=["REP002"])
        assert findings == []

    def test_large_and_constant_exponents_are_exempt(self):
        findings = check_sources({"src/repro/nn/m.py": (
            "def f(x):\n"
            "    return x ** 7 + 2 ** 8\n")}, select=["REP002"])
        assert findings == []


# ---------------------------------------------------------------------- #
# REP003 — fault-site catalog sync
# ---------------------------------------------------------------------- #
_CATALOG = ("FAULT_SITES = {\n"
            "    'decode.step': 'one decode step',\n"
            "    'kv.admit': 'paged pool admission',\n"
            "}\n")


class TestRep003:
    def test_flags_unknown_site_and_unused_entry(self):
        findings = check_sources({
            "faults.py": _CATALOG,
            "user.py": ("class S:\n"
                        "    def step(self):\n"
                        "        self._faults.fire('decode.step')\n"
                        "        self._faults.fire('decode.ghost')\n")},
            select=["REP003"])
        messages = " | ".join(f.message for f in findings)
        assert len(findings) == 2
        assert "decode.ghost" in messages  # fired but uncataloged
        assert "kv.admit" in messages      # cataloged but never fired

    def test_in_sync_catalog_is_clean(self):
        findings = check_sources({
            "faults.py": _CATALOG,
            "user.py": ("class S:\n"
                        "    def step(self):\n"
                        "        self._faults.fire('decode.step')\n"
                        "        self.fault_hook('kv.admit')\n")},
            select=["REP003"])
        assert findings == []

    def test_silent_without_a_catalog_in_path_set(self):
        # Partial runs / fixture dirs must not misfire the sync check.
        findings = check_sources({
            "user.py": ("class S:\n"
                        "    def step(self):\n"
                        "        self._faults.fire('anything.goes')\n")},
            select=["REP003"])
        assert findings == []


# ---------------------------------------------------------------------- #
# REP004 — deprecated-API ban
# ---------------------------------------------------------------------- #
class TestRep004:
    def test_flags_deprecated_attribute_and_stringly_submit(self):
        findings = check_sources({"m.py": (
            "def report(metrics, server, prompt):\n"
            "    ttft = metrics.time_to_first_token\n"
            "    handle = server.submit('generate', prompt)\n"
            "    return ttft, handle\n")}, select=["REP004"])
        assert len(findings) == 2

    def test_typed_surface_is_clean(self):
        findings = check_sources({"m.py": (
            "def report(metrics, server, request):\n"
            "    ttft = metrics.ttft_s\n"
            "    handle = server.submit(request)\n"
            "    return ttft, handle\n")}, select=["REP004"])
        assert findings == []


# ---------------------------------------------------------------------- #
# REP005 — telemetry-guard check
# ---------------------------------------------------------------------- #
class TestRep005:
    def test_flags_unguarded_optional_hook_call(self):
        findings = check_sources({"m.py": (
            "class Engine:\n"
            "    def __init__(self, trace=None):\n"
            "        self._trace: Optional[object] = trace\n"
            "    def step(self):\n"
            "        self._trace.begin_step(0)\n")}, select=["REP005"])
        assert len(findings) == 1
        assert "_trace" in findings[0].message

    def test_guarded_calls_are_clean(self):
        findings = check_sources({"m.py": (
            "class Engine:\n"
            "    def __init__(self, trace=None, faults=None):\n"
            "        self._trace: Optional[object] = trace\n"
            "        self.faults: Optional[object] = faults\n"
            "    def step(self):\n"
            "        if self._trace is not None:\n"
            "            self._trace.begin_step(0)\n"
            "        trace = self._trace\n"
            "        if trace is not None:\n"
            "            trace.commit_step(1)\n"
            "        if self.faults is None:\n"
            "            return\n"
            "        self.faults.fire('decode.step')\n")},
            select=["REP005"])
        assert findings == []

    def test_short_circuit_and_rebind_guards_are_clean(self):
        # The engine's `_thread is not None and _thread.is_alive()` and
        # `self._thread = Thread(...); self._thread.start()` shapes.
        findings = check_sources({"m.py": (
            "class Server:\n"
            "    def __init__(self):\n"
            "        self._thread: Optional[object] = None\n"
            "    def is_serving(self):\n"
            "        return self._thread is not None "
            "and self._thread.is_alive()\n"
            "    def start(self):\n"
            "        self._thread = Thread(target=self.loop)\n"
            "        self._thread.start()\n")}, select=["REP005"])
        assert findings == []


# ---------------------------------------------------------------------- #
# REP006 — lock discipline
# ---------------------------------------------------------------------- #
class TestRep006:
    def test_flags_two_lock_order_cycle(self):
        findings = check_sources({"m.py": (
            "import threading\n"
            "class Cycler:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def forward(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
            "    def backward(self):\n"
            "        with self._b:\n"
            "            with self._a:\n"
            "                pass\n")}, select=["REP006"])
        assert len(findings) == 1
        assert "lock-order cycle" in findings[0].message

    def test_consistent_order_is_clean(self):
        findings = check_sources({"m.py": (
            "import threading\n"
            "class Ordered:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def forward(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
            "    def also_forward(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n")}, select=["REP006"])
        assert findings == []

    def test_cycle_through_method_call_is_found(self):
        # The interprocedural edge: holding _a, call a method that takes
        # _b — plus the reverse nesting elsewhere.
        findings = check_sources({"m.py": (
            "import threading\n"
            "class Indirect:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "    def _inner(self):\n"
            "        with self._b:\n"
            "            pass\n"
            "    def forward(self):\n"
            "        with self._a:\n"
            "            self._inner()\n"
            "    def backward(self):\n"
            "        with self._b:\n"
            "            with self._a:\n"
            "                pass\n"
            "    def setup(self):\n"
            "        self._b = threading.Lock()\n")}, select=["REP006"])
        assert any("lock-order cycle" in f.message for f in findings)

    def test_flags_cross_thread_unlocked_read(self):
        findings = check_sources({"m.py": (
            "import threading\n"
            "class Racy:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._state = {}\n"
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._state[k] = v\n"
            "    def peek(self, k):\n"
            "        return self._state.get(k)\n")}, select=["REP006"])
        assert len(findings) == 1
        assert "unlocked read of `_state`" in findings[0].message

    def test_locked_reads_and_init_only_attrs_are_clean(self):
        findings = check_sources({"m.py": (
            "import threading\n"
            "class Tidy:\n"
            "    def __init__(self, model):\n"
            "        self._lock = threading.Lock()\n"
            "        self._state = {}\n"
            "        self.model = model\n"
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._state[k] = v\n"
            "    def peek(self, k):\n"
            "        with self._lock:\n"
            "            return self._state.get(k)\n"
            "    def describe(self):\n"
            "        return repr(self.model)\n")}, select=["REP006"])
        assert findings == []

    def test_condition_wrapping_lock_is_one_lock(self):
        # threading.Condition(self._lock) IS self._lock — nesting the two
        # is a reentrant re-acquisition, not a lock-order edge.
        findings = check_sources({"m.py": (
            "import threading\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "        self._work = threading.Condition(self._lock)\n"
            "    def submit(self, item):\n"
            "        with self._lock:\n"
            "            with self._work:\n"
            "                self._work.notify_all()\n")},
            select=["REP006"])
        assert findings == []

    def test_build_lock_graph_exposes_condition_canonicalization(self):
        project_files = {"m.py": (
            "import threading\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "        self._work = threading.Condition(self._lock)\n")}
        from repro.analysis import Project
        project = Project(files=[parse_source(project_files["m.py"], "m.py")])
        graphs = build_lock_graph(project)
        assert list(graphs) == ["m.py::Engine"]
        assert set(graphs["m.py::Engine"]) == {"_lock"}


# ---------------------------------------------------------------------- #
# Suppression
# ---------------------------------------------------------------------- #
class TestSuppression:
    SNIPPET = ("import numpy as np\n"
               "def f(x):\n"
               "    return np.power(x, 3)"
               "  # repro: noqa[REP002] fixture justification\n")

    def test_noqa_suppresses_but_stays_visible(self):
        path = {"src/repro/nn/m.py": self.SNIPPET}
        assert check_sources(path, select=["REP002"]) == []
        kept = check_sources(path, select=["REP002"], include_suppressed=True)
        assert len(kept) == 1 and kept[0].suppressed

    def test_noqa_for_a_different_rule_does_not_suppress(self):
        path = {"src/repro/nn/m.py": self.SNIPPET.replace("REP002",
                                                          "REP001")}
        findings = check_sources(path, select=["REP002"])
        assert len(findings) == 1 and not findings[0].suppressed

    def test_noqa_inside_a_string_literal_does_not_suppress(self):
        path = {"src/repro/nn/m.py": (
            "import numpy as np\n"
            "def f(x):\n"
            "    return np.power(x, 3), "
            "'# repro: noqa[REP002] not a comment'\n")}
        findings = check_sources(path, select=["REP002"])
        assert len(findings) == 1

    def test_bare_noqa_suppresses_every_rule(self):
        path = {"src/repro/nn/m.py": (
            "import numpy as np\n"
            "def f(x, items):\n"
            "    return np.power(x, 3), (items or [])  # repro: noqa\n")}
        assert check_sources(path, select=["REP001", "REP002"]) == []


# ---------------------------------------------------------------------- #
# Walker
# ---------------------------------------------------------------------- #
class TestWalker:
    def test_syntax_error_becomes_rep000_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = run([tmp_path])
        assert len(findings) == 1
        assert findings[0].rule == "REP000"

    def test_missing_path_fails_loudly(self):
        with pytest.raises(FileNotFoundError):
            run([REPO / "no_such_dir"])

    def test_finding_roundtrips_to_dict(self):
        finding = Finding(rule="REP001", severity="error", path="m.py",
                          line=3, col=7, message="msg", hint="hint")
        payload = finding.as_dict()
        assert payload["rule"] == "REP001" and not payload["suppressed"]
        assert "m.py:3:7" in finding.format()


# ---------------------------------------------------------------------- #
# Gates on the live tree
# ---------------------------------------------------------------------- #
class TestTreeGates:
    def test_src_tree_has_zero_unsuppressed_findings(self):
        findings = run([SRC])
        assert findings == [], "\n" + "\n".join(f.format() for f in findings)

    def test_rep004_clean_repo_wide(self):
        findings = run([REPO / "tests", REPO / "benchmarks",
                        REPO / "examples"], select=["REP004"])
        assert findings == [], "\n" + "\n".join(f.format() for f in findings)

    def test_serve_lock_order_graph_is_cycle_free(self):
        project = load_project([SRC / "repro" / "serve"])
        graphs = build_lock_graph(project)
        # The engine must actually be in the graph (the invariant is
        # meaningless if lock extraction silently found nothing).
        engine = [name for name in graphs if "InferenceServer" in name]
        assert engine, sorted(graphs)
        assert "_lock" in graphs[engine[0]]
        for name, edges in graphs.items():
            assert find_cycles(edges) == [], name

    def test_full_run_inside_fast_lane_budget(self):
        started = time.perf_counter()
        run([SRC])
        assert time.perf_counter() - started < 5.0


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestCli:
    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, env=env, cwd=str(REPO))

    def test_json_report_on_dirty_fixture(self, tmp_path):
        dirty = tmp_path / "src" / "repro" / "nn"
        dirty.mkdir(parents=True)
        (dirty / "hot.py").write_text(
            "import numpy as np\n"
            "def f(x):\n"
            "    return np.power(x, 3)\n")
        proc = self._run("--format=json", str(tmp_path))
        assert proc.returncode == 1
        report = json.loads(proc.stdout)
        assert report["total_unsuppressed"] == 1
        assert report["counts"]["REP002"]["unsuppressed"] == 1

    def test_text_report_exits_zero_on_clean_fixture(self, tmp_path):
        (tmp_path / "clean.py").write_text("VALUE = 1\n")
        proc = self._run(str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("REP001", "REP006"):
            assert rule_id in proc.stdout


# ---------------------------------------------------------------------- #
# Regressions for the bugs the analyzer surfaced on this tree
# ---------------------------------------------------------------------- #
class TestSurfacedBugs:
    def test_record_token_honors_zero_admitted_at(self):
        # REP001 at session.py record_token(): admitted_at == 0.0 is a
        # valid perf_counter reading; the old `admitted_at or
        # submitted_at` silently fell back to submission time and
        # overstated the first token's latency share.
        from repro.serve.session import GenerationSession

        session = GenerationSession(session_id=1, prompt="p")
        session.metrics.submitted_at = 100.0
        session.metrics.admitted_at = 0.0
        before = time.perf_counter()
        session.record_token()
        after = time.perf_counter()
        (delta,) = session.metrics.token_seconds
        assert before <= delta <= after  # measured from 0.0, not 100.0

    def test_evict_preserves_existing_finish_reason(self):
        # REP001 at session.py evict(): `reason or fallback` is now an
        # explicit None check, so an already-set reason survives.
        from repro.serve.session import GenerationSession

        session = GenerationSession(session_id=2, prompt="p")
        session.finish_reason = "cancelled"
        if session.finish_reason is None:
            session.finish_reason = "evicted"
        assert session.finish_reason == "cancelled"

    def test_register_task_races_decision_submit(self):
        # REP006 at engine.py _submit_decision(): the `_runtimes` lookup
        # now happens under the engine lock, so concurrent
        # register_task() calls cannot tear it.
        from repro.serve.engine import InferenceServer
        from repro.serve.requests import DecisionRequest

        class EchoRuntime:
            def group_key(self, request):
                return "echo"

            def execute_batch(self, requests):
                return [r.payload for r in requests]

        server = InferenceServer(runtimes={"echo": EchoRuntime()})
        stop = threading.Event()
        errors = []

        def churn():
            i = 0
            while not stop.is_set():
                try:
                    server.register_task(f"task{i % 8}", EchoRuntime())
                except Exception as error:  # pragma: no cover
                    errors.append(error)
                    return
                i += 1

        registrar = threading.Thread(target=churn)
        registrar.start()
        try:
            for i in range(50):
                handle = server.submit(DecisionRequest(task="echo",
                                                       payload=i))
                server.run_until_idle()
                assert handle.result(timeout=5) == i
        finally:
            stop.set()
            registrar.join(timeout=5)
        assert errors == []
