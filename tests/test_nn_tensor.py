"""Tests for the autodiff tensor: correctness of gradients and operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, concatenate, stack, where
from repro.nn.functional import numerical_gradient


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestBasicOps:
    def test_add_broadcast_gradients(self):
        a = Tensor(_rand((3, 4)), requires_grad=True)
        b = Tensor(_rand((4,), seed=1), requires_grad=True)
        out = (a + b).sum()
        out.backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul_gradients(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([5.0, 7.0]), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_sub_div_neg(self):
        a = Tensor(np.array([4.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        out = (a - b) / b + (-a)
        out.backward(np.array([1.0]))
        # d/da[(a-b)/b - a] = 1/b - 1 = -0.5 ; d/db = -a/b^2 = -1.0
        np.testing.assert_allclose(a.grad, [-0.5])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_matmul_gradients_match_numerical(self):
        a_val = _rand((3, 4))
        b_val = _rand((4, 2), seed=2)

        def f(x):
            return float((Tensor(x) @ Tensor(b_val)).sum().data)

        a = Tensor(a_val, requires_grad=True)
        (a @ Tensor(b_val)).sum().backward()
        numeric = numerical_gradient(f, a_val)
        np.testing.assert_allclose(a.grad, numeric, atol=1e-6)

    def test_batched_matmul(self):
        a = Tensor(_rand((2, 3, 4)), requires_grad=True)
        b = Tensor(_rand((2, 4, 5), seed=3), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_pow_and_scalar_ops(self):
        x_val = np.array([[1.0, 2.0], [3.0, 4.0]])

        def f(v):
            t = Tensor(v, requires_grad=True)
            return float(((t * 2 + 1) ** 2.0).sum().data)

        x = Tensor(x_val, requires_grad=True)
        ((x * 2 + 1) ** 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, numerical_gradient(f, x_val), atol=1e-5)

    def test_rsub_rdiv(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        out = 10.0 - x
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [-1.0])
        y = Tensor(np.array([2.0]), requires_grad=True)
        (10.0 / y).backward(np.array([1.0]))
        np.testing.assert_allclose(y.grad, [-2.5])


class TestActivations:
    @pytest.mark.parametrize("op", ["tanh", "sigmoid", "relu", "gelu", "exp", "abs"])
    def test_unary_matches_numerical(self, op):
        x_val = _rand((4, 3), seed=5)

        def f(v):
            return float(getattr(Tensor(v), op)().sum().data)

        x = Tensor(x_val, requires_grad=True)
        getattr(x, op)().sum().backward()
        np.testing.assert_allclose(x.grad, numerical_gradient(f, x_val), atol=1e-5)

    def test_log_positive_domain(self):
        x_val = np.abs(_rand((3, 3))) + 0.5
        x = Tensor(x_val, requires_grad=True)
        x.log().sum().backward()
        np.testing.assert_allclose(x.grad, 1.0 / x_val, atol=1e-9)

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(_rand((5, 7)))
        probs = x.softmax(axis=-1)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(5), atol=1e-12)

    def test_softmax_gradient(self):
        x_val = _rand((2, 4), seed=9)
        weights = _rand((2, 4), seed=10)

        def f(v):
            return float((Tensor(v).softmax(axis=-1) * Tensor(weights)).sum().data)

        x = Tensor(x_val, requires_grad=True)
        (x.softmax(axis=-1) * Tensor(weights)).sum().backward()
        np.testing.assert_allclose(x.grad, numerical_gradient(f, x_val), atol=1e-6)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(_rand((3, 6)))
        np.testing.assert_allclose(x.log_softmax().data, np.log(x.softmax().data), atol=1e-10)

    def test_clip_gradient_mask(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_mean_axis(self):
        x = Tensor(_rand((3, 4, 5)), requires_grad=True)
        x.mean(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((3, 4, 5), 1.0 / 4))

    def test_var_matches_numpy(self):
        data = _rand((6, 3))
        np.testing.assert_allclose(Tensor(data).var(axis=0).data, data.var(axis=0), atol=1e-12)

    def test_max_gradient_flows_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_transpose_roundtrip_grad(self):
        x = Tensor(_rand((2, 3, 4)), requires_grad=True)
        y = x.reshape(6, 4).transpose(1, 0).reshape(2, 3, 4)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_getitem_gradient_accumulates(self):
        x = Tensor(_rand((5, 3)), requires_grad=True)
        (x[0] + x[0]).sum().backward()
        assert np.allclose(x.grad[0], 2.0)
        assert np.allclose(x.grad[1:], 0.0)

    def test_fancy_index_gradient(self):
        x = Tensor(_rand((4, 6)), requires_grad=True)
        idx = np.array([0, 2, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad[2], np.full(6, 2.0))
        np.testing.assert_allclose(x.grad[1], np.zeros(6))

    def test_pad_and_slice(self):
        x = Tensor(_rand((2, 3)), requires_grad=True)
        padded = x.pad(((0, 0), (1, 1)))
        assert padded.shape == (2, 5)
        padded.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_concatenate_and_stack(self):
        a = Tensor(_rand((2, 3)), requires_grad=True)
        b = Tensor(_rand((2, 3), seed=4), requires_grad=True)
        cat = concatenate([a, b], axis=1)
        assert cat.shape == (2, 6)
        stk = stack([a, b], axis=0)
        assert stk.shape == (2, 2, 3)
        (cat.sum() + stk.sum()).backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))

    def test_where_select(self):
        cond = np.array([True, False, True])
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0, 30.0]), requires_grad=True)
        out = where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestBackwardMechanics:
    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(_rand((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_gradient_shape_mismatch_rejected(self):
        x = Tensor(_rand((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(3))

    def test_detach_cuts_graph(self):
        x = Tensor(_rand((2, 2)), requires_grad=True)
        y = x.detach() * 3
        assert not y.requires_grad

    def test_shared_subexpression_accumulates(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x
        (y + y).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [8.0])

    def test_item_and_len(self):
        t = Tensor(np.array([3.5]))
        assert t.item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=2, max_size=12))
def test_property_softmax_is_distribution(values):
    probs = Tensor(np.asarray(values)).softmax(axis=-1).data
    assert probs.min() >= 0
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
def test_property_matmul_shape(n, m):
    a = Tensor(np.ones((n, m)))
    b = Tensor(np.ones((m, 3)))
    assert (a @ b).shape == (n, 3)
    np.testing.assert_allclose((a @ b).data, np.full((n, 3), float(m)))


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=20))
def test_property_sum_linearity(values):
    arr = np.asarray(values)
    t = Tensor(arr, requires_grad=True)
    (t * 3.0).sum().backward()
    np.testing.assert_allclose(t.grad, np.full(arr.shape, 3.0))
