"""Task definition, settings and metric for viewport prediction (VP).

VP predicts the viewer's future head orientation (roll, pitch, yaw in
degrees) from the recent history of orientations and, optionally, a saliency
map of the video content.  The evaluation metric is mean absolute error (MAE)
in degrees, averaged over the prediction horizon and the three angles —
exactly the formula of the paper's §A.6.

Settings mirror Table 2: the default setting trains and tests on the
Jin2022-like dataset with a 2-second history window and a 4-second prediction
window; the unseen settings change the prediction setup and/or switch to the
Wu2017-like dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Viewport sampling rate (Hz) used throughout the paper's VP experiments.
SAMPLE_RATE_HZ = 5


@dataclass(frozen=True)
class VPSetting:
    """One row of Table 2: dataset choice plus history/prediction windows."""

    name: str
    dataset: str
    history_seconds: float
    prediction_seconds: float

    @property
    def history_steps(self) -> int:
        return int(round(self.history_seconds * SAMPLE_RATE_HZ))

    @property
    def prediction_steps(self) -> int:
        return int(round(self.prediction_seconds * SAMPLE_RATE_HZ))


#: Table 2 of the paper.
VP_SETTINGS: Dict[str, VPSetting] = {
    "default_train": VPSetting("default_train", "jin2022", 2.0, 4.0),
    "default_test": VPSetting("default_test", "jin2022", 2.0, 4.0),
    "unseen_setting1": VPSetting("unseen_setting1", "jin2022", 4.0, 6.0),
    "unseen_setting2": VPSetting("unseen_setting2", "wu2017", 2.0, 4.0),
    "unseen_setting3": VPSetting("unseen_setting3", "wu2017", 4.0, 6.0),
}


@dataclass
class VPSample:
    """A single supervised sample for viewport prediction.

    Attributes
    ----------
    history:
        ``(history_steps, 3)`` array of past (roll, pitch, yaw) in degrees.
    future:
        ``(prediction_steps, 3)`` array of ground-truth future viewports.
    saliency:
        ``(H, W)`` saliency map of the current video segment (content
        information), or ``None`` when the dataset omits video content.
    video_id / viewer_id:
        provenance of the sample, useful for per-video analysis.
    """

    history: np.ndarray
    future: np.ndarray
    saliency: Optional[np.ndarray] = None
    video_id: int = 0
    viewer_id: int = 0

    def __post_init__(self) -> None:
        self.history = np.asarray(self.history, dtype=np.float64)
        self.future = np.asarray(self.future, dtype=np.float64)
        if self.history.ndim != 2 or self.history.shape[1] != 3:
            raise ValueError(f"history must be (steps, 3), got {self.history.shape}")
        if self.future.ndim != 2 or self.future.shape[1] != 3:
            raise ValueError(f"future must be (steps, 3), got {self.future.shape}")


def mean_absolute_error(predicted: np.ndarray, actual: np.ndarray) -> float:
    """MAE in degrees averaged over horizon and the three angles (§A.6)."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {actual.shape}")
    return float(np.mean(np.abs(predicted - actual)))


def evaluate_predictor(predictor, samples: Sequence[VPSample]) -> Dict[str, object]:
    """Evaluate any object with a ``predict(sample) -> array`` method.

    Returns the average MAE plus the per-sample MAE list (for CDF plots,
    Figure 10b).
    """
    errors: List[float] = []
    for sample in samples:
        prediction = predictor.predict(sample)
        errors.append(mean_absolute_error(prediction, sample.future))
    return {
        "mae": float(np.mean(errors)) if errors else float("nan"),
        "per_sample_mae": errors,
    }
