"""Linear-regression viewport predictor (the "LR" baseline, Flare-style).

The predictor fits, independently for each angle, a least-squares line
``angle = a * t + b`` over the history window and extrapolates it over the
prediction horizon.  It is a rule-based method: there is nothing to train.
"""

from __future__ import annotations

import numpy as np

from ..task import VPSample


class LinearRegressionPredictor:
    """Extrapolate each angle with an ordinary least-squares line."""

    name = "LR"

    def __init__(self, prediction_steps: int) -> None:
        if prediction_steps < 1:
            raise ValueError("prediction_steps must be >= 1")
        self.prediction_steps = prediction_steps

    def predict(self, sample: VPSample) -> np.ndarray:
        history = sample.history
        steps = history.shape[0]
        t = np.arange(steps, dtype=np.float64)
        future_t = np.arange(steps, steps + self.prediction_steps, dtype=np.float64)
        design = np.column_stack([t, np.ones_like(t)])
        # Least squares for all three angles at once: (steps, 2) x (2, 3).
        coeffs, *_ = np.linalg.lstsq(design, history, rcond=None)
        future_design = np.column_stack([future_t, np.ones_like(future_t)])
        return future_design @ coeffs
