"""Velocity-based viewport predictor (the "Velocity" baseline, LiveObj-style).

The predictor estimates the viewer's angular velocity from the last few
history samples and extrapolates the latest position with that constant
velocity.  Like LR it is rule-based and training-free.
"""

from __future__ import annotations

import numpy as np

from ..task import VPSample


class VelocityPredictor:
    """Constant-velocity extrapolation of the last observed motion."""

    name = "Velocity"

    def __init__(self, prediction_steps: int, velocity_window: int = 3) -> None:
        if prediction_steps < 1:
            raise ValueError("prediction_steps must be >= 1")
        if velocity_window < 1:
            raise ValueError("velocity_window must be >= 1")
        self.prediction_steps = prediction_steps
        self.velocity_window = velocity_window

    def predict(self, sample: VPSample) -> np.ndarray:
        history = sample.history
        window = min(self.velocity_window, history.shape[0] - 1)
        if window < 1:
            velocity = np.zeros(3)
        else:
            diffs = np.diff(history[-(window + 1):], axis=0)
            velocity = diffs.mean(axis=0)
        last = history[-1]
        horizon = np.arange(1, self.prediction_steps + 1, dtype=np.float64)[:, None]
        return last[None, :] + horizon * velocity[None, :]
