"""TRACK — the learning-based viewport-prediction baseline.

TRACK (Rondón et al., TPAMI 2022) is an LSTM-based head-motion predictor that
fuses the viewer's positional history with video saliency.  The paper
re-implements it in PyTorch; here it is re-implemented at small scale on the
``repro.nn`` substrate with the same structure:

* an LSTM encodes the normalized history of (roll, pitch, yaw) deltas,
* a small saliency encoder embeds the content information,
* a fully connected decoder produces the residual motion over the prediction
  horizon, which is added to the last observed viewport.

Predicting *residuals* relative to the last position (rather than absolute
angles) is what the original model does and is important for stable training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ...nn import LSTM, Adam, Linear, Module, Sequential, ReLU, Tensor, clip_grad_norm
from ...utils import seeded_rng
from ..dataset import SALIENCY_SIZE
from ..task import VPSample

#: Scale (degrees) used to normalize viewport angles before the network.
ANGLE_SCALE = 60.0


class TrackModel(Module):
    """LSTM + saliency fusion network predicting future viewport residuals."""

    def __init__(self, prediction_steps: int, hidden_size: int = 32,
                 saliency_features: int = 8, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.prediction_steps = prediction_steps
        self.hidden_size = hidden_size
        self.lstm = LSTM(3, hidden_size, rng=rng)
        self.saliency_encoder = Sequential(
            Linear(SALIENCY_SIZE * SALIENCY_SIZE, saliency_features, rng=rng),
            ReLU(),
        )
        self.decoder = Sequential(
            Linear(hidden_size + saliency_features, 64, rng=rng),
            ReLU(),
            Linear(64, prediction_steps * 3, rng=rng),
        )

    def forward(self, history: Tensor, saliency: Tensor) -> Tensor:
        """Predict normalized residuals of shape ``(batch, prediction_steps, 3)``."""
        _, (hidden, _) = self.lstm(history)
        saliency_features = self.saliency_encoder(saliency)
        from ...nn import concatenate

        fused = concatenate([hidden, saliency_features], axis=1)
        flat = self.decoder(fused)
        batch = history.shape[0]
        return flat.reshape(batch, self.prediction_steps, 3)


def _prepare_batch(samples: Sequence[VPSample]) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Convert samples to normalized network inputs and residual targets."""
    histories = np.stack([s.history for s in samples])
    futures = np.stack([s.future for s in samples])
    last = histories[:, -1:, :]
    history_residuals = (histories - last) / ANGLE_SCALE
    target_residuals = (futures - last) / ANGLE_SCALE
    saliencies = np.stack([
        s.saliency if s.saliency is not None else np.zeros((SALIENCY_SIZE, SALIENCY_SIZE))
        for s in samples
    ]).reshape(len(samples), -1)
    return history_residuals, saliencies, target_residuals, last


@dataclass
class TrackTrainResult:
    losses: List[float]

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class TrackPredictor:
    """Inference wrapper exposing the common ``predict(sample)`` interface."""

    name = "TRACK"

    def __init__(self, model: TrackModel) -> None:
        self.model = model

    def predict(self, sample: VPSample) -> np.ndarray:
        history, saliency, _, last = _prepare_batch([sample])
        self.model.eval()
        residual = self.model(Tensor(history), Tensor(saliency))
        return residual.data[0] * ANGLE_SCALE + last[0]

    def predict_batch(self, samples: Sequence[VPSample]) -> np.ndarray:
        history, saliency, _, last = _prepare_batch(samples)
        self.model.eval()
        residual = self.model(Tensor(history), Tensor(saliency))
        return residual.data * ANGLE_SCALE + last


def train_track(train_samples: Sequence[VPSample], prediction_steps: int,
                epochs: int = 8, batch_size: int = 32, lr: float = 3e-3,
                hidden_size: int = 32, seed: int = 0,
                model: Optional[TrackModel] = None) -> tuple[TrackPredictor, TrackTrainResult]:
    """Train a TRACK model with mean-squared-error supervision."""
    if not train_samples:
        raise ValueError("train_samples must not be empty")
    rng = seeded_rng(seed)
    model = model or TrackModel(prediction_steps, hidden_size=hidden_size, seed=seed)
    optimizer = Adam(model.parameters(), lr=lr)
    losses: List[float] = []
    indices = np.arange(len(train_samples))
    model.train()
    for _ in range(epochs):
        rng.shuffle(indices)
        for start in range(0, len(indices), batch_size):
            batch_idx = indices[start:start + batch_size]
            batch = [train_samples[i] for i in batch_idx]
            history, saliency, target, _ = _prepare_batch(batch)
            prediction = model(Tensor(history), Tensor(saliency))
            diff = prediction - Tensor(target)
            loss = (diff * diff).mean()
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
            losses.append(float(loss.data))
    model.eval()
    return TrackPredictor(model), TrackTrainResult(losses=losses)
