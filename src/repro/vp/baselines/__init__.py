"""Baseline viewport predictors: linear regression, velocity, TRACK."""

from .linear_regression import LinearRegressionPredictor
from .velocity import VelocityPredictor
from .track import TrackPredictor, train_track

__all__ = [
    "LinearRegressionPredictor",
    "VelocityPredictor",
    "TrackPredictor",
    "train_track",
]
