"""Synthetic viewport-trace datasets standing in for Jin2022 and Wu2017.

The paper uses two public head-movement datasets that are not available in
this offline environment, so we generate traces with the statistical
properties viewport predictors exploit:

* head orientation moves smoothly (momentum / inertia),
* motion is pulled toward a small set of video-specific *attention points*
  (salient content), producing mean reversion that simple linear or
  velocity extrapolation over-shoots,
* occasional fast saccades relocate attention to a different point,
* a per-video saliency map marks the attention points, providing the image
  modality that TRACK and the NetLLM multimodal encoder consume.

Two named generators mimic the datasets of Table 2: ``jin2022`` (shorter
60-second videos, moderately dynamic viewers) and ``wu2017`` (longer videos,
more dynamic head motion), so the "unseen dataset" generalization settings
change the data distribution in the same direction as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..utils import seeded_rng
from .task import SAMPLE_RATE_HZ, VPSample, VPSetting

#: Size (pixels per side) of the synthetic saliency maps.
SALIENCY_SIZE = 32


@dataclass(frozen=True)
class ViewportDatasetSpec:
    """Generation parameters of one synthetic viewport dataset."""

    name: str
    num_videos: int
    num_viewers: int
    video_seconds: float
    #: pull strength toward the current attention point (per step)
    attraction: float
    #: probability per step of a saccade to a new attention point
    saccade_prob: float
    #: standard deviation of per-step angular noise (degrees)
    noise_std: float
    #: momentum coefficient of angular velocity
    momentum: float
    #: number of salient attention points per video
    num_attention_points: int


#: Dataset specs tuned so that wu2017 is more dynamic than jin2022 (harder).
DATASET_SPECS: Dict[str, ViewportDatasetSpec] = {
    "jin2022": ViewportDatasetSpec(
        name="jin2022", num_videos=8, num_viewers=12, video_seconds=60.0,
        attraction=0.055, saccade_prob=0.012, noise_std=0.9, momentum=0.82,
        num_attention_points=3,
    ),
    "wu2017": ViewportDatasetSpec(
        name="wu2017", num_videos=4, num_viewers=9, video_seconds=120.0,
        attraction=0.045, saccade_prob=0.022, noise_std=1.4, momentum=0.86,
        num_attention_points=4,
    ),
}


@dataclass
class ViewportTrace:
    """One viewer watching one video: a time series of (roll, pitch, yaw)."""

    viewports: np.ndarray  # (T, 3) degrees
    video_id: int
    viewer_id: int
    dataset: str

    def __len__(self) -> int:
        return self.viewports.shape[0]


@dataclass
class VideoContent:
    """Synthetic content description of one video: attention points + saliency."""

    video_id: int
    attention_points: np.ndarray  # (K, 2): (pitch, yaw) degrees of salient regions
    saliency: np.ndarray  # (SALIENCY_SIZE, SALIENCY_SIZE)


def _make_saliency(attention_points: np.ndarray) -> np.ndarray:
    """Render attention points into a soft Gaussian-blob saliency map."""
    grid = np.zeros((SALIENCY_SIZE, SALIENCY_SIZE), dtype=np.float64)
    ys, xs = np.mgrid[0:SALIENCY_SIZE, 0:SALIENCY_SIZE]
    for pitch, yaw in attention_points:
        # Map pitch [-45, 45] -> rows, yaw [0, 360) -> columns.
        row = (pitch + 45.0) / 90.0 * (SALIENCY_SIZE - 1)
        col = (yaw % 360.0) / 360.0 * (SALIENCY_SIZE - 1)
        grid += np.exp(-(((ys - row) ** 2) + ((xs - col) ** 2)) / (2 * 3.0 ** 2))
    peak = grid.max()
    return grid / peak if peak > 0 else grid


class ViewportDataset:
    """Synthetic viewport dataset with train/validation/test splits by viewer.

    Parameters
    ----------
    name:
        ``"jin2022"`` or ``"wu2017"``.
    seed:
        Seed controlling video content, viewer behaviour and splits.
    num_videos / num_viewers / video_seconds:
        Optional overrides of the spec (tests use small values for speed).
    """

    def __init__(self, name: str = "jin2022", seed: int = 0,
                 num_videos: Optional[int] = None, num_viewers: Optional[int] = None,
                 video_seconds: Optional[float] = None) -> None:
        if name not in DATASET_SPECS:
            raise KeyError(f"unknown viewport dataset {name!r}")
        spec = DATASET_SPECS[name]
        self.spec = spec
        self.name = name
        self.num_videos = num_videos or spec.num_videos
        self.num_viewers = num_viewers or spec.num_viewers
        self.video_seconds = video_seconds or spec.video_seconds
        self._rng = seeded_rng(seed)
        self.videos: List[VideoContent] = [self._make_video(v) for v in range(self.num_videos)]
        self.traces: List[ViewportTrace] = []
        for video in self.videos:
            for viewer in range(self.num_viewers):
                self.traces.append(self._simulate_trace(video, viewer))

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def _make_video(self, video_id: int) -> VideoContent:
        points = np.column_stack([
            self._rng.uniform(-30, 30, size=self.spec.num_attention_points),   # pitch
            self._rng.uniform(0, 360, size=self.spec.num_attention_points),    # yaw
        ])
        return VideoContent(video_id=video_id, attention_points=points,
                            saliency=_make_saliency(points))

    def _simulate_trace(self, video: VideoContent, viewer_id: int) -> ViewportTrace:
        spec = self.spec
        steps = int(self.video_seconds * SAMPLE_RATE_HZ)
        rng = self._rng
        # Per-viewer idiosyncrasy: slightly different momentum / noise levels.
        momentum = np.clip(spec.momentum + rng.normal(0, 0.03), 0.5, 0.95)
        noise_std = spec.noise_std * rng.uniform(0.8, 1.2)

        target_idx = int(rng.integers(0, len(video.attention_points)))
        position = np.array([
            rng.normal(0, 2.0),                                   # roll
            video.attention_points[target_idx, 0] + rng.normal(0, 5.0),  # pitch
            video.attention_points[target_idx, 1] + rng.normal(0, 10.0),  # yaw
        ])
        velocity = np.zeros(3)
        out = np.zeros((steps, 3))
        for t in range(steps):
            if rng.random() < spec.saccade_prob:
                target_idx = int(rng.integers(0, len(video.attention_points)))
            target = np.array([
                0.0,
                video.attention_points[target_idx, 0],
                video.attention_points[target_idx, 1],
            ])
            pull = spec.attraction * (target - position)
            velocity = momentum * velocity + pull + rng.normal(0, noise_std, size=3) * np.array([0.3, 0.6, 1.0])
            position = position + velocity
            position[0] = np.clip(position[0], -20, 20)
            position[1] = np.clip(position[1], -45, 45)
            out[t] = position
        return ViewportTrace(viewports=out, video_id=video.video_id,
                             viewer_id=viewer_id, dataset=self.name)

    # ------------------------------------------------------------------ #
    # Splits and windowing
    # ------------------------------------------------------------------ #
    def split_traces(self, fractions: Tuple[float, float, float] = (0.5, 0.25, 0.25),
                     seed: int = 0) -> Tuple[List[ViewportTrace], List[ViewportTrace], List[ViewportTrace]]:
        """Split traces by viewer into train/validation/test, as in §A.4."""
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise ValueError("split fractions must sum to 1")
        rng = seeded_rng(seed)
        viewers = np.arange(self.num_viewers)
        rng.shuffle(viewers)
        n_train = max(1, int(round(fractions[0] * self.num_viewers)))
        n_val = max(1, int(round(fractions[1] * self.num_viewers)))
        train_viewers = set(viewers[:n_train].tolist())
        val_viewers = set(viewers[n_train:n_train + n_val].tolist())

        def bucket(trace: ViewportTrace) -> str:
            if trace.viewer_id in train_viewers:
                return "train"
            if trace.viewer_id in val_viewers:
                return "val"
            return "test"

        buckets = {"train": [], "val": [], "test": []}
        for trace in self.traces:
            buckets[bucket(trace)].append(trace)
        return buckets["train"], buckets["val"], buckets["test"]

    def windows_from_traces(self, traces: Sequence[ViewportTrace], setting: VPSetting,
                            stride_steps: Optional[int] = None,
                            max_samples: Optional[int] = None,
                            include_saliency: bool = True,
                            seed: int = 0) -> List[VPSample]:
        """Slice traces into (history, future) supervised samples."""
        hw = setting.history_steps
        pw = setting.prediction_steps
        stride = stride_steps or pw
        samples: List[VPSample] = []
        video_by_id = {video.video_id: video for video in self.videos}
        for trace in traces:
            total = len(trace)
            for start in range(0, total - hw - pw + 1, stride):
                history = trace.viewports[start:start + hw]
                future = trace.viewports[start + hw:start + hw + pw]
                saliency = video_by_id[trace.video_id].saliency if include_saliency else None
                samples.append(VPSample(history=history, future=future, saliency=saliency,
                                        video_id=trace.video_id, viewer_id=trace.viewer_id))
        if max_samples is not None and len(samples) > max_samples:
            rng = seeded_rng(seed)
            indices = rng.choice(len(samples), size=max_samples, replace=False)
            samples = [samples[i] for i in sorted(indices)]
        return samples


def make_vp_data(setting: VPSetting, seed: int = 0, num_videos: Optional[int] = None,
                 num_viewers: Optional[int] = None, video_seconds: Optional[float] = None,
                 max_samples: Optional[int] = None) -> Tuple[List[VPSample], List[VPSample]]:
    """Convenience helper: build a dataset for ``setting`` and return (train, test)."""
    dataset = ViewportDataset(setting.dataset, seed=seed, num_videos=num_videos,
                              num_viewers=num_viewers, video_seconds=video_seconds)
    train_traces, _, test_traces = dataset.split_traces(seed=seed)
    train = dataset.windows_from_traces(train_traces, setting, max_samples=max_samples, seed=seed)
    test = dataset.windows_from_traces(test_traces, setting, max_samples=max_samples, seed=seed + 1)
    return train, test
