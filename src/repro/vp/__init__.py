"""``repro.vp`` — viewport prediction task (datasets, baselines, metric)."""

from .task import (
    SAMPLE_RATE_HZ,
    VP_SETTINGS,
    VPSample,
    VPSetting,
    evaluate_predictor,
    mean_absolute_error,
)
from .dataset import (
    DATASET_SPECS,
    SALIENCY_SIZE,
    VideoContent,
    ViewportDataset,
    ViewportTrace,
    make_vp_data,
)
from .baselines import LinearRegressionPredictor, TrackPredictor, VelocityPredictor, train_track

__all__ = [
    "SAMPLE_RATE_HZ", "VP_SETTINGS", "VPSample", "VPSetting",
    "evaluate_predictor", "mean_absolute_error",
    "DATASET_SPECS", "SALIENCY_SIZE", "VideoContent", "ViewportDataset", "ViewportTrace",
    "make_vp_data",
    "LinearRegressionPredictor", "TrackPredictor", "VelocityPredictor", "train_track",
]
