"""Reproduction of *NetLLM: Adapting Large Language Models for Networking*.

Subpackages
-----------
``repro.nn``     numpy autodiff / neural-network substrate
``repro.llm``    decoder-only transformer "LLM" substitute and tokenizer
``repro.core``   the NetLLM framework: multimodal encoder, networking heads,
                 DD-LRNA adaptation, prompt-learning baseline, APIs
``repro.vp``     viewport-prediction task: datasets, baselines, metrics
``repro.abr``    adaptive-bitrate streaming: traces, simulator, baselines
``repro.cjs``    cluster job scheduling: DAG jobs, simulator, baselines
``repro.serve``  batched multi-session inference serving (continuous batching)
``repro.utils``  shared utilities
"""

__version__ = "1.0.0"

__all__ = ["nn", "llm", "core", "vp", "abr", "cjs", "serve", "utils", "__version__"]
