"""Bandwidth traces for ABR simulation.

The paper drives its simulator with the FCC broadband dataset and, for the
generalization experiments, a synthetic dataset ("SynthTrace") with a wider
bandwidth range and faster fluctuations; the real-world testbed additionally
uses Norway 3G cellular traces.  None of those datasets can be downloaded
here, so this module provides generators that match their qualitative
statistics:

* :func:`fcc_like_traces` — broadband-like: a few Mbps, slowly varying.
* :func:`cellular_like_traces` — 3G-like: lower mean, bursty, occasional
  outages down to a few hundred kbps.
* :func:`synth_traces` — wider range and higher changing frequency
  (Pensieve's synthetic-trace recipe), used by the unseen settings.

Each trace is a step function: ``bandwidth_mbps[i]`` holds between
``timestamps[i]`` and ``timestamps[i+1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..utils import seeded_rng


@dataclass
class BandwidthTrace:
    """A piecewise-constant bandwidth time series.

    Attributes
    ----------
    timestamps:
        Strictly increasing times (seconds) of each bandwidth sample.
    bandwidth_mbps:
        Bandwidth (Mbps) in effect from ``timestamps[i]`` until the next
        timestamp; the last value repeats (the trace loops when exhausted).
    name:
        Identifier used in reports.
    """

    timestamps: np.ndarray
    bandwidth_mbps: np.ndarray
    name: str = "trace"

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        self.bandwidth_mbps = np.asarray(self.bandwidth_mbps, dtype=np.float64)
        if self.timestamps.ndim != 1 or self.bandwidth_mbps.ndim != 1:
            raise ValueError("timestamps and bandwidth must be 1-D")
        if self.timestamps.size != self.bandwidth_mbps.size:
            raise ValueError("timestamps and bandwidth must have equal length")
        if self.timestamps.size < 2:
            raise ValueError("a trace needs at least two samples")
        if np.any(np.diff(self.timestamps) <= 0):
            raise ValueError("timestamps must be strictly increasing")
        if np.any(self.bandwidth_mbps <= 0):
            raise ValueError("bandwidth must be positive")

    @property
    def duration(self) -> float:
        return float(self.timestamps[-1] - self.timestamps[0])

    @property
    def mean_bandwidth(self) -> float:
        return float(self.bandwidth_mbps.mean())

    def bandwidth_at(self, t: float) -> float:
        """Bandwidth (Mbps) in effect at absolute time ``t`` (trace loops)."""
        span = self.duration
        if span <= 0:
            return float(self.bandwidth_mbps[0])
        local = self.timestamps[0] + ((t - self.timestamps[0]) % span)
        index = int(np.searchsorted(self.timestamps, local, side="right") - 1)
        index = max(0, min(index, self.bandwidth_mbps.size - 1))
        return float(self.bandwidth_mbps[index])


def _markov_trace(rng: np.random.Generator, duration: float, step: float,
                  mean_mbps: float, volatility: float, low: float, high: float,
                  name: str) -> BandwidthTrace:
    """Mean-reverting log-bandwidth random walk — the common generator core."""
    steps = max(2, int(duration / step))
    log_mean = np.log(mean_mbps)
    log_bw = np.empty(steps)
    log_bw[0] = log_mean + rng.normal(0, volatility)
    for i in range(1, steps):
        log_bw[i] = log_bw[i - 1] + 0.3 * (log_mean - log_bw[i - 1]) + rng.normal(0, volatility)
    bandwidth = np.clip(np.exp(log_bw), low, high)
    timestamps = np.arange(steps) * step
    return BandwidthTrace(timestamps=timestamps, bandwidth_mbps=bandwidth, name=name)


def fcc_like_traces(count: int = 20, duration: float = 320.0, seed: int = 0) -> List[BandwidthTrace]:
    """Broadband-like traces: means of 1-4 Mbps, slow variation."""
    rngs = seeded_rng(seed)
    traces = []
    for index in range(count):
        mean = float(rngs.uniform(1.0, 4.0))
        traces.append(_markov_trace(rngs, duration, step=4.0, mean_mbps=mean,
                                    volatility=0.15, low=0.2, high=8.0,
                                    name=f"fcc-{index}"))
    return traces


def cellular_like_traces(count: int = 20, duration: float = 320.0, seed: int = 1) -> List[BandwidthTrace]:
    """3G-cellular-like traces: lower means, bursty with occasional outages."""
    rng = seeded_rng(seed)
    traces = []
    for index in range(count):
        mean = float(rng.uniform(0.6, 2.0))
        trace = _markov_trace(rng, duration, step=2.0, mean_mbps=mean,
                              volatility=0.35, low=0.1, high=6.0,
                              name=f"cellular-{index}")
        # Inject short outage-like dips.
        dips = rng.integers(1, 4)
        for _ in range(int(dips)):
            start = rng.integers(0, trace.bandwidth_mbps.size - 3)
            trace.bandwidth_mbps[start:start + 3] = np.maximum(
                0.1, trace.bandwidth_mbps[start:start + 3] * 0.15)
        traces.append(trace)
    return traces


def synth_traces(count: int = 20, duration: float = 320.0, seed: int = 2) -> List[BandwidthTrace]:
    """SynthTrace-like traces: wider range (0.2-12 Mbps) and faster changes."""
    rng = seeded_rng(seed)
    traces = []
    for index in range(count):
        mean = float(rng.uniform(1.0, 6.0))
        traces.append(_markov_trace(rng, duration, step=1.0, mean_mbps=mean,
                                    volatility=0.45, low=0.2, high=12.0,
                                    name=f"synth-{index}"))
    return traces


def get_traces(name: str, count: int = 20, duration: float = 320.0,
               seed: Optional[int] = None) -> List[BandwidthTrace]:
    """Look up a trace family by the names used in Table 3 / §A.5."""
    key = name.lower()
    if key in ("fcc", "broadband"):
        return fcc_like_traces(count=count, duration=duration, seed=0 if seed is None else seed)
    if key in ("cellular", "norway", "3g"):
        return cellular_like_traces(count=count, duration=duration, seed=1 if seed is None else seed)
    if key in ("synthtrace", "synth"):
        return synth_traces(count=count, duration=duration, seed=2 if seed is None else seed)
    raise KeyError(f"unknown trace family {name!r}")
