"""Video manifests for adaptive bitrate streaming.

A manifest describes a video as a ladder of bitrate versions and the size of
every chunk at every bitrate.  The default manifest mirrors the
*Envivio-Dash3* reference video used by Pensieve/GENET and the paper: 48
four-second chunks encoded at {300, 750, 1200, 1850, 2850, 4300} kbps.  The
``SynthVideo`` manifest used by the unseen-setting experiments keeps the same
structure but with a larger bitrate ladder, as described in §A.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..utils import seeded_rng

#: Envivio-Dash3 bitrate ladder in kbps (same as Pensieve / GENET).
ENVIVIO_BITRATES_KBPS = (300, 750, 1200, 1850, 2850, 4300)

#: SynthVideo bitrate ladder (larger bitrates, §A.4 unseen settings).
SYNTH_BITRATES_KBPS = (500, 1200, 2000, 3000, 4500, 6500)

#: Chunk duration in seconds for both videos.
CHUNK_SECONDS = 4.0


@dataclass
class VideoManifest:
    """Chunked video description used by the ABR simulator.

    Attributes
    ----------
    name:
        Human-readable identifier (``envivio-dash3`` or ``synth-video``).
    bitrates_kbps:
        The bitrate ladder, ascending.
    chunk_sizes_bytes:
        ``(num_chunks, num_bitrates)`` matrix of chunk sizes in bytes.
    chunk_seconds:
        Playback duration of each chunk.
    """

    name: str
    bitrates_kbps: Sequence[int]
    chunk_sizes_bytes: np.ndarray
    chunk_seconds: float = CHUNK_SECONDS

    def __post_init__(self) -> None:
        self.bitrates_kbps = tuple(int(b) for b in self.bitrates_kbps)
        self.chunk_sizes_bytes = np.asarray(self.chunk_sizes_bytes, dtype=np.float64)
        if list(self.bitrates_kbps) != sorted(self.bitrates_kbps):
            raise ValueError("bitrates must be ascending")
        if self.chunk_sizes_bytes.ndim != 2:
            raise ValueError("chunk_sizes_bytes must be 2-D (chunks, bitrates)")
        if self.chunk_sizes_bytes.shape[1] != len(self.bitrates_kbps):
            raise ValueError("chunk size matrix does not match bitrate ladder")
        if np.any(self.chunk_sizes_bytes <= 0):
            raise ValueError("chunk sizes must be positive")

    @property
    def num_chunks(self) -> int:
        return int(self.chunk_sizes_bytes.shape[0])

    @property
    def num_bitrates(self) -> int:
        return len(self.bitrates_kbps)

    @property
    def bitrates_mbps(self) -> np.ndarray:
        return np.asarray(self.bitrates_kbps, dtype=np.float64) / 1000.0

    def chunk_size(self, chunk_index: int, bitrate_index: int) -> float:
        """Size in bytes of one chunk at one bitrate level."""
        return float(self.chunk_sizes_bytes[chunk_index, bitrate_index])


def _make_chunk_sizes(bitrates_kbps: Sequence[int], num_chunks: int, chunk_seconds: float,
                      rng: np.random.Generator, size_noise: float = 0.12) -> np.ndarray:
    """Chunk sizes = nominal bitrate * duration, with per-chunk encoder variation."""
    nominal = np.asarray(bitrates_kbps, dtype=np.float64) * 1000.0 / 8.0 * chunk_seconds
    variation = 1.0 + rng.normal(0.0, size_noise, size=(num_chunks, 1))
    variation = np.clip(variation, 0.6, 1.4)
    return nominal[None, :] * variation


def envivio_dash3(num_chunks: int = 48, seed: int = 7) -> VideoManifest:
    """The default training/testing video (Envivio-Dash3-like)."""
    rng = seeded_rng(seed)
    sizes = _make_chunk_sizes(ENVIVIO_BITRATES_KBPS, num_chunks, CHUNK_SECONDS, rng)
    return VideoManifest("envivio-dash3", ENVIVIO_BITRATES_KBPS, sizes)


def synth_video(num_chunks: int = 48, seed: int = 11) -> VideoManifest:
    """The unseen-setting video with a larger bitrate ladder (§A.4)."""
    rng = seeded_rng(seed)
    sizes = _make_chunk_sizes(SYNTH_BITRATES_KBPS, num_chunks, CHUNK_SECONDS, rng)
    return VideoManifest("synth-video", SYNTH_BITRATES_KBPS, sizes)


def get_video(name: str, num_chunks: int = 48, seed: Optional[int] = None) -> VideoManifest:
    """Look up a video manifest by the names used in Table 3."""
    key = name.lower()
    if key in ("envivio-dash3", "envivio_dash3", "envivio"):
        return envivio_dash3(num_chunks=num_chunks, seed=7 if seed is None else seed)
    if key in ("synth-video", "synthvideo", "synth_video"):
        return synth_video(num_chunks=num_chunks, seed=11 if seed is None else seed)
    raise KeyError(f"unknown video manifest {name!r}")
