"""ABR simulation settings (Table 3 of the paper).

Each setting names a video manifest and a bandwidth-trace family.  The default
setting trains and tests on Envivio-Dash3 over FCC-like broadband traces; the
unseen settings swap in the synthetic video and/or the more dynamic synthetic
traces to probe generalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .traces import BandwidthTrace, get_traces
from .video import VideoManifest, get_video


@dataclass(frozen=True)
class ABRSetting:
    """One row of Table 3."""

    name: str
    video: str
    trace_family: str


#: Table 3 of the paper.
ABR_SETTINGS: Dict[str, ABRSetting] = {
    "default_train": ABRSetting("default_train", "envivio-dash3", "fcc"),
    "default_test": ABRSetting("default_test", "envivio-dash3", "fcc"),
    "unseen_setting1": ABRSetting("unseen_setting1", "envivio-dash3", "synthtrace"),
    "unseen_setting2": ABRSetting("unseen_setting2", "synth-video", "fcc"),
    "unseen_setting3": ABRSetting("unseen_setting3", "synth-video", "synthtrace"),
}

#: §A.5 real-world networks.
REALWORLD_NETWORKS = ("broadband", "cellular")


def build_setting(setting: ABRSetting, num_traces: int = 12, num_chunks: int = 48,
                  trace_duration: float = 320.0, seed: int = 0
                  ) -> tuple[VideoManifest, List[BandwidthTrace]]:
    """Materialize (video, traces) for a setting.

    Different ``seed`` values give disjoint trace samples, which is how the
    default *test* environment differs from the default *train* environment
    while following the same distribution (as in the paper's §A.4).
    """
    video = get_video(setting.video, num_chunks=num_chunks)
    traces = get_traces(setting.trace_family, count=num_traces, duration=trace_duration,
                        seed=seed)
    return video, traces
