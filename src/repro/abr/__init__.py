"""``repro.abr`` — adaptive bitrate streaming substrate.

Video manifests, bandwidth traces, the chunk-level streaming simulator, the
QoE metric, the gym-like RL environment, the BBA/MPC/GENET baselines and the
real-world-style emulation layer.
"""

from .video import (
    CHUNK_SECONDS,
    ENVIVIO_BITRATES_KBPS,
    SYNTH_BITRATES_KBPS,
    VideoManifest,
    envivio_dash3,
    get_video,
    synth_video,
)
from .traces import (
    BandwidthTrace,
    cellular_like_traces,
    fcc_like_traces,
    get_traces,
    synth_traces,
)
from .qoe import (
    REBUFFER_PENALTY,
    SMOOTHNESS_PENALTY,
    ChunkRecord,
    SessionResult,
    chunk_reward,
    session_qoe,
)
from .simulator import SimulatorConfig, StreamingSession, simulate_session
from .env import ABREnvironment, ABRObservation, HISTORY_LENGTH, normalize_observation, observe, rollout
from .settings import ABR_SETTINGS, ABRSetting, REALWORLD_NETWORKS, build_setting
from .baselines import BBAPolicy, GenetPolicy, MPCPolicy, OracleMPCPolicy, train_genet
from .emulation import EmulationConfig, realworld_traces, run_realworld_test, sessions_over_traces

__all__ = [
    "CHUNK_SECONDS", "ENVIVIO_BITRATES_KBPS", "SYNTH_BITRATES_KBPS", "VideoManifest",
    "envivio_dash3", "get_video", "synth_video",
    "BandwidthTrace", "cellular_like_traces", "fcc_like_traces", "get_traces", "synth_traces",
    "REBUFFER_PENALTY", "SMOOTHNESS_PENALTY", "ChunkRecord", "SessionResult",
    "chunk_reward", "session_qoe",
    "SimulatorConfig", "StreamingSession", "simulate_session",
    "ABREnvironment", "ABRObservation", "HISTORY_LENGTH", "normalize_observation", "observe", "rollout",
    "ABR_SETTINGS", "ABRSetting", "REALWORLD_NETWORKS", "build_setting",
    "BBAPolicy", "GenetPolicy", "MPCPolicy", "OracleMPCPolicy", "train_genet",
    "EmulationConfig", "realworld_traces", "run_realworld_test", "sessions_over_traces",
]
