"""Client-server ABR emulation for the "real-world tests" (Figure 14, §A.5).

The paper evaluates the adapted LLM in a dash.js + Mahimahi testbed that
replays recorded broadband and cellular traces between an emulated client and
video server with an 80 ms RTT.  Offline, we reproduce the *role* of that
testbed with an emulation layer that differs from the training simulator in
the ways the real testbed does:

* traces come from a different family (broadband replays and cellular replays
  with outages) than the FCC-like training traces,
* an explicit request RTT of 80 ms per chunk,
* noisy effective throughput (HTTP/TCP dynamics, player overheads), modelled
  as multiplicative noise on the delivered bandwidth.

Policies therefore face an environment they were not trained in, which is the
point of the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..utils import seeded_rng, summarize
from .qoe import SessionResult
from .simulator import SimulatorConfig, simulate_session
from .traces import BandwidthTrace, cellular_like_traces, fcc_like_traces
from .video import VideoManifest, envivio_dash3


@dataclass
class EmulationConfig:
    """Parameters of the emulated client-server path (§A.5)."""

    rtt_seconds: float = 0.08
    throughput_noise: float = 0.15
    num_traces: int = 10
    trace_duration: float = 320.0
    seed: int = 123


def realworld_traces(network: str, config: EmulationConfig) -> List[BandwidthTrace]:
    """Trace replays for one real-world network type (broadband or cellular)."""
    key = network.lower()
    if key == "broadband":
        return fcc_like_traces(count=config.num_traces, duration=config.trace_duration,
                               seed=config.seed + 17)
    if key == "cellular":
        return cellular_like_traces(count=config.num_traces, duration=config.trace_duration,
                                    seed=config.seed + 31)
    raise KeyError(f"unknown real-world network {network!r}")


def run_realworld_test(policies: Dict[str, object], network: str,
                       video: VideoManifest = None,
                       config: EmulationConfig = None) -> Dict[str, Dict[str, float]]:
    """Stream the test video over emulated ``network`` with every policy.

    Returns, per policy name, summary statistics of the per-trace QoE scores.
    """
    config = config or EmulationConfig()
    video = video or envivio_dash3()
    traces = realworld_traces(network, config)
    sim_config = SimulatorConfig(rtt_seconds=config.rtt_seconds,
                                 throughput_noise=config.throughput_noise)
    results: Dict[str, Dict[str, float]] = {}
    for name, policy in policies.items():
        qoes = []
        for index, trace in enumerate(traces):
            session = simulate_session(policy, video, trace, config=sim_config,
                                       seed=config.seed + index)
            qoes.append(session.qoe())
        stats = summarize(qoes)
        stats["qoe"] = stats["mean"]
        results[name] = stats
    return results


def sessions_over_traces(policy, video: VideoManifest, traces: Sequence[BandwidthTrace],
                         sim_config: SimulatorConfig = None, seed: int = 0) -> List[SessionResult]:
    """Run ``policy`` over every trace and return the session logs."""
    sim_config = sim_config or SimulatorConfig()
    sessions = []
    for index, trace in enumerate(traces):
        sessions.append(simulate_session(policy, video, trace, config=sim_config,
                                         seed=seed + index))
    return sessions
