"""Chunk-level ABR streaming simulator (Pensieve/GENET style).

The simulator plays one video over one bandwidth trace.  For each chunk the
policy chooses a bitrate index; the simulator then

1. downloads the chunk by integrating the piecewise-constant trace bandwidth
   (plus a fixed round-trip time per request),
2. drains the playback buffer during the download and accounts any deficit as
   rebuffering,
3. adds the chunk's playback duration to the buffer (capped at
   ``max_buffer_seconds``, in which case the client idles before the next
   request, as real DASH players do).

This is the same model used by the paper's ABR codebase and by Pensieve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .qoe import ChunkRecord, SessionResult
from .traces import BandwidthTrace
from .video import VideoManifest

#: Bytes per megabit.
BYTES_PER_MBIT = 1e6 / 8.0


@dataclass
class SimulatorConfig:
    """Tunable constants of the streaming client model."""

    rtt_seconds: float = 0.08
    max_buffer_seconds: float = 60.0
    initial_buffer_seconds: float = 0.0
    #: multiplicative noise applied to effective throughput per chunk (0 = none)
    throughput_noise: float = 0.0


class StreamingSession:
    """Stateful streaming session that downloads chunks one at a time."""

    def __init__(self, video: VideoManifest, trace: BandwidthTrace,
                 config: Optional[SimulatorConfig] = None,
                 start_time: float = 0.0, seed: int = 0) -> None:
        self.video = video
        self.trace = trace
        self.config = config or SimulatorConfig()
        self._rng = np.random.default_rng(seed)
        self.clock = float(start_time)
        self.buffer_seconds = self.config.initial_buffer_seconds
        self.next_chunk = 0
        self.previous_bitrate_index: Optional[int] = None
        self.result = SessionResult()

    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        return self.next_chunk >= self.video.num_chunks

    @property
    def remaining_chunks(self) -> int:
        return self.video.num_chunks - self.next_chunk

    # ------------------------------------------------------------------ #
    def _download_bytes(self, size_bytes: float) -> float:
        """Advance the clock while downloading ``size_bytes``; return seconds taken."""
        remaining = size_bytes
        elapsed = self.config.rtt_seconds
        t = self.clock + elapsed
        # Integrate over the piecewise-constant trace in small slices so that
        # bandwidth changes mid-download are honoured.
        slice_seconds = 0.5
        while remaining > 0:
            bandwidth = self.trace.bandwidth_at(t)
            if self.config.throughput_noise > 0:
                bandwidth *= max(0.05, 1.0 + self._rng.normal(0, self.config.throughput_noise))
            bytes_this_slice = bandwidth * BYTES_PER_MBIT * slice_seconds
            if bytes_this_slice >= remaining:
                fraction = remaining / bytes_this_slice
                elapsed += slice_seconds * fraction
                t += slice_seconds * fraction
                remaining = 0.0
            else:
                remaining -= bytes_this_slice
                elapsed += slice_seconds
                t += slice_seconds
        return elapsed

    def download_chunk(self, bitrate_index: int) -> ChunkRecord:
        """Download the next chunk at ``bitrate_index`` and update client state."""
        if self.finished:
            raise RuntimeError("session already finished")
        if not 0 <= bitrate_index < self.video.num_bitrates:
            raise ValueError(
                f"bitrate index {bitrate_index} outside ladder of {self.video.num_bitrates}")
        chunk_index = self.next_chunk
        size_bytes = self.video.chunk_size(chunk_index, bitrate_index)
        download_seconds = self._download_bytes(size_bytes)

        # Buffer dynamics: drain during download, rebuffer on deficit.
        rebuffer = max(0.0, download_seconds - self.buffer_seconds)
        self.buffer_seconds = max(0.0, self.buffer_seconds - download_seconds)
        self.buffer_seconds += self.video.chunk_seconds

        # If the buffer exceeds the cap the client waits before the next request.
        idle = 0.0
        if self.buffer_seconds > self.config.max_buffer_seconds:
            idle = self.buffer_seconds - self.config.max_buffer_seconds
            self.buffer_seconds = self.config.max_buffer_seconds

        self.clock += download_seconds + idle
        throughput_mbps = (size_bytes / BYTES_PER_MBIT) / max(download_seconds, 1e-9)

        record = ChunkRecord(
            chunk_index=chunk_index,
            bitrate_index=bitrate_index,
            bitrate_mbps=float(self.video.bitrates_mbps[bitrate_index]),
            chunk_size_bytes=size_bytes,
            download_seconds=download_seconds,
            rebuffer_seconds=rebuffer,
            buffer_seconds=self.buffer_seconds,
            throughput_mbps=throughput_mbps,
        )
        self.result.append(record)
        self.previous_bitrate_index = bitrate_index
        self.next_chunk += 1
        return record

    # ------------------------------------------------------------------ #
    def run_policy(self, policy) -> SessionResult:
        """Stream the whole video with ``policy`` (see :mod:`repro.abr.baselines`)."""
        if hasattr(policy, "reset"):
            policy.reset()
        while not self.finished:
            bitrate_index = policy.select_bitrate(self)
            self.download_chunk(bitrate_index)
        return self.result


def simulate_session(policy, video: VideoManifest, trace: BandwidthTrace,
                     config: Optional[SimulatorConfig] = None, seed: int = 0) -> SessionResult:
    """Convenience wrapper: stream ``video`` over ``trace`` with ``policy``."""
    session = StreamingSession(video, trace, config=config, seed=seed)
    return session.run_policy(policy)
