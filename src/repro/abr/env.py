"""Observation extraction and episode interface for learning-based ABR.

The RL formulation follows Pensieve/GENET: for every chunk decision the agent
observes the recent throughput / delay history, the playback buffer, the last
selected bitrate, the fraction of chunks remaining, and the sizes of the next
chunk at every bitrate; it outputs a bitrate index and receives the per-chunk
QoE term as reward.

:class:`ABREnvironment` wraps :class:`~repro.abr.simulator.StreamingSession`
with a gym-like ``reset()``/``step()`` API used both by the GENET baseline and
by the DD-LRNA experience collector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .qoe import chunk_reward
from .simulator import SimulatorConfig, StreamingSession
from .traces import BandwidthTrace
from .video import VideoManifest

#: Number of past chunks summarized in the observation.
HISTORY_LENGTH = 8


@dataclass
class ABRObservation:
    """Structured (multimodal) observation of one ABR decision point.

    The pieces map onto the modalities of Table 1: time-series throughput and
    delay history, a sequence of next-chunk sizes, and scalars for buffer,
    last bitrate and remaining chunks.
    """

    throughput_history_mbps: np.ndarray  # (HISTORY_LENGTH,)
    delay_history_seconds: np.ndarray    # (HISTORY_LENGTH,)
    next_chunk_sizes_mb: np.ndarray      # (num_bitrates,)
    buffer_seconds: float
    last_bitrate_mbps: float
    remaining_fraction: float

    def flatten(self) -> np.ndarray:
        """Flat vector used by MLP policies (GENET) and the experience pool."""
        return np.concatenate([
            self.throughput_history_mbps,
            self.delay_history_seconds,
            self.next_chunk_sizes_mb,
            [self.buffer_seconds, self.last_bitrate_mbps, self.remaining_fraction],
        ]).astype(np.float64)

    @staticmethod
    def flat_size(num_bitrates: int) -> int:
        return 2 * HISTORY_LENGTH + num_bitrates + 3


def normalize_observation(flat: np.ndarray) -> np.ndarray:
    """Scale a flattened :class:`ABRObservation` to roughly unit magnitude.

    Layout (see :meth:`ABRObservation.flatten`): throughput history, delay
    history, next chunk sizes, then the three scalars.  Neural policies
    (GENET, the NetLLM encoder's scalar inputs) train far more reliably on
    normalized features.
    """
    flat = np.asarray(flat, dtype=np.float64).copy()
    flat[:HISTORY_LENGTH] /= 5.0                       # throughput (Mbps)
    flat[HISTORY_LENGTH:2 * HISTORY_LENGTH] /= 10.0    # delays (s)
    flat[2 * HISTORY_LENGTH:-3] /= 2.0                 # chunk sizes (MB)
    flat[-3] /= 20.0                                   # buffer (s)
    flat[-2] /= 5.0                                    # last bitrate (Mbps)
    return flat


def observe(session: StreamingSession) -> ABRObservation:
    """Build the observation for the next chunk decision of ``session``."""
    records = session.result.records
    throughput = np.zeros(HISTORY_LENGTH)
    delays = np.zeros(HISTORY_LENGTH)
    recent = records[-HISTORY_LENGTH:]
    for offset, record in enumerate(reversed(recent)):
        throughput[HISTORY_LENGTH - 1 - offset] = record.throughput_mbps
        delays[HISTORY_LENGTH - 1 - offset] = record.download_seconds
    if session.finished:
        next_sizes = np.zeros(session.video.num_bitrates)
    else:
        next_sizes = session.video.chunk_sizes_bytes[session.next_chunk] / 1e6
    last_bitrate = (session.video.bitrates_mbps[session.previous_bitrate_index]
                    if session.previous_bitrate_index is not None else 0.0)
    return ABRObservation(
        throughput_history_mbps=throughput,
        delay_history_seconds=delays,
        next_chunk_sizes_mb=np.asarray(next_sizes, dtype=np.float64),
        buffer_seconds=session.buffer_seconds,
        last_bitrate_mbps=float(last_bitrate),
        remaining_fraction=session.remaining_chunks / session.video.num_chunks,
    )


class ABREnvironment:
    """Gym-like episodic environment over a set of bandwidth traces."""

    def __init__(self, video: VideoManifest, traces: Sequence[BandwidthTrace],
                 config: Optional[SimulatorConfig] = None, seed: int = 0) -> None:
        if not traces:
            raise ValueError("at least one trace is required")
        self.video = video
        self.traces = list(traces)
        self.config = config or SimulatorConfig()
        self._rng = np.random.default_rng(seed)
        self._session: Optional[StreamingSession] = None
        self._trace_index = 0

    @property
    def num_actions(self) -> int:
        return self.video.num_bitrates

    @property
    def observation_size(self) -> int:
        return ABRObservation.flat_size(self.video.num_bitrates)

    @property
    def session(self) -> StreamingSession:
        if self._session is None:
            raise RuntimeError("call reset() before accessing the session")
        return self._session

    def reset(self, trace_index: Optional[int] = None) -> ABRObservation:
        """Start a new episode; returns the first observation."""
        if trace_index is None:
            trace_index = int(self._rng.integers(0, len(self.traces)))
        self._trace_index = trace_index % len(self.traces)
        self._session = StreamingSession(self.video, self.traces[self._trace_index],
                                         config=self.config,
                                         seed=int(self._rng.integers(0, 2**31 - 1)))
        return observe(self._session)

    def step(self, bitrate_index: int) -> Tuple[ABRObservation, float, bool, Dict]:
        """Download one chunk; returns (observation, reward, done, info)."""
        session = self.session
        previous_bitrate = (session.video.bitrates_mbps[session.previous_bitrate_index]
                            if session.previous_bitrate_index is not None else
                            session.video.bitrates_mbps[bitrate_index])
        record = session.download_chunk(bitrate_index)
        reward = chunk_reward(record.bitrate_mbps, record.rebuffer_seconds, previous_bitrate)
        done = session.finished
        info = {"record": record, "trace_index": self._trace_index}
        return observe(session), reward, done, info


def rollout(env: ABREnvironment, policy, trace_index: Optional[int] = None) -> Dict:
    """Run one episode with ``policy`` (``act(observation) -> bitrate index``)."""
    observation = env.reset(trace_index=trace_index)
    total_reward = 0.0
    steps: List[Dict] = []
    done = False
    while not done:
        action = int(policy.act(observation))
        next_observation, reward, done, info = env.step(action)
        steps.append({
            "observation": observation.flatten(),
            "action": action,
            "reward": reward,
        })
        total_reward += reward
        observation = next_observation
    return {
        "steps": steps,
        "total_reward": total_reward,
        "session": env.session.result,
        "trace_index": env._trace_index,
    }
