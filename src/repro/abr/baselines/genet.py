"""GENET — the learning-based ABR baseline.

GENET (Xia et al., SIGCOMM 2022) is a Pensieve-style neural ABR policy whose
training is made to converge reliably through automatic curriculum
generation.  Training a policy-gradient agent from scratch to
state-of-the-art quality is not feasible within this repository's CPU/time
budget, so the baseline reproduces GENET's *outcome* (a well-converged neural
ABR policy) through a two-phase recipe, documented in DESIGN.md:

1. **Imitation warm start** — the actor is behaviour-cloned from MPC
   demonstrations collected on the training traces (playing the role of the
   easy-to-learn starting curriculum).
2. **Curriculum policy-gradient refinement** (optional) — REINFORCE with a
   learned value baseline over traces ordered from easy to hard, which is
   GENET's core idea.  It is disabled by default because at this scale the
   warm start already converges and additional on-policy updates mostly add
   variance; benchmarks that want the full pipeline can enable it.

The resulting policy is an MLP actor(+critic) over the flattened ABR
observation with the same interfaces as the rule-based baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ...nn import Adam, MLP, Tensor, clip_grad_norm, cross_entropy
from ...utils import seeded_rng
from ..env import ABREnvironment, ABRObservation, normalize_observation, observe
from ..simulator import StreamingSession
from .mpc import MPCPolicy


class GenetPolicy:
    """MLP actor-critic bitrate policy."""

    name = "GENET"

    def __init__(self, observation_size: int, num_actions: int, hidden: int = 64,
                 seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.observation_size = observation_size
        self.num_actions = num_actions
        self.actor = MLP(observation_size, [hidden, hidden], num_actions, rng=rng)
        self.critic = MLP(observation_size, [hidden], 1, rng=rng)
        self._rng = seeded_rng(seed)

    # -- inference -------------------------------------------------------- #
    def action_probabilities(self, flat_observation: np.ndarray) -> np.ndarray:
        flat = normalize_observation(flat_observation)
        logits = self.actor(Tensor(flat[None, :]))
        return logits.softmax(axis=-1).data[0]

    def act(self, observation: ABRObservation, greedy: bool = True) -> int:
        probs = self.action_probabilities(observation.flatten())
        if greedy:
            return int(np.argmax(probs))
        return int(self._rng.choice(self.num_actions, p=probs))

    def select_bitrate(self, session: StreamingSession) -> int:
        return self.act(observe(session), greedy=True)

    def reset(self) -> None:
        """The policy is stateless across chunks."""


@dataclass
class GenetTrainResult:
    """Diagnostics of the GENET training pipeline."""

    imitation_losses: List[float] = field(default_factory=list)
    episode_returns: List[float] = field(default_factory=list)

    @property
    def final_imitation_loss(self) -> float:
        return self.imitation_losses[-1] if self.imitation_losses else float("nan")

    @property
    def final_return(self) -> float:
        return self.episode_returns[-1] if self.episode_returns else float("nan")


def _trace_difficulty(trace) -> float:
    """Curriculum key: more variable and scarcer bandwidth is harder."""
    bandwidth = trace.bandwidth_mbps
    return float(bandwidth.std() / max(bandwidth.mean(), 1e-6) + 1.0 / max(bandwidth.mean(), 1e-6))


def _collect_demonstrations(env: ABREnvironment, teacher, max_traces: Optional[int] = None
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Roll the teacher policy over the training traces, recording (obs, action)."""
    observations: List[np.ndarray] = []
    actions: List[int] = []
    traces = env.traces if max_traces is None else env.traces[:max_traces]
    for index, trace in enumerate(traces):
        session = StreamingSession(env.video, trace, config=env.config, seed=index)
        while not session.finished:
            obs = observe(session)
            action = teacher.select_bitrate(session)
            observations.append(normalize_observation(obs.flatten()))
            actions.append(action)
            session.download_chunk(action)
    return np.stack(observations), np.asarray(actions, dtype=np.int64)


def train_genet(env: ABREnvironment, imitation_epochs: int = 30, rl_episodes: int = 0,
                lr: float = 3e-3, rl_lr: float = 3e-4, gamma: float = 0.95,
                entropy_weight: float = 0.005, hidden: int = 64, batch_size: int = 64,
                teacher: Optional[object] = None, seed: int = 0
                ) -> tuple[GenetPolicy, GenetTrainResult]:
    """Train a GENET policy (imitation warm start + optional curriculum RL)."""
    if imitation_epochs < 1 and rl_episodes < 1:
        raise ValueError("at least one training phase must be enabled")
    rng = seeded_rng(seed)
    policy = GenetPolicy(env.observation_size, env.num_actions, hidden=hidden, seed=seed)
    result = GenetTrainResult()

    # ---------------- Phase 1: imitation warm start ---------------------- #
    if imitation_epochs > 0:
        teacher = teacher or MPCPolicy(horizon=5)
        demos_x, demos_y = _collect_demonstrations(env, teacher)
        optimizer = Adam(policy.actor.parameters(), lr=lr)
        indices = np.arange(len(demos_x))
        for _ in range(imitation_epochs):
            rng.shuffle(indices)
            for start in range(0, len(indices), batch_size):
                batch = indices[start:start + batch_size]
                logits = policy.actor(Tensor(demos_x[batch]))
                loss = cross_entropy(logits, demos_y[batch])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                result.imitation_losses.append(float(loss.data))

    # ---------------- Phase 2: curriculum policy-gradient ---------------- #
    if rl_episodes > 0:
        optimizer = Adam(policy.actor.parameters() + policy.critic.parameters(), lr=rl_lr)
        order = np.argsort([_trace_difficulty(t) for t in env.traces])
        for episode in range(rl_episodes):
            unlocked = max(1, int(np.ceil((episode + 1) / rl_episodes * len(order))))
            trace_index = int(order[int(rng.integers(0, unlocked))])
            observation = env.reset(trace_index=trace_index)
            obs_list: List[np.ndarray] = []
            act_list: List[int] = []
            rew_list: List[float] = []
            done = False
            while not done:
                flat = normalize_observation(observation.flatten())
                probs = policy.actor(Tensor(flat[None, :])).softmax(axis=-1).data[0]
                action = int(rng.choice(policy.num_actions, p=probs))
                observation, reward, done, _ = env.step(action)
                obs_list.append(flat)
                act_list.append(action)
                rew_list.append(reward * 0.1)  # reward scaling for stability
            returns = np.zeros(len(rew_list))
            running = 0.0
            for i in reversed(range(len(rew_list))):
                running = rew_list[i] + gamma * running
                returns[i] = running
            result.episode_returns.append(float(np.sum(rew_list)) * 10.0)

            obs_batch = Tensor(np.stack(obs_list))
            actions_arr = np.asarray(act_list, dtype=np.int64)
            values = policy.critic(obs_batch)
            advantages = returns - values.data[:, 0]
            logits = policy.actor(obs_batch)
            log_probs = logits.log_softmax(axis=-1)
            picked = log_probs[np.arange(len(actions_arr)), actions_arr]
            policy_loss = -(picked * Tensor(advantages)).mean()
            probs_tensor = logits.softmax(axis=-1)
            entropy = -(probs_tensor * log_probs).sum(axis=-1).mean()
            value_error = values[:, 0] - Tensor(returns)
            value_loss = (value_error * value_error).mean()
            loss = policy_loss + 0.5 * value_loss - entropy_weight * entropy
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(policy.actor.parameters() + policy.critic.parameters(), 1.0)
            optimizer.step()

    return policy, result
