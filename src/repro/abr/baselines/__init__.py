"""ABR baseline policies: BBA, MPC, GENET and helpers."""

from .bba import BBAPolicy
from .mpc import MPCPolicy, OracleMPCPolicy
from .genet import GenetPolicy, train_genet

__all__ = ["BBAPolicy", "MPCPolicy", "OracleMPCPolicy", "GenetPolicy", "train_genet"]
