"""Model Predictive Control ABR (MPC) and its omniscient oracle variant.

MPC (Yin et al., SIGCOMM 2015) predicts near-future throughput from the
harmonic mean of recent measurements (the "RobustMPC" estimator) and then
exhaustively searches bitrate sequences over a short look-ahead horizon,
simulating the buffer evolution and picking the first bitrate of the sequence
that maximizes the QoE objective.

:class:`OracleMPCPolicy` replaces the throughput predictor with the true
future bandwidth from the trace.  It is *not* one of the paper's baselines;
it is used by the DD-LRNA experience collector as one of the "existing
algorithms" whose behaviour the LLM learns from (high-return trajectories),
playing the role that well-trained teacher policies play in the paper's
offline dataset.
"""

from __future__ import annotations

from itertools import product
from typing import Optional

import numpy as np

from ..qoe import REBUFFER_PENALTY, SMOOTHNESS_PENALTY
from ..simulator import BYTES_PER_MBIT, StreamingSession


class MPCPolicy:
    """RobustMPC: harmonic-mean throughput prediction + exhaustive look-ahead."""

    name = "MPC"

    def __init__(self, horizon: int = 5, history: int = 5,
                 rebuffer_penalty: float = REBUFFER_PENALTY,
                 smoothness_penalty: float = SMOOTHNESS_PENALTY) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.horizon = horizon
        self.history = history
        self.rebuffer_penalty = rebuffer_penalty
        self.smoothness_penalty = smoothness_penalty

    def reset(self) -> None:
        """MPC keeps no cross-session state."""

    # ------------------------------------------------------------------ #
    def _predict_throughput(self, session: StreamingSession) -> float:
        records = session.result.records[-self.history:]
        if not records:
            return 1.0
        throughputs = np.asarray([r.throughput_mbps for r in records])
        harmonic = len(throughputs) / np.sum(1.0 / np.maximum(throughputs, 1e-6))
        # RobustMPC discounts the estimate by the recent maximum error.
        return float(harmonic) * 0.9

    def _future_throughput(self, session: StreamingSession, step: int) -> float:
        """Predicted throughput for the ``step``-th future chunk (constant here)."""
        return self._predict_throughput(session)

    # ------------------------------------------------------------------ #
    def select_bitrate(self, session: StreamingSession) -> int:
        """Exhaustive look-ahead search, vectorized across candidate plans."""
        video = session.video
        start_chunk = session.next_chunk
        horizon = min(self.horizon, video.num_chunks - start_chunk)
        last_bitrate = (video.bitrates_mbps[session.previous_bitrate_index]
                        if session.previous_bitrate_index is not None else 0.0)

        plans = np.asarray(list(product(range(video.num_bitrates), repeat=horizon)),
                           dtype=np.int64)
        num_plans = plans.shape[0]
        buffers = np.full(num_plans, session.buffer_seconds, dtype=np.float64)
        previous = np.full(num_plans, last_bitrate, dtype=np.float64)
        scores = np.zeros(num_plans, dtype=np.float64)
        bitrates_mbps = video.bitrates_mbps

        for step in range(horizon):
            chunk_index = start_chunk + step
            choice = plans[:, step]
            sizes_mb = video.chunk_sizes_bytes[chunk_index, choice] / BYTES_PER_MBIT
            throughput = max(self._future_throughput(session, step), 1e-6)
            downloads = sizes_mb / throughput + session.config.rtt_seconds
            rebuffers = np.maximum(0.0, downloads - buffers)
            buffers = np.maximum(0.0, buffers - downloads) + video.chunk_seconds
            bitrates = bitrates_mbps[choice]
            scores += (bitrates - self.rebuffer_penalty * rebuffers
                       - self.smoothness_penalty * np.abs(bitrates - previous))
            previous = bitrates
        return int(plans[int(np.argmax(scores)), 0])


class OracleMPCPolicy(MPCPolicy):
    """MPC with perfect knowledge of future bandwidth (experience-collection teacher)."""

    name = "OracleMPC"

    def __init__(self, horizon: int = 5, **kwargs) -> None:
        super().__init__(horizon=horizon, **kwargs)
        self._session: Optional[StreamingSession] = None

    def select_bitrate(self, session: StreamingSession) -> int:
        self._session = session
        return super().select_bitrate(session)

    def _future_throughput(self, session: StreamingSession, step: int) -> float:
        # Sample the true trace bandwidth around the time the chunk would start.
        lookahead = session.clock + step * session.video.chunk_seconds
        return session.trace.bandwidth_at(lookahead)
