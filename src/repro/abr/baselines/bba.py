"""Buffer-Based Adaptation (BBA) — rule-based ABR baseline.

BBA (Huang et al., SIGCOMM 2014) maps the current playback-buffer occupancy
linearly onto the bitrate ladder between a low reservoir and an upper
cushion: below the reservoir it always picks the lowest bitrate, above the
cushion the highest, and in between it interpolates.
"""

from __future__ import annotations

import numpy as np

from ..simulator import StreamingSession


class BBAPolicy:
    """Buffer-based bitrate selection."""

    name = "BBA"

    def __init__(self, reservoir_seconds: float = 5.0, cushion_seconds: float = 40.0) -> None:
        if cushion_seconds <= reservoir_seconds:
            raise ValueError("cushion must exceed reservoir")
        self.reservoir = reservoir_seconds
        self.cushion = cushion_seconds

    def reset(self) -> None:
        """BBA is stateless between sessions."""

    def select_bitrate(self, session: StreamingSession) -> int:
        buffer_seconds = session.buffer_seconds
        num_bitrates = session.video.num_bitrates
        if buffer_seconds <= self.reservoir:
            return 0
        if buffer_seconds >= self.cushion:
            return num_bitrates - 1
        fraction = (buffer_seconds - self.reservoir) / (self.cushion - self.reservoir)
        return int(round(fraction * (num_bitrates - 1)))

    # -- observation-based interface (for experience collection) -------- #
    def act(self, observation) -> int:
        buffer_seconds = observation.buffer_seconds
        num_bitrates = observation.next_chunk_sizes_mb.shape[0]
        if buffer_seconds <= self.reservoir:
            return 0
        if buffer_seconds >= self.cushion:
            return num_bitrates - 1
        fraction = (buffer_seconds - self.reservoir) / (self.cushion - self.reservoir)
        return int(round(fraction * (num_bitrates - 1)))
