"""Quality-of-Experience metric for ABR (§A.6).

QoE is the per-chunk average of ``bitrate - lambda * rebuffer - gamma *
|bitrate change|`` with the Pensieve weights ``lambda = 4.3`` and
``gamma = 1`` (bitrate in Mbps, rebuffering in seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

#: Rebuffering penalty weight (seconds -> QoE units), as in Pensieve/GENET.
REBUFFER_PENALTY = 4.3
#: Bitrate-change (smoothness) penalty weight.
SMOOTHNESS_PENALTY = 1.0


@dataclass
class ChunkRecord:
    """Outcome of downloading one chunk during a streaming session."""

    chunk_index: int
    bitrate_index: int
    bitrate_mbps: float
    chunk_size_bytes: float
    download_seconds: float
    rebuffer_seconds: float
    buffer_seconds: float
    throughput_mbps: float


@dataclass
class SessionResult:
    """Full log of one streaming session plus aggregate QoE factors."""

    records: List[ChunkRecord] = field(default_factory=list)

    def append(self, record: ChunkRecord) -> None:
        self.records.append(record)

    @property
    def num_chunks(self) -> int:
        return len(self.records)

    @property
    def bitrates_mbps(self) -> np.ndarray:
        return np.asarray([r.bitrate_mbps for r in self.records], dtype=np.float64)

    @property
    def rebuffer_seconds(self) -> np.ndarray:
        return np.asarray([r.rebuffer_seconds for r in self.records], dtype=np.float64)

    @property
    def total_rebuffer_seconds(self) -> float:
        return float(self.rebuffer_seconds.sum())

    @property
    def mean_bitrate_mbps(self) -> float:
        return float(self.bitrates_mbps.mean()) if self.records else 0.0

    @property
    def bitrate_changes_mbps(self) -> np.ndarray:
        bitrates = self.bitrates_mbps
        if bitrates.size < 2:
            return np.zeros(0)
        return np.abs(np.diff(bitrates))

    @property
    def mean_bitrate_change_mbps(self) -> float:
        changes = self.bitrate_changes_mbps
        return float(changes.mean()) if changes.size else 0.0

    def qoe(self, rebuffer_penalty: float = REBUFFER_PENALTY,
            smoothness_penalty: float = SMOOTHNESS_PENALTY) -> float:
        """Average per-chunk QoE of the session."""
        return session_qoe(self, rebuffer_penalty, smoothness_penalty)

    def per_chunk_qoe(self, rebuffer_penalty: float = REBUFFER_PENALTY,
                      smoothness_penalty: float = SMOOTHNESS_PENALTY) -> np.ndarray:
        """Per-chunk QoE terms (used as RL rewards)."""
        bitrates = self.bitrates_mbps
        rebuffers = self.rebuffer_seconds
        changes = np.concatenate([[0.0], self.bitrate_changes_mbps]) if bitrates.size else np.zeros(0)
        return bitrates - rebuffer_penalty * rebuffers - smoothness_penalty * changes

    def breakdown(self) -> Dict[str, float]:
        """QoE factor breakdown used by Figure 12."""
        return {
            "qoe": self.qoe(),
            "bitrate": self.mean_bitrate_mbps,
            "rebuffering": float(self.rebuffer_seconds.mean()) if self.records else 0.0,
            "bitrate_variation": self.mean_bitrate_change_mbps,
        }


def session_qoe(session: SessionResult, rebuffer_penalty: float = REBUFFER_PENALTY,
                smoothness_penalty: float = SMOOTHNESS_PENALTY) -> float:
    """QoE of a session as defined in §A.6 (per-chunk average)."""
    if not session.records:
        return 0.0
    total = (session.bitrates_mbps.sum()
             - rebuffer_penalty * session.rebuffer_seconds.sum()
             - smoothness_penalty * session.bitrate_changes_mbps.sum())
    return float(total / session.num_chunks)


def chunk_reward(bitrate_mbps: float, rebuffer_seconds: float, previous_bitrate_mbps: float,
                 rebuffer_penalty: float = REBUFFER_PENALTY,
                 smoothness_penalty: float = SMOOTHNESS_PENALTY) -> float:
    """Per-chunk RL reward consistent with the session QoE definition."""
    change = abs(bitrate_mbps - previous_bitrate_mbps)
    return bitrate_mbps - rebuffer_penalty * rebuffer_seconds - smoothness_penalty * change
