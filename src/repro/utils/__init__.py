"""Shared utilities: seeding, running statistics, CDF helpers, timers."""

from .rng import seeded_rng, spawn_rngs
from .stats import RunningStats, empirical_cdf, normalize_min_max, percentile, summarize
from .timing import Timer

__all__ = [
    "seeded_rng", "spawn_rngs",
    "RunningStats", "empirical_cdf", "normalize_min_max", "percentile", "summarize",
    "Timer",
]
