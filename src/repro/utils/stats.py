"""Statistics helpers used by the evaluation harness (averages, CDFs)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


@dataclass
class RunningStats:
    """Streaming mean / variance / extrema (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.update(value)

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum if self.count else float("nan"),
            "max": self.maximum if self.count else float("nan"),
        }


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cdf)`` for plotting-style CDF curves."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        return arr, arr
    cdf = np.arange(1, arr.size + 1) / arr.size
    return arr, cdf


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (q in [0, 100]) of ``values``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot compute percentile of empty sequence")
    return float(np.percentile(arr, q))


def normalize_min_max(values: Dict[str, float]) -> Dict[str, float]:
    """Min-max normalize a mapping of label -> value (as in Figure 12)."""
    if not values:
        return {}
    arr = np.asarray(list(values.values()), dtype=np.float64)
    low, high = float(arr.min()), float(arr.max())
    span = high - low
    if span == 0:
        return {key: 0.5 for key in values}
    return {key: (value - low) / span for key, value in values.items()}


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / std / p50 / p90 / min / max summary of a sequence."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {"count": 0}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
