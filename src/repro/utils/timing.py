"""Wall-clock timing helpers for adaptation-cost experiments."""

from __future__ import annotations

import time
from typing import Dict, Optional


class Timer:
    """Accumulating timer with named segments.

    Used by the DD-LRNA cost profiler to split training time into
    "experience collection" and "parameter update" segments (Figure 3).
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._starts: Dict[str, float] = {}

    def start(self, name: str) -> None:
        self._starts[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        if name not in self._starts:
            raise KeyError(f"timer segment {name!r} was never started")
        elapsed = time.perf_counter() - self._starts.pop(name)
        self._totals[name] = self._totals.get(name, 0.0) + elapsed
        return elapsed

    def __enter__(self) -> "Timer":
        self.start("__default__")
        return self

    def __exit__(self, *exc) -> None:
        self.stop("__default__")

    @property
    def elapsed(self) -> float:
        return self._totals.get("__default__", 0.0)

    def total(self, name: Optional[str] = None) -> float:
        if name is None:
            return sum(self._totals.values())
        return self._totals.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._totals)
