"""Deterministic random-number generation helpers.

Every stochastic component in the repository (dataset generators, simulators,
weight initialization, training loops) accepts either a seed or a
``numpy.random.Generator``.  These helpers centralize how seeds become
generators so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def seeded_rng(seed: SeedLike = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged, so functions can
    accept either style transparently.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    base = seeded_rng(seed)
    seeds = base.integers(0, 2**31 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
