"""Recurrent layers (LSTM) used by the TRACK viewport-prediction baseline."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init as weight_init
from .layers import Module, Parameter
from .tensor import Tensor, concatenate, stack


class LSTMCell(Module):
    """Single LSTM cell with the standard gate parameterization."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        gate_size = 4 * hidden_size
        self.w_ih = Parameter(weight_init.xavier_uniform((input_size, gate_size), rng), name="w_ih")
        self.w_hh = Parameter(weight_init.xavier_uniform((hidden_size, gate_size), rng), name="w_hh")
        self.bias = Parameter(np.zeros(gate_size), name="bias")

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        """Advance one step; ``x`` is ``(batch, input_size)``."""
        h_prev, c_prev = state
        gates = x @ self.w_ih + h_prev @ self.w_hh + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs:1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs:2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs:3 * hs].tanh()
        o_gate = gates[:, 3 * hs:4 * hs].sigmoid()
        c_next = f_gate * c_prev + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class LSTM(Module):
    """Unidirectional LSTM over ``(batch, seq, input_size)`` inputs."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor,
                state: Optional[Tuple[Tensor, Tensor]] = None) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        """Return the full output sequence and the final (h, c) state."""
        batch, seq, _ = x.shape
        if state is None:
            state = self.cell.initial_state(batch)
        outputs = []
        h, c = state
        for t in range(seq):
            h, c = self.cell(x[:, t, :], (h, c))
            outputs.append(h)
        return stack(outputs, axis=1), (h, c)
