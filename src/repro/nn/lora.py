"""Low-rank adaptation (LoRA) layers for frozen backbones.

DD-LRNA freezes every pre-trained weight matrix ``W0`` and learns a low-rank
update ``W = W0 + A B`` where ``A`` has shape ``(d, r)`` and ``B`` has shape
``(r, k)`` with ``r << min(d, k)``.  Only ``A`` and ``B`` receive gradients.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init as weight_init
from .layers import Module, Parameter
from .tensor import Tensor, is_grad_enabled


class LoRALinear(Module):
    """Linear layer with a frozen base weight and trainable low-rank update.

    The effective transformation is ``y = x (W0 + scale * A B) + b`` where
    ``scale = alpha / rank``.  ``A`` is initialized with small random values
    and ``B`` with zeros, so at initialization the layer behaves exactly like
    the frozen base layer (standard LoRA initialization).
    """

    def __init__(self, in_features: int, out_features: int, rank: int = 8,
                 alpha: float = 1.0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if rank < 1:
            raise ValueError("LoRA rank must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.rank = rank
        self.alpha = alpha
        self.scale = alpha / rank

        self.weight = Parameter(weight_init.xavier_uniform((in_features, out_features), rng),
                                name="weight")
        self.weight.requires_grad = False  # frozen base weight
        self.use_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_features), name="bias")
            self.bias.requires_grad = False

        self.lora_a = Parameter(weight_init.normal((in_features, rank), rng, std=0.02),
                                name="lora_a")
        self.lora_b = Parameter(np.zeros((rank, out_features)), name="lora_b")
        self._lora_enabled = True

    # ------------------------------------------------------------------ #
    def enable_lora(self, enabled: bool = True) -> None:
        """Toggle the low-rank update (used by the 'no domain knowledge' ablation)."""
        self._lora_enabled = enabled

    @property
    def lora_enabled(self) -> bool:
        return self._lora_enabled

    def lora_parameters(self) -> list[Parameter]:
        return [self.lora_a, self.lora_b]

    def num_lora_parameters(self) -> int:
        return int(self.lora_a.size + self.lora_b.size)

    def num_base_parameters(self) -> int:
        total = int(self.weight.size)
        if self.use_bias:
            total += int(self.bias.size)
        return total

    def merged_weight(self) -> np.ndarray:
        """Return the dense ``W0 + scale * A B`` matrix (for inspection/tests)."""
        update = self.lora_a.data @ self.lora_b.data * self.scale
        return self.weight.data + (update if self._lora_enabled else 0.0)

    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            # Inference fast path: same operations in the same order as the
            # graph path (bitwise-identical results), but in raw numpy so no
            # intermediate Tensor objects are allocated per projection.
            out = x.data @ self.weight.data
            if self._lora_enabled:
                out = out + ((x.data @ self.lora_a.data) @ self.lora_b.data) * self.scale
            if self.use_bias:
                out = out + self.bias.data
            return Tensor(out, dtype=out.dtype)
        out = x @ self.weight
        if self._lora_enabled:
            out = out + (x @ self.lora_a @ self.lora_b) * self.scale
        if self.use_bias:
            out = out + self.bias
        return out


def mark_only_lora_trainable(module: Module) -> None:
    """Freeze every parameter except LoRA ``A``/``B`` matrices in ``module``."""
    for name, param in module.named_parameters():
        param.requires_grad = name.endswith("lora_a") or name.endswith("lora_b")


def iter_lora_layers(module: Module):
    """Yield every :class:`LoRALinear` in ``module`` (depth-first)."""
    for _, sub in module.named_modules():
        if isinstance(sub, LoRALinear):
            yield sub
