"""Parameterized neural-network layers built on the autodiff Tensor.

The :class:`Module` base class provides parameter registration, train/eval
mode, freezing and a flat state-dict interface used for checkpointing.  The
layers implemented here cover everything the NetLLM reproduction needs:
linear projections, layer normalization, embeddings, dropout, MLPs and small
utility containers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import init as weight_init
from .functional import dropout as dropout_fn
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules.

    Submodules and parameters assigned as attributes are discovered
    automatically, mirroring the familiar PyTorch ``nn.Module`` contract.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute magic ------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- parameter access ------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its submodules."""
        return [param for _, param in self.named_parameters()]

    def trainable_parameters(self) -> List[Parameter]:
        """Return only parameters with ``requires_grad=True``."""
        return [p for p in self.parameters() if p.requires_grad]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def num_parameters(self, trainable_only: bool = False) -> int:
        params = self.trainable_parameters() if trainable_only else self.parameters()
        return int(sum(p.size for p in params))

    # -- mode / grad control --------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def freeze(self) -> "Module":
        """Disable gradient updates for all parameters of this module."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    # -- serialization ---------------------------------------------------- #
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if name in own:
                if own[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {own[name].data.shape} vs {value.shape}"
                    )
                # Cast to the receiving parameter's own dtype, not the global
                # default: a float64 model must stay float64 even if the
                # process has switched the default to float32 for inference.
                own[name].data = np.asarray(value, dtype=own[name].data.dtype).copy()

    # -- call ------------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine transformation ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight_init.xavier_uniform((in_features, out_features), rng),
                                name="weight")
        self.use_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_features), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.normalized_shape = normalized_shape
        self.gamma = Parameter(np.ones(normalized_shape), name="gamma")
        self.beta = Parameter(np.zeros(normalized_shape), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalized = (x - mean) * ((var + self.eps).pow(-0.5))
        return normalized * self.gamma + self.beta


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(weight_init.normal((num_embeddings, embedding_dim), rng),
                                name="weight")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if np.any(indices < 0) or np.any(indices >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight[indices]


class Dropout(Module):
    """Inverted dropout layer."""

    def __init__(self, p: float = 0.1, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.p, self.training, self._rng)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sequential(Module):
    """Chain modules and apply them in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._ordered.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def forward(self, x):
        for module in self._ordered:
            x = module(x)
        return x


class ModuleList(Module):
    """Container that registers a list of submodules."""

    def __init__(self, modules: Optional[Sequence[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        setattr(self, f"item{len(self._items)}", module)
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called directly")


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and activation."""

    def __init__(self, in_features: int, hidden_sizes: Sequence[int], out_features: int,
                 activation: str = "relu", rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        activations = {"relu": ReLU, "gelu": GELU, "tanh": Tanh}
        if activation not in activations:
            raise ValueError(f"unknown activation {activation!r}")
        layers: List[Module] = []
        previous = in_features
        for hidden in hidden_sizes:
            layers.append(Linear(previous, hidden, rng=rng))
            layers.append(activations[activation]())
            previous = hidden
        layers.append(Linear(previous, out_features, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
