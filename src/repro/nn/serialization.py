"""Checkpointing helpers: save/load module state dicts as ``.npz`` files."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .layers import Module

PathLike = Union[str, os.PathLike]


def save_state_dict(module: Module, path: PathLike, metadata: Optional[Dict] = None) -> None:
    """Serialize a module's parameters (and optional JSON metadata) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    arrays = {key.replace(".", "__"): value for key, value in state.items()}
    if metadata is not None:
        arrays["__metadata__"] = np.frombuffer(
            json.dumps(metadata, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
    np.savez_compressed(path, **arrays)


def load_state_dict(path: PathLike) -> tuple[Dict[str, np.ndarray], Optional[Dict]]:
    """Load a state dict saved by :func:`save_state_dict`.

    Returns ``(state, metadata)`` where metadata is ``None`` when absent.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        metadata = None
        state: Dict[str, np.ndarray] = {}
        for key in archive.files:
            if key == "__metadata__":
                metadata = json.loads(archive[key].tobytes().decode("utf-8"))
                continue
            state[key.replace("__", ".")] = archive[key]
    return state, metadata


def load_into(module: Module, path: PathLike, strict: bool = True) -> Optional[Dict]:
    """Load parameters from ``path`` directly into ``module``; return metadata."""
    state, metadata = load_state_dict(path)
    module.load_state_dict(state, strict=strict)
    return metadata
