"""Reverse-mode automatic differentiation over numpy arrays.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` substrate.  It implements a micrograd-style dynamic computation
graph: every operation records a backward closure, and :meth:`Tensor.backward`
walks the graph in reverse topological order accumulating gradients.

Two global switches control the cost of the substrate:

* **Gradient mode** — inside :func:`no_grad` (or after
  ``set_grad_enabled(False)``) operations skip all graph bookkeeping: no
  backward closures are created, no ``_prev`` edges are recorded and results
  never require grad.  Pure-inference code (rollout collection, evaluation,
  autoregressive decoding) runs through exactly the same numpy kernels but
  without paying the autograd tax.  The flag is **thread-local** (PyTorch
  semantics): a background inference loop holding ``no_grad`` does not
  forbid training on other threads, and every new thread starts with grad
  recording enabled.
* **Default dtype** — :func:`set_default_dtype` selects the floating-point
  precision (``float64`` by default, ``float32`` for faster inference) used
  whenever data enters the tensor world through :func:`_as_array`.

The implementation is intentionally dependency-free (numpy only) because the
reproduction environment does not provide PyTorch.  It supports the operations
needed by the NetLLM reproduction: broadcasting arithmetic, matrix
multiplication, reductions, reshaping, indexing, concatenation, common
activations and normalization primitives.
"""

from __future__ import annotations

import functools
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]


# ---------------------------------------------------------------------- #
# Autograd (thread-local) / dtype (global) state
# ---------------------------------------------------------------------- #
class _GradMode(threading.local):
    """Per-thread autograd flag; the class attribute is each thread's default."""

    enabled: bool = True


_GRAD_MODE = _GradMode()
_DEFAULT_DTYPE: np.dtype = np.dtype(np.float64)


def is_grad_enabled() -> bool:
    """Return whether operations on *this thread* record a computation graph."""
    return _GRAD_MODE.enabled


def set_grad_enabled(mode: bool) -> bool:
    """Enable/disable autograd recording on this thread; returns the previous
    mode.  Other threads are unaffected (the flag is thread-local), so a
    background inference loop cannot disable a training thread's autograd."""
    previous = _GRAD_MODE.enabled
    _GRAD_MODE.enabled = bool(mode)
    return previous


class no_grad:
    """Context manager (and decorator) that disables autograd recording.

    Operations executed inside the context produce tensors with no backward
    closures and no ``_prev`` edges; calling :meth:`Tensor.backward` on such a
    result raises a :class:`RuntimeError`.  Nesting is supported and the prior
    mode is restored on exit.  Both decorator spellings work: ``@no_grad``
    and ``@no_grad()``.
    """

    def __new__(cls, fn: Optional[Callable] = None):
        if fn is not None:  # bare @no_grad usage: delegate to @no_grad()
            return super().__new__(cls)(fn)
        return super().__new__(cls)

    def __enter__(self) -> "no_grad":
        self._previous = set_grad_enabled(False)
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        set_grad_enabled(self._previous)
        return False

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        return wrapper


def get_default_dtype() -> np.dtype:
    """Return the dtype new tensors are created with (float64 by default)."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the floating-point dtype for new tensors; returns the previous one.

    Only ``float32`` and ``float64`` make sense for this substrate; lower
    precisions are rejected because numpy falls back to slow software paths.
    """
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"default dtype must be float32 or float64, got {resolved}")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolved
    return previous


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    dtype = _DEFAULT_DTYPE if dtype is None else dtype
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records a computation graph for autograd."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        name: str = "",
        dtype=None,
    ) -> None:
        self.data = _as_array(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] = _noop_backward
        self._prev: Tuple[Tensor, ...] = _prev
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a tensor with exactly one element, got shape {self.shape}"
            )
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data (and dtype) but cut from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph helpers
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    @staticmethod
    def _ensure(other: ArrayLike, dtype=None) -> "Tensor":
        """Wrap non-tensor operands; ``dtype`` lets binary ops keep scalar
        constants in the tensor's own dtype rather than the global default."""
        return other if isinstance(other, Tensor) else Tensor(other, dtype=dtype)

    def _make(self, data: np.ndarray, requires_grad: bool,
              prev: Tuple["Tensor", ...]) -> Tuple["Tensor", bool]:
        """Build an op result, recording graph edges only when grad is on.

        Returns ``(out, record)``; callers attach a backward closure only when
        ``record`` is true, so pure inference creates no closures at all.
        The result keeps numpy's computed dtype (a float64 model stays float64
        even after the global default switches to float32).
        """
        record = _GRAD_MODE.enabled and requires_grad
        if record:
            return Tensor(data, requires_grad=True, _prev=prev, dtype=data.dtype), True
        return Tensor(data, dtype=data.dtype), False

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate gradients from this tensor through the graph."""
        if not self.requires_grad:
            raise RuntimeError(
                "backward() called on a tensor that does not require grad; "
                "it was created with requires_grad=False or inside no_grad()"
            )
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for child in node._prev:
                if id(child) not in visited:
                    stack.append((child, False))

        self.grad = grad.copy() if self.grad is None else self.grad + grad
        for node in reversed(topo):
            node._backward()

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other, self.data.dtype)
        out, record = self._make(self.data + other.data,
                                 self.requires_grad or other.requires_grad,
                                 (self, other))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None:
                return
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        out._backward = _backward
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other, self.data.dtype)
        out, record = self._make(self.data * other.data,
                                 self.requires_grad or other.requires_grad,
                                 (self, other))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None:
                return
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (self._ensure(other, self.data.dtype) * -1.0)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return self * self._ensure(other, self.data.dtype).pow(-1.0)

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self + other

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self * other

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other, self.data.dtype) - self

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other, self.data.dtype) / self

    def pow(self, exponent: float) -> "Tensor":
        out, record = self._make(
            np.power(self.data, exponent),  # repro: noqa[REP002] general-exponent autograd op; hot paths use x*x directly
            self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            self._accumulate(
                out.grad * exponent
                * np.power(self.data, exponent - 1))  # repro: noqa[REP002] general (possibly fractional) exponent

        out._backward = _backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        return self.pow(exponent)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._ensure(other, self.data.dtype)
        out, record = self._make(self.data @ other.data,
                                 self.requires_grad or other.requires_grad,
                                 (self, other))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None:
                return
            if self.requires_grad:
                grad_a = out.grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad_a, self.shape))
            if other.requires_grad:
                grad_b = np.swapaxes(self.data, -1, -2) @ out.grad
                other._accumulate(_unbroadcast(grad_b, other.shape))

        out._backward = _backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        out, record = self._make(out_data, self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            self._accumulate(out.grad * out_data)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out, record = self._make(np.log(self.data), self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            self._accumulate(out.grad / self.data)

        out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        out, record = self._make(out_data, self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            self._accumulate(out.grad * (1.0 - out_data * out_data))

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        out, record = self._make(out_data, self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            self._accumulate(out.grad * out_data * (1.0 - out_data))

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out, record = self._make(self.data * mask, self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            self._accumulate(out.grad * mask)

        out._backward = _backward
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        # Python float, not np.float64 scalar: keeps float32 inputs float32.
        c = float(np.sqrt(2.0 / np.pi))
        x = self.data
        # x*x*x, not x**3: np.power on float64 arrays is ~70x slower than two
        # multiplies, and gelu sits on every transformer MLP forward.
        inner = c * (x + 0.044715 * (x * x * x))
        tanh_inner = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + tanh_inner)
        out, record = self._make(out_data, self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            sech2 = 1.0 - tanh_inner * tanh_inner
            d_inner = c * (1.0 + 3 * 0.044715 * (x * x))
            grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
            self._accumulate(out.grad * grad)

        out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out, record = self._make(np.abs(self.data), self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            self._accumulate(out.grad * sign)

        out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out, record = self._make(np.clip(self.data, low, high), self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            self._accumulate(out.grad * mask)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out, record = self._make(self.data.sum(axis=axis, keepdims=keepdims),
                                 self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out, record = self._make(out_data, self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            grad = out.grad
            expanded = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient equally among ties.
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * grad)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out, record = self._make(self.data.reshape(shape), self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            self._accumulate(out.grad.reshape(original))

        out._backward = _backward
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out, record = self._make(self.data.transpose(axes), self.requires_grad, (self,))
        if not record:
            return out
        inverse = np.argsort(axes)

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            self._accumulate(out.grad.transpose(inverse))

        out._backward = _backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out, record = self._make(self.data[index], self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        out._backward = _backward
        return out

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad; ``pad_width`` follows :func:`numpy.pad` convention."""
        out, record = self._make(np.pad(self.data, pad_width), self.requires_grad, (self,))
        if not record:
            return out
        slices = tuple(
            slice(before, before + dim) for (before, _), dim in zip(pad_width, self.shape)
        )

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            self._accumulate(out.grad[slices])

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Softmax family (kept on Tensor for numerical stability)
    # ------------------------------------------------------------------ #
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)
        out, record = self._make(out_data, self.requires_grad, (self,))
        if not record:
            return out

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            dot = (out.grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (out.grad - dot))

        out._backward = _backward
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_sum
        out, record = self._make(out_data, self.requires_grad, (self,))
        if not record:
            return out
        softmax = np.exp(out_data)

        def _backward() -> None:
            if out.grad is None or not self.requires_grad:
                return
            sums = out.grad.sum(axis=axis, keepdims=True)
            self._accumulate(out.grad - softmax * sums)

        out._backward = _backward
        return out


def _noop_backward() -> None:
    return None


# ---------------------------------------------------------------------- #
# Free functions operating on tensors
# ---------------------------------------------------------------------- #
def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._ensure(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires_grad = _GRAD_MODE.enabled and any(t.requires_grad for t in tensors)
    if not requires_grad:
        return Tensor(data, dtype=data.dtype)
    out = Tensor(data, requires_grad=True, _prev=tuple(tensors), dtype=data.dtype)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        if out.grad is None:
            return
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if not tensor.requires_grad:
                continue
            index = [slice(None)] * out.grad.ndim
            index[axis] = slice(start, end)
            tensor._accumulate(out.grad[tuple(index)])

    out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [Tensor._ensure(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires_grad = _GRAD_MODE.enabled and any(t.requires_grad for t in tensors)
    if not requires_grad:
        return Tensor(data, dtype=data.dtype)
    out = Tensor(data, requires_grad=True, _prev=tuple(tensors), dtype=data.dtype)

    def _backward() -> None:
        if out.grad is None:
            return
        grads = np.split(out.grad, len(tensors), axis=axis)
        for tensor, grad in zip(tensors, grads):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(grad, axis=axis))

    out._backward = _backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select between two tensors based on a boolean mask."""
    a = Tensor._ensure(a)
    b = Tensor._ensure(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)
    requires_grad = _GRAD_MODE.enabled and (a.requires_grad or b.requires_grad)
    if not requires_grad:
        return Tensor(data, dtype=data.dtype)
    out = Tensor(data, requires_grad=True, _prev=(a, b), dtype=data.dtype)

    def _backward() -> None:
        if out.grad is None:
            return
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * (~cond), b.shape))

    out._backward = _backward
    return out


def no_grad_copy(tensor: Tensor) -> Tensor:
    """Deep copy of a tensor's data, detached from the graph."""
    return Tensor(tensor.data.copy(), requires_grad=False, dtype=tensor.data.dtype)
