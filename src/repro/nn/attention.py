"""Multi-head self-attention used by the transformer backbone.

Besides the classic full-sequence forward, this module implements the KV-cache
fast path for autoregressive decoding: each layer keeps the key/value
projections of every past position so that a decoding step only projects the
*new* token(s) and attends against the cached history — O(T) per step instead
of recomputing the whole O(T²) window.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from .layers import Dropout, Linear, Module
from .lora import LoRALinear
from .tensor import Tensor, get_default_dtype, is_grad_enabled


@lru_cache(maxsize=16)
def _causal_mask_base(size: int, dtype_name: str) -> np.ndarray:
    mask = np.zeros((size, size), dtype=np.dtype(dtype_name))
    mask[np.triu_indices(size, k=1)] = -1e9
    mask.setflags(write=False)  # shared across calls; must stay immutable
    return mask


@lru_cache(maxsize=8)
def _position_range_base(size: int) -> np.ndarray:
    base = np.arange(size, dtype=np.int64)
    base.setflags(write=False)  # shared across calls; must stay immutable
    return base


def _position_range(length: int) -> np.ndarray:
    """Read-only ``arange(length)`` served from a cached power-of-two base."""
    size = max(64, 1 << max(0, length - 1).bit_length())
    return _position_range_base(size)[:length]


def causal_mask(length: int, dtype=None) -> np.ndarray:
    """Return an additive causal mask of shape ``(length, length)``.

    Entries above the diagonal are a large negative value so that softmax
    assigns (numerically) zero attention to future positions.  Returns a
    read-only view into a cached power-of-two base mask, so cycling window
    lengths (as full-window decoding does) never thrashes the cache.  Pass
    the activations' dtype so a float32 model keeps float32 masks even when
    the global default is float64.
    """
    dtype = get_default_dtype() if dtype is None else np.dtype(dtype)
    size = max(64, 1 << max(0, length - 1).bit_length())
    return _causal_mask_base(size, dtype.name)[:length, :length]


class LayerKVCache:
    """Cached key/value projections of one attention layer.

    Arrays have shape ``(batch, num_heads, seq, head_dim)``.  Storage grows
    geometrically so appending a token is amortized O(1) — no per-step O(T)
    re-concatenation of the whole history.
    """

    __slots__ = ("_keys", "_values", "_length")

    def __init__(self) -> None:
        self._keys: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._length = 0

    @property
    def seq_len(self) -> int:
        return self._length

    @property
    def keys(self) -> Optional[np.ndarray]:
        return None if self._keys is None else self._keys[:, :, :self._length]

    @property
    def values(self) -> Optional[np.ndarray]:
        return None if self._values is None else self._values[:, :, :self._length]

    def _grow(self, template: np.ndarray, needed: int) -> None:
        batch, heads, _, head_dim = template.shape
        current = 0 if self._keys is None else self._keys.shape[2]
        capacity = max(16, needed, 2 * current)
        keys = np.empty((batch, heads, capacity, head_dim), dtype=template.dtype)
        values = np.empty_like(keys)
        if self._length:
            keys[:, :, :self._length] = self._keys[:, :, :self._length]
            values[:, :, :self._length] = self._values[:, :, :self._length]
        self._keys, self._values = keys, values

    def append(self, keys: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Append new-token projections; return the full cached (keys, values)."""
        new = keys.shape[2]
        if self._keys is None or self._length + new > self._keys.shape[2]:
            self._grow(keys, self._length + new)
        self._keys[:, :, self._length:self._length + new] = keys
        self._values[:, :, self._length:self._length + new] = values
        self._length += new
        return self._keys[:, :, :self._length], self._values[:, :, :self._length]

    def reset(self) -> None:
        self._keys = None
        self._values = None
        self._length = 0


class KVCache:
    """Per-layer key/value cache for incremental transformer decoding."""

    def __init__(self, num_layers: int) -> None:
        self.layers: List[LayerKVCache] = [LayerKVCache() for _ in range(num_layers)]

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def seq_len(self) -> int:
        """Number of positions already cached (0 for a fresh cache)."""
        return self.layers[0].seq_len if self.layers else 0

    def reset(self) -> None:
        for layer in self.layers:
            layer.reset()


class BatchedLayerKVCache:
    """Slot-packed key/value storage of one attention layer.

    Arrays have shape ``(slots, num_heads, capacity, head_dim)``: each *slot*
    holds the cached history of one independent decoding session.  Per-slot
    lengths live on the owning :class:`BatchedKVCache` (they are shared by
    every layer); the padded region is kept zero-filled so masked attention
    over a ragged batch never touches uninitialized memory.
    """

    __slots__ = ("_keys", "_values")

    def __init__(self) -> None:
        self._keys: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None

    @property
    def capacity(self) -> int:
        return 0 if self._keys is None else self._keys.shape[2]

    def ensure(self, slots: int, heads: int, head_dim: int, capacity: int,
               dtype: np.dtype) -> None:
        if self._keys is not None and self._keys.shape[2] >= capacity:
            return
        new_capacity = max(16, capacity, 2 * self.capacity)
        keys = np.zeros((slots, heads, new_capacity, head_dim), dtype=dtype)
        values = np.zeros_like(keys)
        if self._keys is not None:
            keys[:, :, :self._keys.shape[2]] = self._keys
            values[:, :, :self._values.shape[2]] = self._values
        self._keys, self._values = keys, values

    def load_slot(self, slot: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Copy a prefilled single-session history ``(heads, seq, head_dim)``."""
        length = keys.shape[1]
        self._keys[slot, :, :length] = keys
        self._values[slot, :, :length] = values

    def clear_slot(self, slot: int) -> None:
        # Zero (not just forget) so padded attention over a shorter neighbour
        # never mixes stale non-finite values into masked-out scores.
        self._keys[slot] = 0.0
        self._values[slot] = 0.0

    def append_step(self, slots: np.ndarray, positions: np.ndarray,
                    keys: np.ndarray, values: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Write one new token per active slot; return the full packed arrays.

        ``keys``/``values`` have shape ``(len(slots), heads, head_dim)`` and
        are written at ``positions[i]`` of ``slots[i]``.
        """
        self._keys[slots, :, positions] = keys
        self._values[slots, :, positions] = values
        return self._keys, self._values

    def gather(self, slots: np.ndarray, max_len: int
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-slot histories ``(n, heads, max_len, head_dim)`` for attention.

        When the active slots are exactly ``0..n-1`` (the common compact case
        — the free list hands out the lowest slot first) this is a zero-copy
        basic slice; otherwise a fancy-index gather.
        """
        n = len(slots)
        if np.array_equal(slots, _position_range(n)):
            return self._keys[:n, :, :max_len], self._values[:n, :, :max_len]
        return self._keys[slots, :, :max_len], self._values[slots, :, :max_len]


class BatchedKVCache:
    """Multi-session KV cache driving batched single-token decoding.

    One instance advances up to ``max_slots`` independent sessions per forward
    step: slot *i* has its own history length, so sessions with different
    prompt lengths (admitted and evicted at different times — continuous
    batching) coexist in one packed array.  The batched attention path masks
    each slot's padding, keeping per-slot logits identical to running the
    session alone through a single-session :class:`KVCache`.
    """

    def __init__(self, num_layers: int, max_slots: int) -> None:
        if max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        self.max_slots = max_slots
        self.lengths = np.zeros(max_slots, dtype=np.int64)
        self.layers: List[BatchedLayerKVCache] = [
            BatchedLayerKVCache() for _ in range(num_layers)]
        self._free: List[int] = list(range(max_slots - 1, -1, -1))  # pop() -> slot 0 first

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def num_free(self) -> int:
        return len(self._free)

    def _ensure_capacity(self, capacity: int, heads: int, head_dim: int,
                         dtype: np.dtype) -> None:
        for layer in self.layers:
            layer.ensure(self.max_slots, heads, head_dim, capacity, dtype)

    def admit(self, cache: KVCache, row: int = 0) -> int:
        """Copy one prefilled session out of ``cache`` into a free slot.

        Prompts are prefilled through the ordinary cache path
        (:meth:`TransformerBackbone.forward` with ``cache=``); admission then
        packs the resulting per-layer keys/values next to the sessions already
        in flight.  ``row`` selects the session when several equal-length
        prompts were prefilled together in one batched forward.  Returns the
        assigned slot index.
        """
        if cache.num_layers != self.num_layers:
            raise ValueError(
                f"session cache has {cache.num_layers} layers but the batched "
                f"cache has {self.num_layers}")
        length = cache.seq_len
        if length < 1:
            raise ValueError("cannot admit an empty session cache; prefill first")
        if not self._free:
            raise RuntimeError("no free slots; evict a session first")
        template = cache.layers[0].keys
        if not 0 <= row < template.shape[0]:
            raise ValueError(f"row {row} outside prefilled batch of {template.shape[0]}")
        slot = self._free.pop()
        self._ensure_capacity(length, template.shape[1], template.shape[3],
                              template.dtype)
        for source, target in zip(cache.layers, self.layers):
            target.load_slot(slot, source.keys[row], source.values[row])
        self.lengths[slot] = length
        return slot

    def evict(self, slot: int) -> None:
        """Release a slot (session finished or cancelled)."""
        if slot in self._free:
            raise ValueError(f"slot {slot} is already free")
        self.lengths[slot] = 0
        for layer in self.layers:
            layer.clear_slot(slot)
        self._free.append(slot)
        # Keep handing out the lowest slot first: active slots stay packed at
        # the front, which keeps the zero-copy gather fast path hot.
        self._free.sort(reverse=True)

    def prepare_step(self, slots: np.ndarray) -> np.ndarray:
        """Grow capacity for one more token on ``slots``; return their positions."""
        positions = self.lengths[slots]
        if len(positions) == 0:
            raise ValueError("prepare_step called with no active slots")
        template = self.layers[0]._keys
        if template is None:
            raise RuntimeError("batched cache has no admitted sessions")
        self._ensure_capacity(int(positions.max()) + 1, template.shape[1],
                              template.shape[3], template.dtype)
        return positions

    def commit_step(self, slots: np.ndarray) -> None:
        """Advance the per-slot lengths after every layer has appended."""
        self.lengths[slots] += 1


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product attention.

    Query/key/value projections can optionally be wrapped with LoRA adapters
    (``lora_rank > 0``); this is how DD-LRNA injects trainable low-rank
    matrices into an otherwise frozen LLM.
    """

    def __init__(self, d_model: int, num_heads: int, dropout: float = 0.0,
                 lora_rank: int = 0, lora_alpha: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads

        def make_proj() -> Module:
            if lora_rank > 0:
                return LoRALinear(d_model, d_model, rank=lora_rank, alpha=lora_alpha, rng=rng)
            return Linear(d_model, d_model, rng=rng)

        self.q_proj = make_proj()
        self.k_proj = make_proj()
        self.v_proj = make_proj()
        self.out_proj = make_proj()
        self.attn_dropout = Dropout(dropout)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None,
                layer_cache: Optional[LayerKVCache] = None) -> Tensor:
        """Apply self-attention to ``x`` of shape ``(batch, seq, d_model)``.

        When ``layer_cache`` is given the input holds only the *new* tokens;
        their key/value projections are appended to the cache and attention
        runs against the full cached history (inference-only: attention
        dropout is skipped and no gradients flow through the cached past).
        """
        if layer_cache is not None:
            if mask is not None:
                raise ValueError("custom masks are not supported with a KV cache; "
                                 "cached attention is always causal")
            return self._forward_cached(x, layer_cache)
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / float(np.sqrt(self.head_dim)))
        if mask is not None:
            scores = scores + Tensor(mask, dtype=mask.dtype)
        weights = scores.softmax(axis=-1)
        weights = self.attn_dropout(weights)
        context = weights @ v
        merged = context.swapaxes(1, 2).reshape(batch, seq, self.d_model)
        return self.out_proj(merged)

    def _check_cached_preconditions(self) -> None:
        if is_grad_enabled():
            raise RuntimeError(
                "KV-cached attention is inference-only and would silently "
                "detach gradients; wrap the call in no_grad()")
        if self.training and self.attn_dropout.p > 0:
            raise RuntimeError(
                "KV-cached attention skips attention dropout and would "
                "diverge from the full forward; call eval() first")

    def _forward_cached(self, x: Tensor, layer_cache: LayerKVCache) -> Tensor:
        """Single/few-token decoding step against the cached keys/values.

        The computation mirrors the full forward exactly (same projection
        kernels, same numerically stable softmax), so incremental logits match
        the full-window forward to machine precision.
        """
        self._check_cached_preconditions()
        batch, new, _ = x.shape
        past = layer_cache.seq_len
        q = self._split_heads(self.q_proj(x), batch, new).data
        k = self._split_heads(self.k_proj(x), batch, new).data
        v = self._split_heads(self.v_proj(x), batch, new).data
        keys, values = layer_cache.append(k, v)

        scores = (q @ np.swapaxes(keys, -1, -2)) * (1.0 / float(np.sqrt(self.head_dim)))
        if new > 1:
            # New token i (global position past+i) may only attend to <= past+i.
            total = past + new
            scores = scores + causal_mask(total, scores.dtype)[past:total, :]
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        weights = exp / exp.sum(axis=-1, keepdims=True)
        context = weights @ values
        merged = np.swapaxes(context, 1, 2).reshape(batch, new, self.d_model)
        return self.out_proj(Tensor(merged, dtype=merged.dtype))

    def forward_step(self, x: Tensor, layer_cache: BatchedLayerKVCache,
                     slots: np.ndarray, positions: np.ndarray) -> Tensor:
        """Batched single-token decoding step over independent sessions.

        ``x`` holds one new token per active session, ``(n, 1, d_model)``;
        row *i* belongs to slot ``slots[i]`` whose cached history has length
        ``positions[i]``.  The key/value projections are scattered into the
        packed cache and each row attends over exactly its own history plus
        the new token — ragged lengths are masked with ``-inf`` so padded
        positions contribute exact zeros, keeping per-session logits equal to
        a single-session :meth:`_forward_cached` step.
        """
        self._check_cached_preconditions()
        n, new, _ = x.shape
        if new != 1:
            raise ValueError("forward_step advances exactly one token per session; "
                             "prefill prompts through the single-session cache path")
        q = self._split_heads(self.q_proj(x), n, 1).data
        k = self._split_heads(self.k_proj(x), n, 1).data
        v = self._split_heads(self.v_proj(x), n, 1).data
        layer_cache.append_step(slots, positions, k[:, :, 0, :], v[:, :, 0, :])

        totals = positions + 1  # per-session history length including the new token
        max_len = int(totals.max())
        gathered_keys, gathered_values = layer_cache.gather(slots, max_len)
        scores = (q @ np.swapaxes(gathered_keys, -1, -2)) * (1.0 / float(np.sqrt(self.head_dim)))
        if int(totals.min()) != max_len:  # ragged batch: mask each row's padding
            padded = _position_range(max_len)[None, :] >= totals[:, None]  # (n, max_len)
            scores = np.where(padded[:, None, None, :], -np.inf, scores)
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        weights = exp / exp.sum(axis=-1, keepdims=True)
        context = weights @ gathered_values
        merged = np.swapaxes(context, 1, 2).reshape(n, 1, self.d_model)
        return self.out_proj(Tensor(merged, dtype=merged.dtype))

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).swapaxes(1, 2)
