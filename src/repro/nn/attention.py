"""Multi-head self-attention used by the transformer backbone."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import Dropout, Linear, Module
from .lora import LoRALinear
from .tensor import Tensor


def causal_mask(length: int) -> np.ndarray:
    """Return an additive causal mask of shape ``(length, length)``.

    Entries above the diagonal are a large negative value so that softmax
    assigns (numerically) zero attention to future positions.
    """
    mask = np.zeros((length, length), dtype=np.float64)
    mask[np.triu_indices(length, k=1)] = -1e9
    return mask


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product attention.

    Query/key/value projections can optionally be wrapped with LoRA adapters
    (``lora_rank > 0``); this is how DD-LRNA injects trainable low-rank
    matrices into an otherwise frozen LLM.
    """

    def __init__(self, d_model: int, num_heads: int, dropout: float = 0.0,
                 lora_rank: int = 0, lora_alpha: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads

        def make_proj() -> Module:
            if lora_rank > 0:
                return LoRALinear(d_model, d_model, rank=lora_rank, alpha=lora_alpha, rng=rng)
            return Linear(d_model, d_model, rng=rng)

        self.q_proj = make_proj()
        self.k_proj = make_proj()
        self.v_proj = make_proj()
        self.out_proj = make_proj()
        self.attn_dropout = Dropout(dropout)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        """Apply self-attention to ``x`` of shape ``(batch, seq, d_model)``."""
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = scores + Tensor(mask)
        weights = scores.softmax(axis=-1)
        weights = self.attn_dropout(weights)
        context = weights @ v
        merged = context.swapaxes(1, 2).reshape(batch, seq, self.d_model)
        return self.out_proj(merged)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).swapaxes(1, 2)
