"""Multi-head self-attention used by the transformer backbone.

Besides the classic full-sequence forward, this module implements the KV-cache
fast path for autoregressive decoding: each layer keeps the key/value
projections of every past position so that a decoding step only projects the
*new* token(s) and attends against the cached history — O(T) per step instead
of recomputing the whole O(T²) window.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from .layers import Dropout, Linear, Module
from .lora import LoRALinear
from .tensor import Tensor, get_default_dtype, is_grad_enabled


@lru_cache(maxsize=16)
def _causal_mask_base(size: int, dtype_name: str) -> np.ndarray:
    mask = np.zeros((size, size), dtype=np.dtype(dtype_name))
    mask[np.triu_indices(size, k=1)] = -1e9
    mask.setflags(write=False)  # shared across calls; must stay immutable
    return mask


@lru_cache(maxsize=8)
def _position_range_base(size: int) -> np.ndarray:
    base = np.arange(size, dtype=np.int64)
    base.setflags(write=False)  # shared across calls; must stay immutable
    return base


def _position_range(length: int) -> np.ndarray:
    """Read-only ``arange(length)`` served from a cached power-of-two base."""
    size = max(64, 1 << max(0, length - 1).bit_length())
    return _position_range_base(size)[:length]


def causal_mask(length: int, dtype=None) -> np.ndarray:
    """Return an additive causal mask of shape ``(length, length)``.

    Entries above the diagonal are a large negative value so that softmax
    assigns (numerically) zero attention to future positions.  Returns a
    read-only view into a cached power-of-two base mask, so cycling window
    lengths (as full-window decoding does) never thrashes the cache.  Pass
    the activations' dtype so a float32 model keeps float32 masks even when
    the global default is float64.
    """
    dtype = get_default_dtype() if dtype is None else np.dtype(dtype)
    size = max(64, 1 << max(0, length - 1).bit_length())
    return _causal_mask_base(size, dtype.name)[:length, :length]


class LayerKVCache:
    """Cached key/value projections of one attention layer.

    Arrays have shape ``(batch, num_heads, seq, head_dim)``.  Storage grows
    geometrically so appending a token is amortized O(1) — no per-step O(T)
    re-concatenation of the whole history.
    """

    __slots__ = ("_keys", "_values", "_length")

    def __init__(self) -> None:
        self._keys: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._length = 0

    @property
    def seq_len(self) -> int:
        return self._length

    @property
    def keys(self) -> Optional[np.ndarray]:
        return None if self._keys is None else self._keys[:, :, :self._length]

    @property
    def values(self) -> Optional[np.ndarray]:
        return None if self._values is None else self._values[:, :, :self._length]

    def _grow(self, template: np.ndarray, needed: int) -> None:
        batch, heads, _, head_dim = template.shape
        current = 0 if self._keys is None else self._keys.shape[2]
        capacity = max(16, needed, 2 * current)
        keys = np.empty((batch, heads, capacity, head_dim), dtype=template.dtype)
        values = np.empty_like(keys)
        if self._length:
            keys[:, :, :self._length] = self._keys[:, :, :self._length]
            values[:, :, :self._length] = self._values[:, :, :self._length]
        self._keys, self._values = keys, values

    def append(self, keys: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Append new-token projections; return the full cached (keys, values)."""
        new = keys.shape[2]
        if self._keys is None or self._length + new > self._keys.shape[2]:
            self._grow(keys, self._length + new)
        self._keys[:, :, self._length:self._length + new] = keys
        self._values[:, :, self._length:self._length + new] = values
        self._length += new
        return self._keys[:, :, :self._length], self._values[:, :, :self._length]

    def reset(self) -> None:
        self._keys = None
        self._values = None
        self._length = 0


class KVCache:
    """Per-layer key/value cache for incremental transformer decoding."""

    def __init__(self, num_layers: int) -> None:
        self.layers: List[LayerKVCache] = [LayerKVCache() for _ in range(num_layers)]

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def seq_len(self) -> int:
        """Number of positions already cached (0 for a fresh cache)."""
        return self.layers[0].seq_len if self.layers else 0

    def reset(self) -> None:
        for layer in self.layers:
            layer.reset()


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product attention.

    Query/key/value projections can optionally be wrapped with LoRA adapters
    (``lora_rank > 0``); this is how DD-LRNA injects trainable low-rank
    matrices into an otherwise frozen LLM.
    """

    def __init__(self, d_model: int, num_heads: int, dropout: float = 0.0,
                 lora_rank: int = 0, lora_alpha: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads

        def make_proj() -> Module:
            if lora_rank > 0:
                return LoRALinear(d_model, d_model, rank=lora_rank, alpha=lora_alpha, rng=rng)
            return Linear(d_model, d_model, rng=rng)

        self.q_proj = make_proj()
        self.k_proj = make_proj()
        self.v_proj = make_proj()
        self.out_proj = make_proj()
        self.attn_dropout = Dropout(dropout)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None,
                layer_cache: Optional[LayerKVCache] = None) -> Tensor:
        """Apply self-attention to ``x`` of shape ``(batch, seq, d_model)``.

        When ``layer_cache`` is given the input holds only the *new* tokens;
        their key/value projections are appended to the cache and attention
        runs against the full cached history (inference-only: attention
        dropout is skipped and no gradients flow through the cached past).
        """
        if layer_cache is not None:
            if mask is not None:
                raise ValueError("custom masks are not supported with a KV cache; "
                                 "cached attention is always causal")
            return self._forward_cached(x, layer_cache)
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / float(np.sqrt(self.head_dim)))
        if mask is not None:
            scores = scores + Tensor(mask, dtype=mask.dtype)
        weights = scores.softmax(axis=-1)
        weights = self.attn_dropout(weights)
        context = weights @ v
        merged = context.swapaxes(1, 2).reshape(batch, seq, self.d_model)
        return self.out_proj(merged)

    def _check_cached_preconditions(self) -> None:
        if is_grad_enabled():
            raise RuntimeError(
                "KV-cached attention is inference-only and would silently "
                "detach gradients; wrap the call in no_grad()")
        if self.training and self.attn_dropout.p > 0:
            raise RuntimeError(
                "KV-cached attention skips attention dropout and would "
                "diverge from the full forward; call eval() first")

    def _forward_cached(self, x: Tensor, layer_cache: LayerKVCache) -> Tensor:
        """Single/few-token decoding step against the cached keys/values.

        The computation mirrors the full forward exactly (same projection
        kernels, same numerically stable softmax), so incremental logits match
        the full-window forward to machine precision.
        """
        self._check_cached_preconditions()
        batch, new, _ = x.shape
        past = layer_cache.seq_len
        q = self._split_heads(self.q_proj(x), batch, new).data
        k = self._split_heads(self.k_proj(x), batch, new).data
        v = self._split_heads(self.v_proj(x), batch, new).data
        keys, values = layer_cache.append(k, v)

        scores = (q @ np.swapaxes(keys, -1, -2)) * (1.0 / float(np.sqrt(self.head_dim)))
        if new > 1:
            # New token i (global position past+i) may only attend to <= past+i.
            total = past + new
            scores = scores + causal_mask(total, scores.dtype)[past:total, :]
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        weights = exp / exp.sum(axis=-1, keepdims=True)
        context = weights @ values
        merged = np.swapaxes(context, 1, 2).reshape(batch, new, self.d_model)
        return self.out_proj(Tensor(merged, dtype=merged.dtype))

    def forward_step(self, x: Tensor, layer_cache, step) -> Tensor:
        """Batched single-token decoding step over independent paged sessions.

        ``x`` holds one new token per active session, ``(n, 1, d_model)``;
        ``layer_cache`` is this layer's
        :class:`~repro.nn.paged_cache.PagedLayerKVCache` and ``step`` the
        :class:`~repro.nn.paged_cache.PagedStepContext` describing where each
        session's new token lands and which blocks cover its history.  The
        key/value projections are scattered into the session's tail block and
        each row attends over its own gathered block table — positions past a
        session's length (block padding and shorter neighbours) are masked
        with ``-inf`` so they contribute exact zeros, keeping per-session
        logits equal to a single-session :meth:`_forward_cached` step.
        """
        self._check_cached_preconditions()
        n, new, _ = x.shape
        if getattr(step, "counts", None) is not None:
            return self._forward_multi_step(x, layer_cache, step)
        if new != 1:
            raise ValueError("forward_step advances exactly one token per session; "
                             "prefill prompts through the single-session cache path")
        q = self._split_heads(self.q_proj(x), n, 1).data
        k = self._split_heads(self.k_proj(x), n, 1).data
        v = self._split_heads(self.v_proj(x), n, 1).data
        layer_cache.append_step(step.write_blocks, step.write_offsets,
                                k[:, :, 0, :], v[:, :, 0, :])

        gathered_keys, gathered_values = layer_cache.gather(step.tables)
        scores = (q @ np.swapaxes(gathered_keys, -1, -2)) * (1.0 / float(np.sqrt(self.head_dim)))
        if step.needs_mask:  # mask block padding + ragged rows; the boolean
            # mask is computed once per step and shared by every layer.
            np.copyto(scores, -np.inf, where=step.padding_mask[:, None, None, :])
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        weights = exp / exp.sum(axis=-1, keepdims=True)
        context = weights @ gathered_values
        merged = np.swapaxes(context, 1, 2).reshape(n, 1, self.d_model)
        return self.out_proj(Tensor(merged, dtype=merged.dtype))

    def _forward_multi_step(self, x: Tensor, layer_cache, step) -> Tensor:
        """Ragged multi-token step (speculative verification forward).

        ``x`` holds ``step.max_count`` query tokens per session, of which row
        ``i`` uses the first ``step.counts[i]`` (padded positions carry a
        replicated token whose output is discarded).  Only the valid tokens
        are scattered into the pool — one fancy-index write per layer, no
        per-token loop — and each query position attends under
        ``step.verify_mask``, the per-row causal cutoff that also covers
        block padding and shorter neighbours, so position ``t`` of row ``i``
        sees exactly what a sequential single-token decode would have seen.
        """
        n, new, _ = x.shape
        q = self._split_heads(self.q_proj(x), n, new).data
        k = self._split_heads(self.k_proj(x), n, new).data
        v = self._split_heads(self.v_proj(x), n, new).data
        layer_cache.append_step(step.write_blocks, step.write_offsets,
                                k[step.row_index, :, step.token_index, :],
                                v[step.row_index, :, step.token_index, :])

        gathered_keys, gathered_values = layer_cache.gather(step.tables)
        scores = (q @ np.swapaxes(gathered_keys, -1, -2)) * (1.0 / float(np.sqrt(self.head_dim)))
        np.copyto(scores, -np.inf, where=step.verify_mask[:, None, :, :])
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        weights = exp / exp.sum(axis=-1, keepdims=True)
        context = weights @ gathered_values
        merged = np.swapaxes(context, 1, 2).reshape(n, new, self.d_model)
        return self.out_proj(Tensor(merged, dtype=merged.dtype))

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).swapaxes(1, 2)
