"""``repro.nn`` — a compact numpy autodiff / neural-network substrate.

The reproduction environment provides no deep-learning framework, so this
package implements the parts of one that NetLLM needs: a reverse-mode
autograd tensor, standard layers (linear, layer norm, embedding, dropout,
1-D convolution, LSTM, GNN, multi-head attention, transformer blocks), LoRA
adapters, optimizers and checkpointing.
"""

from .tensor import (
    Tensor,
    concatenate,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
    set_grad_enabled,
    stack,
    where,
)
from .functional import (
    clip_grad_norm,
    cross_entropy,
    dropout,
    gelu,
    huber_loss,
    log_softmax,
    mae_loss,
    mse_loss,
    one_hot,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from .layers import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    MLP,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
)
from .conv import Conv1D, PatchImageEncoder, TemporalConvEncoder
from .attention import (
    KVCache,
    LayerKVCache,
    MultiHeadAttention,
    causal_mask,
)
from .paged_cache import (
    DEFAULT_BLOCK_SIZE,
    BlockAllocator,
    PagedKVCache,
    PagedLayerKVCache,
    PagedStepContext,
)
from .transformer import FeedForward, TransformerBackbone, TransformerBlock
from .rnn import LSTM, LSTMCell
from .gnn import GraphConv, GraphEncoder, normalized_adjacency
from .lora import LoRALinear, iter_lora_layers, mark_only_lora_trainable
from .optim import Adam, CosineSchedule, Optimizer, SGD
from .serialization import load_into, load_state_dict, save_state_dict

__all__ = [
    "Tensor", "concatenate", "stack", "where",
    "no_grad", "set_grad_enabled", "is_grad_enabled",
    "set_default_dtype", "get_default_dtype",
    "clip_grad_norm", "cross_entropy", "dropout", "gelu", "huber_loss", "log_softmax",
    "mae_loss", "mse_loss", "one_hot", "relu", "sigmoid", "softmax", "tanh",
    "Dropout", "Embedding", "GELU", "LayerNorm", "Linear", "MLP", "Module", "ModuleList",
    "Parameter", "ReLU", "Sequential", "Tanh",
    "Conv1D", "PatchImageEncoder", "TemporalConvEncoder",
    "KVCache", "LayerKVCache", "MultiHeadAttention", "causal_mask",
    "DEFAULT_BLOCK_SIZE", "BlockAllocator",
    "PagedKVCache", "PagedLayerKVCache", "PagedStepContext",
    "FeedForward", "TransformerBackbone", "TransformerBlock",
    "LSTM", "LSTMCell",
    "GraphConv", "GraphEncoder", "normalized_adjacency",
    "LoRALinear", "iter_lora_layers", "mark_only_lora_trainable",
    "Adam", "CosineSchedule", "Optimizer", "SGD",
    "load_into", "load_state_dict", "save_state_dict",
]
