"""Functional helpers built on top of :class:`repro.nn.tensor.Tensor`.

Losses, activations and utilities that do not carry parameters live here so
that layers in :mod:`repro.nn.layers` stay thin.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor


def relu(x: Tensor) -> Tensor:
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    return x.gelu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.log_softmax(axis=axis)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a one-hot encoding of integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between prediction and target."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error between prediction and target."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (prediction - target).abs().mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber (smooth-L1) loss, robust to outliers in regression targets."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = 0.5 * diff * diff
    linear = delta * abs_diff - 0.5 * delta * delta
    mask = abs_diff.data <= delta
    from .tensor import where

    return where(mask, quadratic, linear).mean()


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Cross-entropy loss between raw ``logits`` and integer class ``targets``.

    ``logits`` has shape ``(..., num_classes)`` and ``targets`` has the
    matching leading shape with integer class ids.
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    flat = log_probs.reshape(-1, logits.shape[-1])
    target_flat = targets.reshape(-1)
    picked = flat[np.arange(flat.shape[0]), target_flat]
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def nll_from_log_probs(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log likelihood from pre-computed log probabilities."""
    targets = np.asarray(targets, dtype=np.int64)
    flat = log_probs.reshape(-1, log_probs.shape[-1])
    picked = flat[np.arange(flat.shape[0]), targets.reshape(-1)]
    return -picked.mean()


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales surviving activations by ``1/(1-p)``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Clip gradients in-place to a maximum global L2 norm.

    Returns the pre-clipping norm, mirroring the PyTorch utility.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / (total + 1e-12)
        for p in parameters:
            if p.grad is not None:
                p.grad = p.grad * scale
    return total


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function ``fn``.

    Used by the test suite to validate autograd correctness.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x.copy())
        flat[i] = original - eps
        minus = fn(x.copy())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad
