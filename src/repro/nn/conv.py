"""1-D convolution layers used by the multimodal feature encoders.

NetLLM encodes time-series and sequence data (historical throughputs, chunk
sizes, viewport traces) with 1D-CNN feature encoders.  The convolution here is
implemented via explicit window unfolding (an im2col-style reshape) so the
heavy lifting stays inside a single batched matrix multiplication on the
autodiff graph.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init as weight_init
from .layers import Linear, Module, Parameter, ReLU, Sequential
from .tensor import Tensor, concatenate, get_default_dtype, stack


class Conv1D(Module):
    """1-D convolution over inputs of shape ``(batch, length, channels)``.

    The layout follows the time-series convention used across the repo
    (time on axis 1, channels last).  Output length is
    ``(length + 2 * padding - kernel_size) // stride + 1``.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid convolution hyper-parameters")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            weight_init.kaiming_uniform((kernel_size * in_channels, out_channels), rng),
            name="weight",
        )
        self.use_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_channels), name="bias")

    def output_length(self, length: int) -> int:
        return (length + 2 * self.padding - self.kernel_size) // self.stride + 1

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ValueError(f"Conv1D expects (batch, length, channels), got shape {x.shape}")
        batch, length, channels = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {channels}")
        if self.padding:
            x = x.pad(((0, 0), (self.padding, self.padding), (0, 0)))
            length = length + 2 * self.padding
        out_length = (length - self.kernel_size) // self.stride + 1
        if out_length < 1:
            raise ValueError("input too short for the given kernel size")
        # Unfold windows: gather kernel_size shifted slices and concatenate on
        # the channel axis, yielding (batch, out_length, kernel_size * channels).
        windows = []
        for offset in range(self.kernel_size):
            end = offset + self.stride * (out_length - 1) + 1
            windows.append(x[:, offset:end:self.stride, :])
        unfolded = concatenate(windows, axis=2)
        out = unfolded @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out


class TemporalConvEncoder(Module):
    """Small stack of 1-D convolutions followed by global average pooling.

    This is the "1D-CNN" feature encoder from the NetLLM multimodal encoder:
    it maps a ``(batch, length, channels)`` time series (or sequence) to a
    fixed-size feature vector of dimension ``feature_dim``.
    """

    def __init__(self, in_channels: int, feature_dim: int, hidden_channels: int = 32,
                 kernel_size: int = 3, num_layers: int = 2,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        layers = []
        channels = in_channels
        for _ in range(num_layers):
            layers.append(Conv1D(channels, hidden_channels, kernel_size, padding=kernel_size // 2,
                                 rng=rng))
            layers.append(ReLU())
            channels = hidden_channels
        self.convs = Sequential(*layers)
        self.project = Linear(hidden_channels, feature_dim, rng=rng)
        self.feature_dim = feature_dim

    def forward(self, x: Tensor) -> Tensor:
        """Encode ``(batch, length, channels)`` into ``(batch, feature_dim)``."""
        features = self.convs(x)
        pooled = features.mean(axis=1)
        return self.project(pooled)


class PatchImageEncoder(Module):
    """ViT-style image feature encoder (patch embedding + mean pooling).

    The paper reuses a pre-trained Vision Transformer to encode video frames
    and saliency maps.  Here we keep the same interface — image in, flat
    feature vector out — with a patch-embedding encoder sized for synthetic
    saliency maps.  The encoder is typically frozen, matching the paper's
    treatment of ViT weights.
    """

    def __init__(self, image_size: int = 32, patch_size: int = 8, feature_dim: int = 64,
                 channels: int = 1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if image_size % patch_size != 0:
            raise ValueError("image_size must be divisible by patch_size")
        rng = rng or np.random.default_rng(0)
        self.image_size = image_size
        self.patch_size = patch_size
        self.channels = channels
        self.num_patches = (image_size // patch_size) ** 2  # repro: noqa[REP002] scalar Python int at init, not an array hot path
        patch_dim = channels * patch_size * patch_size
        self.patch_embed = Linear(patch_dim, feature_dim, rng=rng)
        self.mixer = Linear(feature_dim, feature_dim, rng=rng)
        self.feature_dim = feature_dim

    def _to_patches(self, images: np.ndarray) -> np.ndarray:
        """Reshape ``(batch, H, W[, C])`` images into flattened patches."""
        images = np.asarray(images, dtype=get_default_dtype())
        if images.ndim == 3:
            images = images[..., None]
        batch, height, width, channels = images.shape
        if height != self.image_size or width != self.image_size or channels != self.channels:
            raise ValueError(
                f"expected images of shape (*, {self.image_size}, {self.image_size}, "
                f"{self.channels}), got {images.shape}"
            )
        p = self.patch_size
        grid = self.image_size // p
        patches = images.reshape(batch, grid, p, grid, p, channels)
        patches = patches.transpose(0, 1, 3, 2, 4, 5).reshape(batch, grid * grid, p * p * channels)
        return patches

    def forward(self, images: np.ndarray) -> Tensor:
        """Encode a batch of images into ``(batch, feature_dim)`` features."""
        patches = Tensor(self._to_patches(images))
        embedded = self.patch_embed(patches).gelu()
        pooled = embedded.mean(axis=1)
        return self.mixer(pooled)
