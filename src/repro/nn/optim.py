"""Optimizers (SGD with momentum, Adam/AdamW) and learning-rate schedules."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .layers import Parameter


class Optimizer:
    """Base optimizer holding a list of parameters to update."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_size_bytes(self) -> int:
        """Approximate memory consumed by optimizer state (for cost profiling)."""
        return 0


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.data)
                vel = self.momentum * vel + grad
                self._velocity[id(param)] = vel
                grad = vel
            param.data = param.data - self.lr * grad

    def state_size_bytes(self) -> int:
        return int(sum(v.nbytes for v in self._velocity.values()))


class Adam(Optimizer):
    """Adam optimizer with optional decoupled weight decay (AdamW)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        for param in self.parameters:
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[key] = m
            self._v[key] = v
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data = param.data - self.lr * update

    def state_size_bytes(self) -> int:
        total = sum(m.nbytes for m in self._m.values())
        total += sum(v.nbytes for v in self._v.values())
        return int(total)


class CosineSchedule:
    """Cosine learning-rate decay with linear warmup."""

    def __init__(self, optimizer: Optimizer, base_lr: float, total_steps: int,
                 warmup_steps: int = 0, min_lr: float = 0.0) -> None:
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if warmup_steps < 0 or warmup_steps > total_steps:
            raise ValueError("warmup_steps must be within [0, total_steps]")
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr
        self._step = 0

    def current_lr(self) -> float:
        if self.warmup_steps and self._step < self.warmup_steps:
            return self.base_lr * (self._step + 1) / self.warmup_steps
        progress = (self._step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps)
        progress = min(1.0, max(0.0, progress))
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine

    def step(self) -> float:
        lr = self.current_lr()
        self.optimizer.lr = lr
        self._step += 1
        return lr
