"""Paged key/value storage for multi-session decoding (vLLM-style).

The slot-packed batched cache this module replaces reserved one fixed-size
``(heads, max_context, head_dim)`` strip per session, so memory scaled with
``max_batch × max_context`` even when most sessions were short, and a slot
could never lend its unused tail to a longer neighbour.  Here the per-layer
K/V of *all* sessions live in one pool of fixed-size **blocks** (``block_size``
tokens each):

* :class:`BlockAllocator` owns the pool — free-list reuse, a lazily grown
  high-water mark (storage is only materialized for blocks that have actually
  been touched) and per-block reference counts so several sessions can map the
  same physical block (shared prompt prefixes, forked sessions).
* :class:`PagedLayerKVCache` holds one layer's K/V arrays, indexed by block.
* :class:`PagedKVCache` keeps a **block table** per session (the ordered block
  ids covering its history) and turns a batch of session ids into a
  :class:`PagedStepContext` — the gather/scatter plan one batched decode step
  needs.  Writes into a block referenced by more than one session first copy
  it (copy-on-write), so shared blocks are never mutated under a neighbour.

Attention gathers each session's history with one fancy index over the block
axis (``keys[tables]``), which pads every row to a whole number of blocks;
the padded tail is masked with ``-inf`` exactly like ragged batches were in
the slot-packed design, keeping per-session logits identical to a
single-session :class:`KVCache` decode.

Sessions need not be admitted fully prefilled: :meth:`PagedKVCache.admit_rows`
accepts a partial prompt (``lengths`` shorter than the prefilled history) and
:meth:`PagedKVCache.extend_session` scatters each further **prefill chunk**
into the session's blocks, growing its table incrementally — the substrate
for chunked prefill interleaved with decode steps.

The decode hot path caches its gather plan: per-session block-table rows are
versioned, the padded ``tables`` matrix is reused across steps and only rows
whose table actually changed are rewritten (``table_rebuilds`` /
``table_row_updates`` count the cache behaviour), and the per-step
offset/total/position arrays live in preallocated buffers so a steady-state
decode step performs no per-session Python table walk and no temporary
allocations beyond the attention math itself.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .attention import KVCache, _position_range

#: Default tokens per block — small enough that short sessions waste little,
#: large enough that block tables and gathers stay cheap.
DEFAULT_BLOCK_SIZE = 16


class BlockAllocator:
    """Fixed-size block pool with free-list reuse and reference counting.

    ``num_blocks`` is a hard capacity cap; storage in the layer caches only
    grows to the *high-water mark* — the largest block id ever handed out —
    so a pool sized for the worst case costs nothing until traffic needs it.
    """

    def __init__(self, num_blocks: int, block_size: int) -> None:
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.refcounts = np.zeros(num_blocks, dtype=np.int64)
        self._free: List[int] = []  # released ids; kept sorted, pop() -> lowest
        self._next = 0  # high-water mark: ids >= _next were never allocated
        self._in_use = 0

    @property
    def high_water(self) -> int:
        """Largest number of blocks ever live at once (storage follows this)."""
        return self._next

    @property
    def blocks_in_use(self) -> int:
        return self._in_use

    @property
    def blocks_free(self) -> int:
        return self.num_blocks - self._in_use

    def allocate(self) -> int:
        """Hand out one block (refcount 1), reusing freed ids lowest-first."""
        if self._free:
            block = self._free.pop()
        elif self._next < self.num_blocks:
            block = self._next
            self._next += 1
        else:
            raise RuntimeError(
                f"out of KV-cache blocks ({self.num_blocks} x {self.block_size} "
                f"tokens all in use); evict a session first")
        self.refcounts[block] = 1
        self._in_use += 1
        return block

    def share(self, block: int) -> None:
        """Add a reference to an already-live block (prefix reuse / fork)."""
        if self.refcounts[block] < 1:
            raise ValueError(f"cannot share block {block}: it is not allocated")
        self.refcounts[block] += 1

    def release(self, block: int) -> bool:
        """Drop one reference; return True when the block actually freed."""
        count = int(self.refcounts[block])
        if count < 1:
            raise ValueError(f"double free of block {block}")
        self.refcounts[block] = count - 1
        if count == 1:
            self._free.append(block)
            # Lowest-id-first reuse keeps live blocks packed at the front, so
            # the lazily grown storage arrays stay as small as possible.
            self._free.sort(reverse=True)
            self._in_use -= 1
            return True
        return False


class PagedLayerKVCache:
    """One attention layer's K/V arrays, block-indexed.

    Arrays have shape ``(blocks, num_heads, block_size, head_dim)`` and grow
    geometrically to the allocator's high-water mark.  Storage is zero-filled
    and freed blocks are re-zeroed, so gathering a padded block never mixes
    stale non-finite values into masked-out attention scores.
    """

    __slots__ = ("_keys", "_values")

    def __init__(self) -> None:
        self._keys: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None

    @property
    def capacity_blocks(self) -> int:
        return 0 if self._keys is None else self._keys.shape[0]

    def ensure(self, blocks: int, heads: int, block_size: int, head_dim: int,
               dtype: np.dtype) -> None:
        if self._keys is not None and self._keys.shape[0] >= blocks:
            return
        new_capacity = max(4, blocks, 2 * self.capacity_blocks)
        keys = np.zeros((new_capacity, heads, block_size, head_dim), dtype=dtype)
        values = np.zeros_like(keys)
        if self._keys is not None:
            keys[:self._keys.shape[0]] = self._keys
            values[:self._values.shape[0]] = self._values
        self._keys, self._values = keys, values

    def write_blocks(self, block_ids: Sequence[int], keys: np.ndarray,
                     values: np.ndarray) -> None:
        """Lay a contiguous ``(heads, length, head_dim)`` history out in blocks.

        ``block_ids[j]`` receives tokens ``[j*block_size, (j+1)*block_size)``;
        the final block may be partially filled.
        """
        block_size = self._keys.shape[2]
        length = keys.shape[1]
        for j, block in enumerate(block_ids):
            start = j * block_size
            took = min(block_size, length - start)
            self._keys[block, :, :took] = keys[:, start:start + took]
            self._values[block, :, :took] = values[:, start:start + took]

    def copy_block(self, source: int, target: int) -> None:
        """Clone a block's contents (the copy half of copy-on-write)."""
        self._keys[target] = self._keys[source]
        self._values[target] = self._values[source]

    def clear_block(self, block: int) -> None:
        self._keys[block] = 0.0
        self._values[block] = 0.0

    def append_step(self, blocks: np.ndarray, offsets: np.ndarray,
                    keys: np.ndarray, values: np.ndarray) -> None:
        """Write one new token per session at ``(blocks[i], offsets[i])``.

        ``keys``/``values`` have shape ``(n, heads, head_dim)``.
        """
        self._keys[blocks, :, offsets] = keys
        self._values[blocks, :, offsets] = values

    def read_blocks(self, block_ids: Sequence[int]
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Contiguous ``(heads, len(block_ids)*block_size, head_dim)`` copies
        of the listed blocks' K/V (the inverse of :meth:`write_blocks`)."""
        index = np.asarray(block_ids, dtype=np.int64)
        _, heads, block_size, head_dim = self._keys.shape
        keys = self._keys[index].transpose(1, 0, 2, 3).reshape(
            heads, len(index) * block_size, head_dim)
        values = self._values[index].transpose(1, 0, 2, 3).reshape(
            heads, len(index) * block_size, head_dim)
        return keys, values

    def gather(self, tables: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-session histories for attention, gathered via block tables.

        ``tables`` is ``(n, max_blocks)`` — each row a session's block ids,
        padded with any valid id (padded positions are masked by the caller).
        Returns ``(n, heads, max_blocks*block_size, head_dim)`` arrays.
        """
        n, max_blocks = tables.shape
        _, heads, block_size, head_dim = self._keys.shape
        keys = self._keys[tables]      # (n, max_blocks, heads, block, head_dim)
        values = self._values[tables]
        keys = keys.transpose(0, 2, 1, 3, 4).reshape(
            n, heads, max_blocks * block_size, head_dim)
        values = values.transpose(0, 2, 1, 3, 4).reshape(
            n, heads, max_blocks * block_size, head_dim)
        return keys, values


class PagedStepContext:
    """Gather/scatter plan for one batched decode step over the paged cache.

    Built by :meth:`PagedKVCache.prepare_step` (which also performs any block
    allocation and copy-on-write the step needs) and consumed by every
    attention layer, so the per-step table padding — and the ragged/padding
    attention mask, via :attr:`padding_mask` — happens once, not per layer.

    The arrays may alias the cache's internal step buffers: a context is only
    valid until the next ``prepare_step`` call on the same cache.
    """

    __slots__ = ("session_ids", "tables", "write_blocks", "write_offsets",
                 "totals", "positions", "gathered_len", "needs_mask", "_mask")

    def __init__(self, session_ids: np.ndarray, tables: np.ndarray,
                 write_blocks: np.ndarray, write_offsets: np.ndarray,
                 totals: np.ndarray, positions: np.ndarray,
                 block_size: int) -> None:
        self.session_ids = session_ids
        self.tables = tables                #: (n, max_blocks) padded block ids
        self.write_blocks = write_blocks    #: (n,) block receiving the new token
        self.write_offsets = write_offsets  #: (n,) offset within that block
        self.totals = totals                #: (n,) history length incl. new token
        #: Global position of each session's new token (its previous length).
        self.positions = positions
        #: Length of the gathered (block-padded) attention window.
        self.gathered_len = int(tables.shape[1]) * block_size
        #: Whether any gathered position lies past a session's history (block
        #: padding or a shorter neighbour) — when False every layer can skip
        #: masking entirely.
        self.needs_mask = int(totals.min()) != self.gathered_len
        self._mask: Optional[np.ndarray] = None

    @property
    def padding_mask(self) -> np.ndarray:
        """Boolean ``(n, gathered_len)`` mask of padded/ragged positions.

        Identical for every attention layer of the step, so it is computed
        once here instead of once per layer.
        """
        if self._mask is None:
            self._mask = (_position_range(self.gathered_len)[None, :]
                          >= self.totals[:, None])
        return self._mask


class PagedMultiStepContext:
    """Gather/scatter plan for one ragged *multi-token* step (speculative
    decode verification).

    Built by :meth:`PagedKVCache.prepare_multi_step`: row *i* writes
    ``counts[i]`` new tokens (its previously-sampled token plus its draft
    tokens) at global positions ``lengths[i] .. lengths[i]+counts[i]-1``.
    Rows are ragged — shorter rows are padded to ``max_count`` query
    positions whose outputs the caller ignores — and the flat
    ``write_blocks``/``write_offsets``/``row_index``/``token_index`` arrays
    cover exactly the *valid* (row, token) pairs, so padded positions are
    never scattered into the pool.

    :attr:`verify_mask` is the chunked-prefill causal-mask machinery
    re-derived for the paged gather: token ``t`` of row ``i`` may attend to
    gathered positions ``< lengths[i] + t + 1``, which masks block padding,
    ragged neighbours *and* future draft tokens with one boolean mask shared
    by every layer.  Padded query rows reuse their row's last valid cutoff,
    so no softmax row is ever fully masked.
    """

    __slots__ = ("session_ids", "tables", "counts", "max_count", "lengths",
                 "write_blocks", "write_offsets", "row_index", "token_index",
                 "totals", "positions", "gathered_len", "_mask")

    def __init__(self, session_ids: np.ndarray, tables: np.ndarray,
                 counts: np.ndarray, lengths: np.ndarray,
                 write_blocks: np.ndarray, write_offsets: np.ndarray,
                 row_index: np.ndarray, token_index: np.ndarray,
                 positions: np.ndarray, block_size: int) -> None:
        self.session_ids = session_ids
        self.tables = tables                #: (n, max_blocks) padded block ids
        self.counts = counts                #: (n,) new tokens per row (>= 1)
        self.max_count = int(counts.max())
        self.lengths = lengths              #: (n,) history length *before* the step
        self.write_blocks = write_blocks    #: (total,) block per valid token
        self.write_offsets = write_offsets  #: (total,) offset within that block
        self.row_index = row_index          #: (total,) source row per valid token
        self.token_index = token_index      #: (total,) source position per valid token
        self.totals = lengths + counts      #: (n,) history length after the step
        #: (n, max_count) global position per query token (padded entries are
        #: clamped to the row's last valid position, keeping them in range).
        self.positions = positions
        self.gathered_len = int(tables.shape[1]) * block_size
        self._mask: Optional[np.ndarray] = None

    @property
    def verify_mask(self) -> np.ndarray:
        """Boolean ``(n, max_count, gathered_len)`` invisibility mask.

        ``mask[i, t, j]`` is True when gathered position ``j`` must not be
        attended by query token ``t`` of row ``i`` — everything at or past
        the causal cutoff ``lengths[i] + t + 1``, which covers future draft
        tokens, block padding and shorter neighbours at once.  Computed once
        per step and shared by every attention layer.
        """
        if self._mask is None:
            t_eff = np.minimum(_position_range(self.max_count)[None, :],
                               self.counts[:, None] - 1)
            cutoff = self.lengths[:, None] + t_eff + 1
            self._mask = (_position_range(self.gathered_len)[None, None, :]
                          >= cutoff[:, :, None])
        return self._mask


class _StepPlan:
    """Cached gather plan for a fixed batch of session ids.

    Valid while the batch composition is unchanged; individual rows are
    refreshed when their session's block table changes (tracked by per-session
    versions), so a steady-state decode never rebuilds the padded table
    matrix.  ``lengths`` mirrors the cache's per-session lengths for the
    batch and is advanced in bulk by :meth:`PagedKVCache.commit_step`.
    """

    __slots__ = ("ids_key", "session_ids", "tables", "lengths", "tail_blocks",
                 "versions", "epoch", "offsets_buf", "totals_buf",
                 "positions_buf")

    def __init__(self, session_ids: np.ndarray, tables: np.ndarray,
                 lengths: np.ndarray, tail_blocks: np.ndarray,
                 versions: np.ndarray, epoch: int) -> None:
        self.ids_key = session_ids.tobytes()
        self.session_ids = session_ids
        self.tables = tables
        self.lengths = lengths
        self.tail_blocks = tail_blocks
        self.versions = versions
        self.epoch = epoch
        n = len(session_ids)
        self.offsets_buf = np.empty(n, dtype=np.int64)
        self.totals_buf = np.empty(n, dtype=np.int64)
        self.positions_buf = np.empty(n, dtype=np.int64)


class PagedKVCache:
    """Multi-session KV cache over a shared block pool.

    Each admitted session gets a monotonically increasing integer id and a
    *block table* — the ordered block ids covering its token history.  Unlike
    the slot-packed design there is no per-session capacity reservation: a
    session holds exactly ``ceil(len/block_size)`` blocks, short sessions
    stay cheap, and the number of concurrently decodable sessions is bounded
    by total blocks, not by a fixed slot count.

    Sharing: :meth:`admit` can map already-filled blocks (a cached prompt
    prefix) into a new session's table, and :meth:`fork` clones a whole
    session, both by bumping block refcounts instead of copying.  Any write
    into a block with refcount > 1 triggers copy-on-write in
    :meth:`prepare_step`, so sharing is invisible to correctness.
    """

    #: Optional chaos hook (``FaultInjector.fire``): called at the named
    #: fault sites ``kv.admit`` / ``kv.extend`` before any pool mutation, so
    #: an injected fault never leaves partially-admitted state behind.  None
    #: (the class default) costs one attribute check per call.
    fault_hook = None

    def __init__(self, num_layers: int, max_blocks: int,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.allocator = BlockAllocator(max_blocks, block_size)
        self.layers: List[PagedLayerKVCache] = [
            PagedLayerKVCache() for _ in range(num_layers)]
        self._tables: Dict[int, List[int]] = {}
        self._lengths: Dict[int, int] = {}
        self._ids = itertools.count()
        # Step-plan cache: per-session table versions plus a global mutation
        # epoch.  A decode step whose batch and epoch both match the cached
        # plan reuses the padded gather tables untouched; a bumped epoch only
        # rewrites the rows whose version changed.
        self._versions: Dict[int, int] = {}
        self._epoch = 0
        self._plan: Optional[_StepPlan] = None
        #: Full rebuilds of the padded gather-table matrix (batch changed).
        self.table_rebuilds = 0
        #: Single-row refreshes of the cached matrix (one table changed).
        self.table_row_updates = 0

    def _mutated(self) -> None:
        """Note a table/pool mutation so cached step plans revalidate."""
        self._epoch += 1

    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def block_size(self) -> int:
        return self.allocator.block_size

    @property
    def num_sessions(self) -> int:
        return len(self._tables)

    @property
    def blocks_in_use(self) -> int:
        return self.allocator.blocks_in_use

    @property
    def blocks_free(self) -> int:
        return self.allocator.blocks_free

    def length(self, session_id: int) -> int:
        try:
            return self._lengths[session_id]
        except KeyError:
            raise ValueError(f"session {session_id} is not live") from None

    def table(self, session_id: int) -> Tuple[int, ...]:
        return tuple(self._tables[session_id])

    def blocks_needed(self, length: int) -> int:
        return -(-length // self.block_size)

    # ------------------------------------------------------------------ #
    def _ensure_storage(self, heads: int, head_dim: int, dtype: np.dtype) -> None:
        for layer in self.layers:
            layer.ensure(self.allocator.high_water, heads, self.block_size,
                         head_dim, dtype)

    def _allocate_many(self, count: int) -> List[int]:
        """Allocate ``count`` blocks atomically (roll back on exhaustion)."""
        blocks: List[int] = []
        try:
            for _ in range(count):
                blocks.append(self.allocator.allocate())
        except RuntimeError:
            for block in blocks:
                self.allocator.release(block)
            raise
        return blocks

    def admit(self, cache: KVCache, row: int = 0, length: Optional[int] = None,
              shared_blocks: Sequence[int] = ()) -> int:
        """Map one prefilled session into the pool; return its session id.

        ``cache`` is the single-session :class:`KVCache` the prompt was
        prefilled through; ``row`` selects the session when several prompts
        were prefilled together.  ``length`` trims a right-padded batched
        prefill to the session's true history (default: the full cache
        length).  ``shared_blocks`` maps already-filled *full* blocks — a
        cached common prefix — into the head of the new session's table
        without copying; ``cache`` must still contain the complete history
        (prefix included) so the fresh tail can be copied from it.
        """
        template = cache.layers[0].keys if cache.layers else None
        if template is not None and not 0 <= row < template.shape[0]:
            raise ValueError(f"row {row} outside prefilled batch of {template.shape[0]}")
        return self.admit_rows(cache, rows=[row],
                               lengths=None if length is None else [length],
                               shared_blocks=shared_blocks)[0]

    def admit_rows(self, cache: KVCache, rows: Optional[Sequence[int]] = None,
                   lengths: Optional[Sequence[int]] = None,
                   shared_blocks: Sequence[int] = ()) -> List[int]:
        """Map several rows of one batched prefill into the pool at once.

        The whole group's fresh key/value history is laid out into blocks
        with one scatter per layer (instead of per-session per-block copies),
        which is what keeps ragged batched admission cheap.  ``lengths[i]``
        trims row ``rows[i]`` of the (right-padded) prefill to its true
        history; ``shared_blocks`` is prepended to every admitted session's
        table by reference (see :meth:`admit`).  Returns the session ids in
        row order.
        """
        if self.fault_hook is not None:
            self.fault_hook("kv.admit")
        if cache.num_layers != self.num_layers:
            raise ValueError(
                f"session cache has {cache.num_layers} layers but the paged "
                f"cache has {self.num_layers}")
        full = cache.seq_len
        if full < 1:
            raise ValueError("cannot admit an empty session cache; prefill first")
        batch = cache.layers[0].keys.shape[0]
        rows = list(range(batch)) if rows is None else list(rows)
        if not rows:
            return []
        for row in rows:
            if not 0 <= row < batch:
                raise ValueError(f"row {row} outside prefilled batch of {batch}")
        lengths = [full] * len(rows) if lengths is None else list(lengths)
        if len(lengths) != len(rows):
            raise ValueError(f"{len(lengths)} lengths for {len(rows)} rows")
        shared = list(shared_blocks)
        shared_len = len(shared) * self.block_size
        for length in lengths:
            if not 1 <= length <= full:
                raise ValueError(f"length {length} outside prefilled range 1..{full}")
            if shared_len >= length:
                raise ValueError(
                    f"{len(shared)} shared blocks cover {shared_len} tokens but "
                    f"the session is only {length} long; at least one fresh "
                    f"token is required")
        template = cache.layers[0].keys
        block_size = self.block_size

        fresh_counts = [self.blocks_needed(length - shared_len) for length in lengths]
        fresh = self._allocate_many(sum(fresh_counts))
        for _ in rows:
            for block in shared:
                self.allocator.share(block)
        self._ensure_storage(template.shape[1], template.shape[3], template.dtype)

        # One scatter per layer: gather the group's fresh token range, pad it
        # to whole blocks, fold into (row, block, heads, block_size, head_dim)
        # and write every session's blocks with a single fancy index.
        rows_index = np.asarray(rows, dtype=np.int64)
        max_blocks = max(fresh_counts)
        padded_len = max_blocks * block_size
        valid = np.zeros((len(rows), max_blocks), dtype=bool)
        for i, count in enumerate(fresh_counts):
            valid[i, :count] = True
        targets = np.asarray(fresh, dtype=np.int64)
        n, heads, _, head_dim = template.shape
        for source, layer in zip(cache.layers, self.layers):
            for source_array, storage in ((source.keys, layer._keys),
                                          (source.values, layer._values)):
                chunk = source_array[rows_index, :, shared_len:shared_len + padded_len]
                take = chunk.shape[2]
                folded = np.zeros((len(rows), heads, padded_len, head_dim),
                                  dtype=chunk.dtype)
                folded[:, :, :take] = chunk
                folded = folded.reshape(len(rows), heads, max_blocks, block_size,
                                        head_dim).transpose(0, 2, 1, 3, 4)
                storage[targets] = folded[valid]

        session_ids = []
        offset = 0
        for length, count in zip(lengths, fresh_counts):
            session_id = next(self._ids)
            self._tables[session_id] = shared + fresh[offset:offset + count]
            self._lengths[session_id] = length
            self._versions[session_id] = 0
            session_ids.append(session_id)
            offset += count
        self._mutated()
        return session_ids

    def extend_session(self, session_id: int, cache: KVCache, row: int = 0,
                       new_length: Optional[int] = None) -> None:
        """Scatter the next prefill chunk of a partially admitted session.

        ``cache`` is the session's resumable single-session prefill cache: it
        holds the full history computed so far (shared prefix head included),
        of which tokens ``[length(session_id), new_length)`` are new and get
        laid out into the session's blocks — filling the partially used tail
        block first, then appending fresh blocks.  ``new_length`` defaults to
        the cache's full length.  A shared tail block (a forked sibling) is
        copy-on-write split before the chunk lands in it, exactly as
        :meth:`prepare_step` does for decode writes.
        """
        if self.fault_hook is not None:
            self.fault_hook("kv.extend")
        if session_id not in self._tables:
            raise ValueError(f"session {session_id} is not live")
        if cache.num_layers != self.num_layers:
            raise ValueError(
                f"session cache has {cache.num_layers} layers but the paged "
                f"cache has {self.num_layers}")
        old = self._lengths[session_id]
        full = cache.seq_len
        new_length = full if new_length is None else new_length
        if not old < new_length <= full:
            raise ValueError(
                f"cannot extend session {session_id} from {old} to "
                f"{new_length} tokens (prefilled history holds {full})")
        template = cache.layers[0].keys
        if not 0 <= row < template.shape[0]:
            raise ValueError(f"row {row} outside prefilled batch of "
                             f"{template.shape[0]}")
        block_size = self.block_size
        table = self._tables[session_id]
        tail_offset = old % block_size
        needs_cow = tail_offset and self.allocator.refcounts[table[-1]] > 1
        grow = self.blocks_needed(new_length) - len(table)
        fresh = self._allocate_many(grow + (1 if needs_cow else 0))
        self._ensure_storage(template.shape[1], template.shape[3],
                             template.dtype)
        if needs_cow:
            replacement = fresh.pop(0)
            for layer in self.layers:
                layer.copy_block(table[-1], replacement)
            # Unlike prepare_step's batched CoW, no sibling can drop the last
            # reference within this single-session call: the block stays live
            # for its other holder(s), never freed here.
            self.allocator.release(table[-1])
            table[-1] = replacement
        table.extend(fresh)
        start_block = old // block_size
        for source, layer in zip(cache.layers, self.layers):
            for source_array, storage in ((source.keys, layer._keys),
                                          (source.values, layer._values)):
                history = source_array[row]
                position, index = old, start_block
                while position < new_length:
                    offset = position % block_size
                    took = min(block_size - offset, new_length - position)
                    storage[table[index], :, offset:offset + took] = \
                        history[:, position:position + took]
                    position += took
                    index += 1
        self._lengths[session_id] = new_length
        self._versions[session_id] += 1
        self._mutated()

    def register_blocks(self, keys_per_layer: Sequence[np.ndarray],
                        values_per_layer: Sequence[np.ndarray]) -> List[int]:
        """Fill fresh blocks with a block-aligned history owned by the caller.

        ``keys_per_layer[l]``/``values_per_layer[l]`` are contiguous
        ``(heads, length, head_dim)`` arrays with ``length`` a multiple of
        the block size.  Used by the shared-prefix cache to park a common
        prompt head in the pool outside any session; sessions then map the
        returned blocks via :meth:`admit`'s ``shared_blocks``.  The caller
        holds one reference per block until :meth:`release_blocks`.
        """
        if len(keys_per_layer) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} layers of keys, "
                             f"got {len(keys_per_layer)}")
        length = keys_per_layer[0].shape[1]
        if length < 1 or length % self.block_size:
            raise ValueError(f"registered history length {length} must be a "
                             f"positive multiple of block size {self.block_size}")
        blocks = self._allocate_many(length // self.block_size)
        template = keys_per_layer[0]
        for layer in self.layers:
            layer.ensure(self.allocator.high_water, template.shape[0],
                         self.block_size, template.shape[2], template.dtype)
        for layer, keys, values in zip(self.layers, keys_per_layer, values_per_layer):
            layer.write_blocks(blocks, keys, values)
        self._mutated()
        return blocks

    def release_blocks(self, block_ids: Sequence[int]) -> None:
        """Drop the caller's reference on externally held blocks."""
        for block in block_ids:
            if self.allocator.release(block):
                for layer in self.layers:
                    layer.clear_block(block)
        self._mutated()

    def fork(self, session_id: int) -> int:
        """Clone a session by sharing its blocks (copy-on-write protected)."""
        table = self._tables[session_id]
        for block in table:
            self.allocator.share(block)
        clone = next(self._ids)
        self._tables[clone] = list(table)
        self._lengths[clone] = self._lengths[session_id]
        self._versions[clone] = 0
        self._mutated()
        return clone

    def evict(self, session_id: int) -> None:
        """Release a session's blocks back to the pool."""
        if session_id not in self._tables:
            raise ValueError(f"session {session_id} is not live (double evict?)")
        for block in self._tables.pop(session_id):
            if self.allocator.release(block):
                for layer in self.layers:
                    layer.clear_block(block)
        del self._lengths[session_id]
        del self._versions[session_id]
        self._mutated()

    # ------------------------------------------------------------------ #
    def _build_plan(self, session_ids: np.ndarray) -> _StepPlan:
        """Construct the padded gather plan for a (new) batch of sessions."""
        n = len(session_ids)
        rows: List[List[int]] = []
        for sid in session_ids:
            table = self._tables.get(int(sid))
            if table is None:
                raise ValueError(f"session {int(sid)} is not live")
            rows.append(table)
        width = max(len(row) for row in rows)
        tables = np.zeros((n, width), dtype=np.int64)
        lengths = np.empty(n, dtype=np.int64)
        tail_blocks = np.empty(n, dtype=np.int64)
        versions = np.empty(n, dtype=np.int64)
        for i, (sid, row) in enumerate(zip(session_ids, rows)):
            tables[i, :len(row)] = row
            lengths[i] = self._lengths[int(sid)]
            tail_blocks[i] = row[-1]
            versions[i] = self._versions[int(sid)]
        self.table_rebuilds += 1
        return _StepPlan(session_ids, tables, lengths, tail_blocks, versions,
                         self._epoch)

    def _refresh_plan_row(self, plan: _StepPlan, i: int, sid: int) -> None:
        """Rewrite one cached row after its session's table changed."""
        table = self._tables[sid]
        if len(table) > plan.tables.shape[1]:
            # Widen to exactly the new longest table: the matrix copy is a few
            # hundred int64s, while every extra column would cost a full extra
            # block of gathered K/V per row on every subsequent step.
            wider = np.zeros((plan.tables.shape[0], len(table)), dtype=np.int64)
            wider[:, :plan.tables.shape[1]] = plan.tables
            plan.tables = wider
        plan.tables[i, :len(table)] = table
        plan.tables[i, len(table):] = 0
        plan.tail_blocks[i] = table[-1]
        plan.lengths[i] = self._lengths[sid]
        plan.versions[i] = self._versions[sid]
        self.table_row_updates += 1

    def prepare_step(self, session_ids: np.ndarray) -> PagedStepContext:
        """Build the step plan for one new token on each listed session.

        Allocates a fresh block for sessions whose length is at a block
        boundary; copies the tail block of sessions whose tail is shared
        (copy-on-write) so the write below cannot leak into a sibling.
        Allocation is all-or-nothing: on pool exhaustion no table is touched,
        so the caller can evict a session and retry the step safely.

        The padded gather tables are cached between steps: an unchanged batch
        reuses the previous matrix outright, and only rows whose block table
        actually changed since the last step are rewritten (see
        ``table_rebuilds`` / ``table_row_updates``).
        """
        session_ids = np.asarray(session_ids, dtype=np.int64)
        n = len(session_ids)
        if n == 0:
            raise ValueError("prepare_step called with no active sessions")
        block_size = self.block_size
        plan = self._plan
        if plan is None or plan.ids_key != session_ids.tobytes():
            plan = self._build_plan(session_ids)
            self._plan = plan
        elif plan.epoch != self._epoch:
            # Same batch, but tables mutated since the plan was built (block
            # appended, chunk admitted, fork/CoW, eviction elsewhere): refresh
            # only the rows whose per-session version moved.
            for i, sid in enumerate(session_ids):
                sid = int(sid)
                version = self._versions.get(sid)
                if version is None:
                    raise ValueError(f"session {sid} is not live")
                if version != plan.versions[i]:
                    self._refresh_plan_row(plan, i, sid)
            plan.epoch = self._epoch

        # Which rows need a fresh block this step: boundary append, or
        # copy-on-write split of a shared tail (vectorized over the batch).
        offsets = np.mod(plan.lengths, block_size, out=plan.offsets_buf)
        boundary = offsets == 0
        shared_tail = self.allocator.refcounts[plan.tail_blocks] > 1
        fresh_rows = np.flatnonzero(boundary | (shared_tail & ~boundary))
        if fresh_rows.size:
            fresh = self._allocate_many(len(fresh_rows))  # atomic on exhaustion
            self._ensure_storage(*self._template_dims())
            for block, i in zip(fresh, fresh_rows):
                i = int(i)
                sid = int(session_ids[i])
                table = self._tables[sid]
                if boundary[i]:
                    table.append(block)
                    if len(table) > plan.tables.shape[1]:
                        self._refresh_plan_row(plan, i, sid)
                    else:
                        plan.tables[i, len(table) - 1] = block
                else:
                    # Copy-on-write: the partially filled tail block is shared
                    # (forked session / partial prefix); give this session its
                    # own copy before the new token lands in it.
                    for layer in self.layers:
                        layer.copy_block(table[-1], block)
                    if self.allocator.release(table[-1]):
                        # Last reference died during the split (e.g. the
                        # sibling already copy-on-wrote its own tail this same
                        # step): keep the freed-blocks-are-zeroed invariant.
                        for layer in self.layers:
                            layer.clear_block(table[-1])
                    table[-1] = block
                    plan.tables[i, len(table) - 1] = block
                plan.tail_blocks[i] = block
                self._versions[sid] += 1
                plan.versions[i] = self._versions[sid]
            self._mutated()
            plan.epoch = self._epoch
        totals = np.add(plan.lengths, 1, out=plan.totals_buf)
        np.copyto(plan.positions_buf, plan.lengths)
        return PagedStepContext(session_ids, plan.tables, plan.tail_blocks,
                                offsets, totals, plan.positions_buf, block_size)

    def _template_dims(self) -> Tuple[int, int, np.dtype]:
        template = self.layers[0]._keys
        if template is None:
            raise RuntimeError("paged cache has no admitted sessions")
        return template.shape[1], template.shape[3], template.dtype

    def commit_step(self, session_ids: np.ndarray) -> None:
        """Advance the per-session lengths after every layer has written."""
        for sid in session_ids:
            self._lengths[int(sid)] += 1
        plan = self._plan
        if plan is not None:
            if plan.ids_key == np.asarray(session_ids,
                                          dtype=np.int64).tobytes():
                plan.lengths += 1  # keep the cached batch lengths in lockstep
            else:
                self._plan = None  # committed a different batch: drop the plan

    def prepare_multi_step(self, session_ids: np.ndarray,
                           counts: np.ndarray) -> PagedMultiStepContext:
        """Build the plan for a ragged multi-token (speculative) step.

        Row ``i`` will write ``counts[i] >= 1`` new tokens — its pending
        sampled token plus its draft tokens — so its table grows by however
        many whole blocks that needs, and a shared partially-filled tail
        block is copy-on-write split first, exactly as :meth:`prepare_step`
        does for the single-token case.  Allocation is all-or-nothing across
        the whole batch.

        Unlike the single-token hot path this does not use the cached step
        plan: speculative batches change shape every step (counts vary with
        draft acceptance), so the padded tables are built fresh and the
        cached plan is dropped (rows mutated here would be refreshed by the
        next ``prepare_step`` anyway, via the version bump).
        """
        session_ids = np.asarray(session_ids, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        n = len(session_ids)
        if n == 0:
            raise ValueError("prepare_multi_step called with no active sessions")
        if len(counts) != n:
            raise ValueError(f"{len(counts)} counts for {n} sessions")
        if counts.min() < 1:
            raise ValueError("every session must consume at least one token")
        block_size = self.block_size

        rows: List[List[int]] = []
        lengths = np.empty(n, dtype=np.int64)
        for i, sid in enumerate(session_ids):
            table = self._tables.get(int(sid))
            if table is None:
                raise ValueError(f"session {int(sid)} is not live")
            rows.append(table)
            lengths[i] = self._lengths[int(sid)]

        # Per-row growth and copy-on-write needs, then one atomic allocation.
        grows = [self.blocks_needed(int(lengths[i] + counts[i])) - len(rows[i])
                 for i in range(n)]
        cow = [bool(lengths[i] % block_size)
               and self.allocator.refcounts[rows[i][-1]] > 1
               for i in range(n)]
        fresh = self._allocate_many(sum(grows) + sum(cow))
        self._ensure_storage(*self._template_dims())
        taken = 0
        for i in range(n):
            table = rows[i]
            if cow[i]:
                replacement = fresh[taken]
                taken += 1
                for layer in self.layers:
                    layer.copy_block(table[-1], replacement)
                if self.allocator.release(table[-1]):
                    # Sibling already split its own tail this step: keep the
                    # freed-blocks-are-zeroed invariant.
                    for layer in self.layers:
                        layer.clear_block(table[-1])
                table[-1] = replacement
            if grows[i]:
                table.extend(fresh[taken:taken + grows[i]])
                taken += grows[i]
            if cow[i] or grows[i]:
                self._versions[int(session_ids[i])] += 1
        self._mutated()
        self._plan = None  # shape-shifting batches never reuse the decode plan

        width = max(len(row) for row in rows)
        tables = np.zeros((n, width), dtype=np.int64)
        for i, row in enumerate(rows):
            tables[i, :len(row)] = row

        max_count = int(counts.max())
        t_grid = _position_range(max_count)[None, :]
        valid = t_grid < counts[:, None]
        pos = lengths[:, None] + t_grid
        blk_col = np.where(valid, pos // block_size, 0)
        write_blocks = tables[np.arange(n)[:, None], blk_col][valid]
        write_offsets = (pos % block_size)[valid]
        row_index, token_index = np.nonzero(valid)
        # Padded query positions clamp to the row's last valid position so
        # their (discarded) outputs stay in positional-embedding range.
        positions = lengths[:, None] + np.minimum(t_grid, counts[:, None] - 1)
        return PagedMultiStepContext(session_ids, tables, counts, lengths,
                                     write_blocks, write_offsets, row_index,
                                     token_index, positions, block_size)

    def commit_multi_step(self, session_ids: np.ndarray,
                          counts: np.ndarray) -> None:
        """Advance per-session lengths after a ragged multi-token step."""
        for sid, count in zip(session_ids, counts):
            self._lengths[int(sid)] += int(count)
            self._versions[int(sid)] += 1
        self._mutated()
        self._plan = None

    def truncate_session(self, session_id: int, new_length: int) -> None:
        """Roll a session back to ``new_length`` tokens (speculation rollback).

        Releases the tail blocks past ``ceil(new_length / block_size)`` —
        freshly appended by :meth:`prepare_multi_step`, hence exclusively
        owned (forks happen between steps, and a shared partial tail was
        already copy-on-write split before any draft token landed in it), so
        the release cannot disturb a sibling.  Rejected tokens left inside
        the kept tail block are invisible: every future gather masks at the
        committed length and every future append overwrites them.
        """
        if session_id not in self._tables:
            raise ValueError(f"session {session_id} is not live")
        current = self._lengths[session_id]
        if not 0 < new_length <= current:
            raise ValueError(
                f"cannot truncate session {session_id} from {current} to "
                f"{new_length} tokens")
        if new_length == current:
            return
        table = self._tables[session_id]
        keep = self.blocks_needed(new_length)
        while len(table) > keep:
            block = table.pop()
            if self.allocator.release(block):
                for layer in self.layers:
                    layer.clear_block(block)
        self._lengths[session_id] = new_length
        self._versions[session_id] += 1
        self._mutated()
        self._plan = None

    # ------------------------------------------------------------------ #
    def check_invariants(self, external_refs: Optional[Dict[int, int]] = None) -> None:
        """Assert pool-accounting consistency (used by the stress tests).

        ``external_refs`` maps block id -> references held outside any
        session table (e.g. by a prefix cache).  Raises ``AssertionError``
        with a description on the first violated invariant.
        """
        alloc = self.allocator
        table_refs = np.zeros(alloc.num_blocks, dtype=np.int64)
        for sid, table in self._tables.items():
            assert len(table) == self.blocks_needed(self._lengths[sid]), (
                f"session {sid}: {len(table)} blocks for length "
                f"{self._lengths[sid]} (block_size {self.block_size})")
            for block in table:
                table_refs[block] += 1
        for block, count in (external_refs or {}).items():
            table_refs[block] += count
        live = np.flatnonzero(alloc.refcounts > 0)
        assert np.array_equal(table_refs, alloc.refcounts), (
            "refcount mismatch: counted "
            f"{table_refs[live].tolist()} vs recorded "
            f"{alloc.refcounts[live].tolist()} on live blocks {live.tolist()}")
        free = set(alloc._free)
        assert len(free) == len(alloc._free), "free list contains duplicates"
        for block in free:
            assert alloc.refcounts[block] == 0, (
                f"block {block} is both free and referenced")
            assert block < alloc.high_water, (
                f"block {block} freed beyond the high-water mark {alloc.high_water}")
        assert alloc.blocks_in_use == len(live), (
            f"in-use counter {alloc.blocks_in_use} != {len(live)} live blocks")
        assert alloc.blocks_in_use + len(free) == alloc.high_water, (
            "allocator accounting does not balance: "
            f"{alloc.blocks_in_use} in use + {len(free)} free != "
            f"high water {alloc.high_water}")
        # A block referenced exactly once belongs to exactly one table (or one
        # external holder) — exclusive ownership; shared blocks are read-only
        # until copy-on-write gives the writer its own copy.
        single = np.flatnonzero(alloc.refcounts == 1)
        owners = table_refs[single]
        assert np.all(owners == 1), "exclusively owned block with wrong ref tally"
        assert set(self._versions) == set(self._tables), (
            "table-version bookkeeping out of sync with live sessions")
        # A cached step plan that claims to be current must actually mirror
        # the live tables and lengths of its batch.
        plan = self._plan
        if plan is not None and plan.epoch == self._epoch:
            for i, sid in enumerate(plan.session_ids):
                sid = int(sid)
                if sid not in self._tables:
                    continue  # stale ids force a rebuild on the next step
                if plan.versions[i] != self._versions[sid]:
                    continue  # row pending refresh (epoch check already bumped)
                table = self._tables[sid]
                assert list(plan.tables[i, :len(table)]) == table, (
                    f"cached gather row for session {sid} diverged from its "
                    f"block table")
                assert plan.lengths[i] == self._lengths[sid], (
                    f"cached length for session {sid} diverged")
