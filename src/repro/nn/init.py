"""Weight initialization schemes for :mod:`repro.nn` layers.

All initializers return arrays in the substrate's current default dtype (see
:func:`repro.nn.set_default_dtype`), so models built under a ``float32``
default carry float32 parameters end to end.
"""

from __future__ import annotations

import numpy as np

from .tensor import get_default_dtype


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization for (fan_in, fan_out) weights."""
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(get_default_dtype(), copy=False)


def xavier_normal(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def kaiming_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(get_default_dtype(), copy=False)


def normal(shape, rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Small-std normal initialization used by GPT-style transformers."""
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=get_default_dtype())


def _fans(shape) -> tuple[int, int]:
    shape = tuple(shape)
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
