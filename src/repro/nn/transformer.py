"""Transformer building blocks (pre-norm decoder blocks, GPT-style)."""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from .attention import KVCache, LayerKVCache, MultiHeadAttention, causal_mask
from .paged_cache import (
    DEFAULT_BLOCK_SIZE,
    PagedKVCache,
    PagedLayerKVCache,
    PagedStepContext,
)
from .layers import Dropout, GELU, LayerNorm, Linear, Module, ModuleList, Sequential
from .lora import LoRALinear
from .tensor import Tensor


@lru_cache(maxsize=256)
def _position_index(start: int, stop: int) -> np.ndarray:
    index = np.arange(start, stop)
    index.setflags(write=False)  # shared across calls; must stay immutable
    return index


class FeedForward(Module):
    """Position-wise feed-forward network with optional LoRA adapters."""

    def __init__(self, d_model: int, d_hidden: int, dropout: float = 0.0,
                 lora_rank: int = 0, lora_alpha: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)

        def make(in_f: int, out_f: int) -> Module:
            if lora_rank > 0:
                return LoRALinear(in_f, out_f, rank=lora_rank, alpha=lora_alpha, rng=rng)
            return Linear(in_f, out_f, rng=rng)

        self.fc1 = make(d_model, d_hidden)
        self.fc2 = make(d_hidden, d_model)
        self.activation = GELU()
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.fc2(self.activation(self.fc1(x))))


class TransformerBlock(Module):
    """Pre-norm transformer decoder block: LN -> attention -> LN -> MLP."""

    def __init__(self, d_model: int, num_heads: int, d_hidden: Optional[int] = None,
                 dropout: float = 0.0, lora_rank: int = 0, lora_alpha: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        d_hidden = d_hidden or 4 * d_model
        self.norm1 = LayerNorm(d_model)
        self.attention = MultiHeadAttention(d_model, num_heads, dropout=dropout,
                                            lora_rank=lora_rank, lora_alpha=lora_alpha, rng=rng)
        self.norm2 = LayerNorm(d_model)
        self.mlp = FeedForward(d_model, d_hidden, dropout=dropout,
                               lora_rank=lora_rank, lora_alpha=lora_alpha, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None,
                layer_cache: Optional[LayerKVCache] = None) -> Tensor:
        x = x + self.attention(self.norm1(x), mask=mask, layer_cache=layer_cache)
        x = x + self.mlp(self.norm2(x))
        return x

    def forward_step(self, x: Tensor, layer_cache: PagedLayerKVCache,
                     step: PagedStepContext) -> Tensor:
        """Batched multi-session single-token step (see ``MultiHeadAttention.forward_step``)."""
        x = x + self.attention.forward_step(self.norm1(x), layer_cache, step)
        x = x + self.mlp(self.norm2(x))
        return x


class TransformerBackbone(Module):
    """Stack of transformer blocks with learned positional embeddings.

    This is the shared "body" of the LLM substitute: it consumes a sequence of
    *embeddings* (either token embeddings or the token-like embeddings emitted
    by the NetLLM multimodal encoder) and produces contextualized output
    features of the same dimension.

    Autoregressive decoding should use :meth:`init_cache` plus the ``cache``
    argument of :meth:`forward`: each call then consumes only the new token
    embeddings and attends against the cached keys/values, turning O(T·L²)
    full-window decoding into O(T·L).
    """

    def __init__(self, d_model: int, num_layers: int, num_heads: int,
                 max_seq_len: int = 256, d_hidden: Optional[int] = None,
                 dropout: float = 0.0, lora_rank: int = 0, lora_alpha: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.max_seq_len = max_seq_len
        from .layers import Parameter
        from . import init as weight_init

        self.position_embedding = Parameter(
            weight_init.normal((max_seq_len, d_model), rng), name="position_embedding")
        self.blocks = ModuleList([
            TransformerBlock(d_model, num_heads, d_hidden=d_hidden, dropout=dropout,
                             lora_rank=lora_rank, lora_alpha=lora_alpha, rng=rng)
            for _ in range(num_layers)
        ])
        self.final_norm = LayerNorm(d_model)

    def init_cache(self) -> KVCache:
        """Return a fresh, empty KV cache sized for this backbone."""
        return KVCache(len(self.blocks))

    def init_paged_cache(self, max_blocks: int,
                         block_size: int = DEFAULT_BLOCK_SIZE) -> PagedKVCache:
        """Return an empty paged multi-session KV cache for this backbone."""
        return PagedKVCache(len(self.blocks), max_blocks, block_size=block_size)

    def forward_step(self, embeddings: Tensor, cache: PagedKVCache,
                     session_ids: np.ndarray,
                     counts: Optional[np.ndarray] = None) -> Tensor:
        """Advance ``len(session_ids)`` independent sessions by one token each.

        ``embeddings`` is ``(n, 1, d_model)``; row *i* is the newest token of
        the paged-cache session ``session_ids[i]``.  Each session keeps its
        own position (the length of its cached history), so sessions admitted
        at different times — with different prompt lengths — decode together
        in a single batched forward with per-session positional embeddings.
        The cache is updated in place (allocating or copy-on-writing tail
        blocks as needed) and the per-session lengths advance by one.

        With ``counts`` given the step is a ragged *multi-token* verification
        forward (speculative decoding): ``embeddings`` is
        ``(n, max(counts), d_model)``, row *i* consumes its first
        ``counts[i]`` positions (the pending sampled token plus draft
        tokens; padded positions replicate the last valid token and their
        outputs are ignored), and per-session lengths advance by
        ``counts[i]``.  Rejected tokens are rolled back by the caller via
        :meth:`PagedKVCache.truncate_session`.
        """
        session_ids = np.asarray(session_ids, dtype=np.int64)
        n, seq, d_model = embeddings.shape
        if d_model != self.d_model:
            raise ValueError(f"expected embedding dim {self.d_model}, got {d_model}")
        if counts is None and seq != 1:
            raise ValueError("forward_step consumes one token per session")
        if n != len(session_ids):
            raise ValueError(f"{n} embedding rows for {len(session_ids)} sessions")
        if len(session_ids) != len(set(session_ids.tolist())):
            raise ValueError("duplicate sessions in one batched step")
        if counts is not None:
            counts = np.asarray(counts, dtype=np.int64)
            if len(counts) != n:
                raise ValueError(f"{len(counts)} counts for {n} sessions")
            if seq != int(counts.max()):
                raise ValueError(f"{seq} embedding positions for a step of "
                                 f"up to {int(counts.max())} tokens")
            worst = max(cache.length(int(sid)) + int(count)
                        for sid, count in zip(session_ids, counts))
        else:
            worst = max(cache.length(int(sid)) for sid in session_ids) + 1
        if worst > self.max_seq_len:
            raise ValueError(f"sequence length {worst} exceeds maximum {self.max_seq_len}")
        if counts is not None:
            step = cache.prepare_multi_step(session_ids, counts)
            pos_embedding = self.position_embedding.data[step.positions]
        else:
            step = cache.prepare_step(session_ids)
            pos_embedding = self.position_embedding.data[step.positions][:, None, :]
        x = embeddings + Tensor(pos_embedding, dtype=pos_embedding.dtype)
        for block, layer_cache in zip(self.blocks, cache.layers):
            x = block.forward_step(x, layer_cache, step)
        if counts is not None:
            cache.commit_multi_step(session_ids, counts)
        else:
            cache.commit_step(session_ids)
        return self.final_norm(x)

    def forward(self, embeddings: Tensor, causal: bool = True,
                cache: Optional[KVCache] = None) -> Tensor:
        """Run the backbone over ``(batch, seq, d_model)`` embeddings.

        With ``cache`` given, ``embeddings`` holds only the tokens that follow
        the already-cached positions; positional embeddings are offset by the
        cache length and the cache is updated in place.
        """
        batch, seq, d_model = embeddings.shape
        if d_model != self.d_model:
            raise ValueError(f"expected embedding dim {self.d_model}, got {d_model}")
        past = cache.seq_len if cache is not None else 0
        if past + seq > self.max_seq_len:
            raise ValueError(f"sequence length {past + seq} exceeds maximum {self.max_seq_len}")
        x = embeddings + self.position_embedding[_position_index(past, past + seq)]
        if cache is not None:
            if not causal:
                raise ValueError("KV-cached decoding is inherently causal; "
                                 "causal=False is not supported with a cache")
            if cache.num_layers != len(self.blocks):
                raise ValueError(
                    f"cache has {cache.num_layers} layers but backbone has "
                    f"{len(self.blocks)}; build it with init_cache()")
            for block, layer_cache in zip(self.blocks, cache.layers):
                x = block(x, layer_cache=layer_cache)
            return self.final_norm(x)
        mask = causal_mask(seq, x.dtype) if causal else None
        for block in self.blocks:
            x = block(x, mask=mask)
        return self.final_norm(x)
