"""Graph neural network layers for DAG-structured inputs.

Cluster job scheduling represents jobs as directed acyclic graphs.  Both the
Decima baseline and the NetLLM multimodal encoder use a message-passing graph
encoder to turn per-node features plus the adjacency structure into fixed-size
embeddings.  The implementation here is a mean-aggregation graph convolution
(GraphSAGE-style) that works directly on dense adjacency matrices, which is
adequate for the DAG sizes produced by the synthetic TPC-H-like generator.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .layers import Linear, Module, ReLU, Sequential
from .tensor import Tensor, concatenate, get_default_dtype


def normalized_adjacency(adjacency: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
    """Row-normalize an adjacency matrix (optionally with self loops).

    Aggregating with the row-normalized matrix averages the features of each
    node's neighbours, which keeps activations well-scaled regardless of node
    degree.
    """
    adjacency = np.asarray(adjacency, dtype=get_default_dtype())
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    matrix = adjacency.copy()
    if add_self_loops:
        matrix = matrix + np.eye(matrix.shape[0])
    row_sums = matrix.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    return matrix / row_sums


class GraphConv(Module):
    """Single message-passing layer: ``h' = act(A_norm h W_neigh + h W_self)``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.self_transform = Linear(in_features, out_features, rng=rng)
        self.neighbor_transform = Linear(in_features, out_features, rng=rng)

    def forward(self, node_features: Tensor, norm_adjacency: np.ndarray) -> Tensor:
        aggregated = Tensor(norm_adjacency) @ node_features
        return (self.self_transform(node_features) + self.neighbor_transform(aggregated)).relu()


class GraphEncoder(Module):
    """Stack of :class:`GraphConv` layers plus global mean pooling.

    ``forward`` returns per-node embeddings; :meth:`encode_graph` additionally
    pools them into a single graph-level feature vector, which is what the
    multimodal encoder feeds to the LLM as a token-like embedding.
    """

    def __init__(self, in_features: int, hidden_features: int, out_features: int,
                 num_layers: int = 2, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [out_features]
        layers = [GraphConv(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        self._layers = layers
        for index, layer in enumerate(layers):
            setattr(self, f"conv{index}", layer)
        self.out_features = out_features

    def forward(self, node_features: Tensor, adjacency: np.ndarray) -> Tensor:
        norm = normalized_adjacency(adjacency)
        h = node_features
        for layer in self._layers:
            h = layer(h, norm)
        return h

    def encode_graph(self, node_features: Tensor, adjacency: np.ndarray) -> Tensor:
        """Return a single ``(out_features,)`` embedding for the whole graph."""
        node_embeddings = self.forward(node_features, adjacency)
        return node_embeddings.mean(axis=0)
