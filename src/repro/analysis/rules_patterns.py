"""Pattern rules REP001/REP002/REP004/REP005.

Each of these mechanizes an invariant this repo learned the hard way —
the rationale for every rule is spelled out in ``docs/static_analysis.md``
with a pointer to the PR or bug that motivated it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .findings import Finding
from .registry import Rule, register
from .walker import Project, SourceFile

# --------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------- #


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain (else None)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _none_defaulted_params(func: ast.AST) -> Set[str]:
    """Parameters of ``func`` whose default value is ``None``."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
        return set()
    args = func.args
    names: Set[str] = set()
    positional = list(args.posonlyargs) + list(args.args)
    for arg, default in zip(positional[len(positional) - len(args.defaults):],
                            args.defaults):
        if isinstance(default, ast.Constant) and default.value is None:
            names.add(arg.arg)
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if (default is not None and isinstance(default, ast.Constant)
                and default.value is None):
            names.add(arg.arg)
    return names


def _is_optional_annotation(annotation: Optional[ast.AST]) -> bool:
    """``Optional[X]`` / ``X | None`` (the declared may-be-None contract)."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        return _terminal_name(annotation.value) == "Optional"
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op,
                                                        ast.BitOr):
        for side in (annotation.left, annotation.right):
            if isinstance(side, ast.Constant) and side.value is None:
                return True
    return False


def _same_target(a: ast.AST, b: ast.AST) -> bool:
    """Structural equality for the guard targets we care about:
    a bare name, or a ``self.attr`` chain."""
    if isinstance(a, ast.Name) and isinstance(b, ast.Name):
        return a.id == b.id
    if isinstance(a, ast.Attribute) and isinstance(b, ast.Attribute):
        return a.attr == b.attr and _same_target(a.value, b.value)
    return False


def _none_check_atoms(test: ast.AST) -> List[Tuple[ast.AST, bool]]:
    """Flatten a guard test into ``(target, is_not_none)`` comparisons.

    ``x is not None`` yields ``(x, True)``; ``x is None`` yields
    ``(x, False)``.  ``and``-conjunctions contribute every clause (any one
    establishes its target); other shapes contribute nothing.
    """
    atoms: List[Tuple[ast.AST, bool]] = []
    stack = [test]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            stack.extend(node.values)
            continue
        if (isinstance(node, ast.Compare) and len(node.ops) == 1
                and isinstance(node.comparators[0], ast.Constant)
                and node.comparators[0].value is None):
            if isinstance(node.ops[0], ast.IsNot):
                atoms.append((node.left, True))
            elif isinstance(node.ops[0], ast.Is):
                atoms.append((node.left, False))
    return atoms


def _terminates(stmts: List[ast.stmt]) -> bool:
    """Whether a statement list unconditionally leaves the current block."""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Raise, ast.Return, ast.Continue, ast.Break))


def _matches(expr: ast.AST, targets: List[ast.AST]) -> bool:
    return any(_same_target(expr, t) for t in targets)


def _assigns_non_none(stmt: ast.stmt, targets: List[ast.AST]) -> bool:
    """``self.x = Thread(...)`` (or another evidently-non-None value)
    establishes non-None for the statements that follow it."""
    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        return False
    value = stmt.value
    stmt_targets = (stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target])
    if not any(_matches(t, targets) for t in stmt_targets):
        return False
    if isinstance(value, ast.Constant):
        return value.value is not None
    return isinstance(value, (ast.Call, ast.List, ast.Dict, ast.Set,
                              ast.Tuple, ast.ListComp, ast.DictComp,
                              ast.SetComp, ast.JoinedStr))


def _prior_statements_establish(block: List[ast.stmt], child: ast.stmt,
                                targets: List[ast.AST]) -> bool:
    """Earlier statements in ``block`` that prove a target non-None at
    ``child``: an early-exit ``if x is None: raise/return/...`` guard, or
    an assignment of an evidently-non-None value."""
    for stmt in block:
        if stmt is child:
            return False
        if (isinstance(stmt, ast.If) and _terminates(stmt.body)
                and not stmt.orelse):
            for target, is_not_none in _none_check_atoms(stmt.test):
                if not is_not_none and _matches(target, targets):
                    return True
        if _assigns_non_none(stmt, targets):
            return True
    return False


def _guarded_not_none(file: SourceFile, node: ast.AST,
                      targets: List[ast.AST]) -> bool:
    """Whether ``node`` sits where one of ``targets`` is established
    non-None.  Recognized shapes, all short-circuit-sound:

    * ``if x is not None:`` body / ``if x is None:`` orelse (also the
      matching arms of a conditional expression);
    * ``x is not None and x.m()`` / ``x is None or x.m()``;
    * an earlier ``if x is None: raise/return/continue/break`` in the
      same statement block;
    * an earlier ``x = <evidently non-None value>`` in the same block
      (``self._thread = Thread(...)`` then ``self._thread.start()``).
    """
    child = node
    for ancestor in file.ancestors(node):
        if isinstance(ancestor, (ast.If, ast.IfExp)):
            in_body = (child in ancestor.body if isinstance(ancestor, ast.If)
                       else child is ancestor.body)
            in_orelse = (child in ancestor.orelse
                         if isinstance(ancestor, ast.If)
                         else child is ancestor.orelse)
            for target, is_not_none in _none_check_atoms(ancestor.test):
                if _matches(target, targets):
                    if is_not_none and in_body:
                        return True
                    if not is_not_none and in_orelse:
                        return True
        elif isinstance(ancestor, ast.BoolOp) and child in ancestor.values:
            # Short-circuit: in `a and b`, b only evaluates when a held;
            # in `a or b`, b only evaluates when a failed.
            idx = ancestor.values.index(child)
            for prior in ancestor.values[:idx]:
                for target, is_not_none in _none_check_atoms(prior):
                    if not _matches(target, targets):
                        continue
                    if is_not_none and isinstance(ancestor.op, ast.And):
                        return True
                    if not is_not_none and isinstance(ancestor.op, ast.Or):
                        return True
        elif isinstance(child, ast.stmt):
            for _, value in ast.iter_fields(ancestor):
                if (isinstance(value, list) and child in value
                        and _prior_statements_establish(value, child,
                                                        targets)):
                    return True
        child = ancestor
    return False


# --------------------------------------------------------------------- #
# REP001 — falsy collection guard
# --------------------------------------------------------------------- #

#: Left-operand names that read as booleans/flags: ``x or y`` over these is
#: ordinary boolean logic, not a collection default.
_BOOLISH_PREFIXES = ("is_", "has_", "was_", "should_", "can_", "did_",
                     "use_", "allow_", "enable_", "requires_", "stop_on",
                     "stopped_", "need_", "want_")
_BOOLISH_NAMES = {"training", "enabled", "disabled", "verbose", "transient",
                  "record", "ok", "done", "ready", "running", "closed",
                  "stream", "drain", "found", "matched", "valid"}

#: Calls whose argument position is an explicit truthiness context.
_TRUTHINESS_CALLS = {"bool", "any", "all"}


def _is_boolish(name: str) -> bool:
    return name in _BOOLISH_NAMES or name.startswith(_BOOLISH_PREFIXES)


def _in_test_position(file: SourceFile, node: ast.AST) -> bool:
    """Whether the BoolOp's truthiness (not its value) is what's consumed."""
    child = node
    for ancestor in file.ancestors(node):
        if isinstance(ancestor, (ast.BoolOp, ast.UnaryOp)):
            child = ancestor
            continue
        if isinstance(ancestor, (ast.If, ast.While)):
            return child is ancestor.test
        if isinstance(ancestor, ast.IfExp):
            return child is ancestor.test
        if isinstance(ancestor, ast.Assert):
            return child is ancestor.test
        if isinstance(ancestor, ast.comprehension):
            return child in ancestor.ifs
        if isinstance(ancestor, ast.Call):
            name = _terminal_name(ancestor.func)
            return (name in _TRUTHINESS_CALLS
                    and child in ancestor.args)
        return False
    return False


@register
class FalsyCollectionGuard(Rule):
    """``seq or default`` silently replaces a legitimately-empty collection.

    The PR 2 fig03 bug class: ``pool or self._collect(...)`` treated an
    *empty* experience pool — a perfectly valid state — as "no pool", and
    recollected from scratch.  The same trap hits ``0``/``0.0`` timestamps
    and ``""`` strings.  The one benign shape is the None-defaulted
    argument idiom, ``def f(kwargs=None): ... (kwargs or {})`` — there the
    parameter is either None or caller-supplied, and an empty caller value
    means the same thing as None (see ``engine.py`` adapters/runtimes and
    ``paged_cache.py`` external_refs).
    """

    id = "REP001"
    title = "falsy-collection guard (`seq or default`)"
    hint = ("write the intent explicitly: `x if x is not None else default` "
            "(an empty collection/0.0/\"\" is a valid value, not a missing "
            "one); the `param or {}` idiom is exempt only for parameters "
            "defaulted to None")

    def check(self, project: Project) -> Iterable[Finding]:
        for file in project.files:
            for node in ast.walk(file.tree):
                if not (isinstance(node, ast.BoolOp)
                        and isinstance(node.op, ast.Or)):
                    continue
                left = node.values[0]
                name = _terminal_name(left)
                if name is None:  # complex left operand: out of scope
                    continue
                if _is_boolish(name):
                    continue
                if _in_test_position(file, node):
                    continue
                if isinstance(left, ast.Name):
                    func = file.enclosing_function(left)
                    if name in _none_defaulted_params(func):
                        continue  # the benign `(kwargs or {})` idiom
                yield self.finding(
                    file.rel, node.lineno, node.col_offset,
                    f"`{name} or ...` treats a falsy `{name}` (empty "
                    f"collection, 0, 0.0, \"\") as missing — the fig03 "
                    f"empty-pool bug class")


# --------------------------------------------------------------------- #
# REP002 — hot-path power
# --------------------------------------------------------------------- #

#: Directories whose forwards sit on the serving hot path.
_HOT_PATH_MARKERS = ("repro/nn/", "repro/serve/")
#: `x ** k` exponents worth two multiplies instead.
_SMALL_EXPONENTS = {2, 3, 4}


@register
class HotPathPower(Rule):
    """``np.power`` / ``x ** k`` on the model hot path.

    The PR 2 gelu regression: ``np.power(x, 3)`` on float64 arrays is
    ~70x slower elementwise than ``x * x * x``, and gelu sits on every
    transformer MLP forward — the fix alone doubled full-window forward
    throughput.  Inside ``repro/nn`` and ``repro/serve``, every
    ``np.power`` call and small-integer ``**`` on a non-constant base is
    suspect until a noqa says why it is not (e.g. the general-exponent
    autograd op in ``nn/tensor.py``).
    """

    id = "REP002"
    title = "hot-path power (`np.power` / `x ** k`)"
    hint = ("replace with repeated multiplication (`x * x * x`): np.power "
            "on float64 arrays is ~70x slower elementwise (the PR 2 gelu "
            "regression); noqa the general-exponent cases")

    def check(self, project: Project) -> Iterable[Finding]:
        for file in project.files:
            if not any(marker in file.rel for marker in _HOT_PATH_MARKERS):
                continue
            for node in ast.walk(file.tree):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "power"
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in ("np", "numpy")):
                    yield self.finding(
                        file.rel, node.lineno, node.col_offset,
                        "np.power() on the nn/serve hot path — the gelu "
                        "~70x elementwise regression class")
                elif (isinstance(node, ast.BinOp)
                        and isinstance(node.op, ast.Pow)
                        and isinstance(node.right, ast.Constant)
                        and isinstance(node.right.value, (int, float))
                        and float(node.right.value).is_integer()
                        and int(node.right.value) in _SMALL_EXPONENTS
                        and not isinstance(node.left, ast.Constant)):
                    k = int(node.right.value)
                    yield self.finding(
                        file.rel, node.lineno, node.col_offset,
                        f"`x ** {k}` with a small integer exponent on the "
                        f"nn/serve hot path; prefer "
                        f"{' * '.join(['x'] * k)}")


# --------------------------------------------------------------------- #
# REP004 — deprecated API ban
# --------------------------------------------------------------------- #


@register
class DeprecatedApiBan(Rule):
    """Deprecated serve-API surfaces must not gain new callers.

    ``RequestMetrics.time_to_first_token`` was deprecated for ``ttft_s``
    in PR 7 and the stringly ``submit("task", payload)`` surface for typed
    requests in PR 4.  Both still work (behavior-preserving shims with
    DeprecationWarnings) — which is exactly why a machine has to stop new
    code from using them.  The definition site and the pinned
    deprecation-warning tests carry noqa.
    """

    id = "REP004"
    title = "deprecated-API ban (time_to_first_token, stringly submit)"
    hint = ("use RequestMetrics.ttft_s and typed GenerateRequest/"
            "DecisionRequest submissions; only the definition site and the "
            "pinned deprecation tests may noqa this")

    def check(self, project: Project) -> Iterable[Finding]:
        for file in project.files:
            for node in ast.walk(file.tree):
                if (isinstance(node, ast.Attribute)
                        and node.attr == "time_to_first_token"):
                    yield self.finding(
                        file.rel, node.lineno, node.col_offset,
                        "time_to_first_token is deprecated; use ttft_s")
                elif (isinstance(node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))
                        and node.name == "time_to_first_token"):
                    yield self.finding(
                        file.rel, node.lineno, node.col_offset,
                        "definition of deprecated time_to_first_token "
                        "(keep exactly one, noqa'd, until removal)")
                elif (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "submit"
                        and node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)):
                    yield self.finding(
                        file.rel, node.lineno, node.col_offset,
                        f"stringly submit({node.args[0].value!r}, ...) is "
                        f"deprecated; submit a typed GenerateRequest/"
                        f"DecisionRequest")


# --------------------------------------------------------------------- #
# REP005 — telemetry/fault guard discipline
# --------------------------------------------------------------------- #


def _optional_self_attrs(cls: ast.ClassDef) -> Dict[str, int]:
    """Attributes of ``cls`` declared may-be-None, -> declaration line.

    Three declaration shapes count:

    * a class-body ``attr = None`` (e.g. ``PagedKVCache.fault_hook``),
    * ``self.attr: Optional[X] = ...`` (e.g. the engine's ``_trace``),
    * ``self.attr = param`` where the method parameter is annotated
      ``Optional[X]`` / ``X | None`` (e.g. the session manager's
      ``faults`` / ``telemetry``).
    """
    optional: Dict[str, int] = {}
    for stmt in cls.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is None):
            optional[stmt.targets[0].id] = stmt.lineno
    for method in (n for n in cls.body
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))):
        params = {}
        for arg in (list(method.args.posonlyargs) + list(method.args.args)
                    + list(method.args.kwonlyargs)):
            params[arg.arg] = arg.annotation
        for node in ast.walk(method):
            target = None
            value = None
            if isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                is_optional = _is_optional_annotation(node.annotation)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                is_optional = (isinstance(value, ast.Name)
                               and value.id in params
                               and _is_optional_annotation(params[value.id]))
            else:
                continue
            if (is_optional and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                optional.setdefault(target.attr, node.lineno)
    return optional


@register
class TelemetryGuard(Rule):
    """Calls through optional instrumentation hooks need an `is None` guard.

    The serve stack's observability/chaos contract (PR 6/PR 7): with
    telemetry or fault injection disabled, every instrumented site costs
    exactly one ``is None`` check — the hook attribute is ``None`` and the
    call is skipped.  An unguarded ``self._trace.note_x(...)`` either
    crashes the disabled path or forces the hook to exist and eat the call
    overhead.  This rule finds method calls through attributes that are
    *declared* optional (``Optional[...]`` annotation, ``attr = None``
    class default, or assignment from an ``Optional`` parameter) outside a
    dominating ``is not None`` branch.
    """

    id = "REP005"
    title = "telemetry-guard check (optional hooks behind `is None` guards)"
    hint = ("wrap the call: `if self._trace is not None: self._trace.m()` "
            "— the telemetry=False contract is one None-check per "
            "instrumented site")

    def check(self, project: Project) -> Iterable[Finding]:
        for file in project.files:
            for cls in (n for n in ast.walk(file.tree)
                        if isinstance(n, ast.ClassDef)):
                optional = _optional_self_attrs(cls)
                if not optional:
                    continue
                yield from self._check_class(file, cls, optional)

    def _check_class(self, file: SourceFile, cls: ast.ClassDef,
                     optional: Dict[str, int]) -> Iterable[Finding]:
        for method in (n for n in cls.body
                       if isinstance(n, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))):
            # Local aliases: `trace = self._trace` makes guards on either
            # name count (the engine's step() uses this shape).
            aliases: Dict[str, str] = {}
            for node in ast.walk(method):
                if (isinstance(node, ast.Assign) and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                        and isinstance(node.value, ast.Attribute)
                        and isinstance(node.value.value, ast.Name)
                        and node.value.value.id == "self"
                        and node.value.attr in optional):
                    aliases[node.targets[0].id] = node.value.attr
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                attr = self._optional_receiver(node.func, optional, aliases)
                if attr is None:
                    continue
                targets: List[ast.AST] = [
                    ast.Attribute(value=ast.Name(id="self"), attr=attr)]
                targets.extend(ast.Name(id=alias)
                               for alias, bound in aliases.items()
                               if bound == attr)
                if _guarded_not_none(file, node, targets):
                    continue
                yield self.finding(
                    file.rel, node.lineno, node.col_offset,
                    f"call through optional hook `{attr}` outside an "
                    f"`is not None` guard (declared optional at "
                    f"{file.rel}:{optional[attr]})")

    @staticmethod
    def _optional_receiver(func: ast.AST, optional: Dict[str, int],
                           aliases: Dict[str, str]) -> Optional[str]:
        """The optional attr a call goes through: ``self.X(...)``,
        ``self.X.m(...)``, ``alias(...)`` or ``alias.m(...)``."""
        # self.X(...) — calling the hook itself (e.g. fault_hook("kv.admit"))
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            if func.value.id == "self" and func.attr in optional:
                return func.attr
            if func.value.id in aliases:  # alias.m(...)
                return aliases[func.value.id]
        # self.X.m(...) — method call on the hook
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
                and func.value.attr in optional):
            return func.value.attr
        # alias(...) — calling an aliased hook directly
        if isinstance(func, ast.Name) and func.id in aliases:
            return aliases[func.id]
        return None
