"""REP006 — static lock discipline for the threaded serving engine.

The serving stack runs real threads: the engine's serve loop, caller
threads inside ``submit()``/``stream()``/``cancel()``, and test harness
threads.  Its locking design is deliberately simple — one reentrant engine
lock, a condition variable wrapping that same lock, everything else
documented as engine-lock-protected — and this module checks the two ways
that design rots:

1. **Lock-order cycles.**  Every lexical ``with self._a:`` nesting (also
   through direct ``self._method()`` calls, using each method's transitive
   acquired-lock set) contributes an edge ``a -> b`` to a per-class
   lock-order graph.  A cycle in that graph is a potential deadlock: two
   threads taking the same locks in opposite orders.

2. **Cross-thread unlocked access.**  An attribute written under a lock in
   one method but read with no lock held in code reachable from a thread
   entry point (public methods, ``threading.Thread(target=self._x)``
   targets) is a torn-read/stale-read hazard.  Attributes only ever
   written in ``__init__`` are exempt — they are immutable after
   publication.

Scope and honesty: the analysis is lexical.  It sees ``with`` blocks, not
bare ``.acquire()``/``.release()`` pairs (the repo has none, and the rule
keeps it that way by construction: manual pairs are invisible to the
checker, so they never gain "checked" status).  Classes that own no lock
attribute are skipped entirely — ``SessionManager`` and friends are
engine-lock-protected by documented design and single-threaded from the
lock owner's point of view.

``build_lock_graph`` is exported standalone so the fast-lane gate can
assert the current ``repro.serve`` graph is cycle-free as a named
invariant, not just "zero findings".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .findings import Finding
from .registry import Rule, register
from .walker import Project, SourceFile

#: Constructor names that create a lock-like object.
_LOCK_CTORS = {"Lock", "RLock", "Condition"}

#: Mutating container methods: a ``self.attr.append(x)`` call is a write
#: to ``attr`` for discipline purposes.
_MUTATOR_METHODS = {"append", "extend", "insert", "add", "remove", "discard",
                    "pop", "popleft", "popitem", "clear", "update",
                    "setdefault", "appendleft", "sort"}


def _ctor_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"`` (else None)."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


# --------------------------------------------------------------------- #
# Per-method facts
# --------------------------------------------------------------------- #


@dataclass
class AttrAccess:
    attr: str
    line: int
    col: int
    is_write: bool
    held: FrozenSet[str]


@dataclass
class MethodFacts:
    name: str
    line: int
    #: Locks this method acquires lexically: (lock, held-at-acquisition).
    acquisitions: List[Tuple[str, FrozenSet[str]]] = field(
        default_factory=list)
    #: Direct ``self._m()`` calls: (callee, held-at-call-site, line).
    calls: List[Tuple[str, FrozenSet[str], int]] = field(default_factory=list)
    accesses: List[AttrAccess] = field(default_factory=list)
    #: Locks ever acquired here or in any transitively-called method
    #: (filled by the fixpoint in :class:`LockClass`).
    all_acquired: Set[str] = field(default_factory=set)


@dataclass
class LockClass:
    """Lock-discipline facts for one lock-owning class."""

    file: SourceFile
    node: ast.ClassDef
    #: attr -> canonical lock it acquires (``Condition(self._lock)``
    #: canonicalizes to ``_lock``; a bare ``Condition()`` is its own lock).
    locks: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, MethodFacts] = field(default_factory=dict)
    #: Method names a ``threading.Thread(target=self.X)`` points at.
    thread_targets: Set[str] = field(default_factory=set)
    #: Attributes assigned anywhere in ``__init__``.
    init_attrs: Set[str] = field(default_factory=set)
    #: Attributes assigned outside ``__init__``.
    mutated_attrs: Set[str] = field(default_factory=set)

    @property
    def qualname(self) -> str:
        return f"{self.file.rel}::{self.node.name}"

    # ----- extraction ------------------------------------------------- #

    def extract(self) -> None:
        self._find_locks()
        if not self.locks:
            return
        for stmt in self.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_method(stmt)
        self._close_acquired_sets()

    def _find_locks(self) -> None:
        for node in ast.walk(self.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            attr = _self_attr(node.targets[0])
            if attr is None or not isinstance(node.value, ast.Call):
                continue
            ctor = _ctor_name(node.value)
            if ctor not in _LOCK_CTORS:
                continue
            canonical = attr
            if ctor == "Condition" and node.value.args:
                wrapped = _self_attr(node.value.args[0])
                if wrapped is not None:
                    canonical = wrapped  # Condition(self._lock) IS _lock
            self.locks[attr] = canonical

    def _extract_method(self, method: ast.FunctionDef) -> None:
        facts = MethodFacts(name=method.name, line=method.lineno)
        self.methods[method.name] = facts
        for stmt in method.body:
            self._walk(stmt, frozenset(), facts, method.name)

    def _walk(self, node: ast.AST, held: FrozenSet[str],
              facts: MethodFacts, method_name: str) -> None:
        if isinstance(node, ast.With):
            acquired: Set[str] = set()
            for item in node.items:
                self._walk(item.context_expr, held, facts, method_name)
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    facts.acquisitions.append((lock, held | acquired))
                    acquired.add(lock)
            inner = held | acquired
            for stmt in node.body:
                self._walk(stmt, inner, facts, method_name)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested defs run later, under unknown lock state
        self._record(node, held, facts, method_name)
        for child in ast.iter_child_nodes(node):
            self._walk(child, held, facts, method_name)

    def _lock_of(self, expr: ast.AST) -> Optional[str]:
        attr = _self_attr(expr)
        if attr is not None and attr in self.locks:
            return self.locks[attr]
        return None

    def _record(self, node: ast.AST, held: FrozenSet[str],
                facts: MethodFacts, method_name: str) -> None:
        if isinstance(node, ast.Call):
            callee = _self_attr(node.func)
            if callee is not None:
                facts.calls.append((callee, held, node.lineno))
            # Thread(target=self._serve_loop) marks a thread entry point.
            if _ctor_name(node) == "Thread":
                for kw in node.keywords:
                    if kw.arg == "target":
                        target = _self_attr(kw.value)
                        if target is not None:
                            self.thread_targets.add(target)
            # self.attr.append(...) mutates attr.
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATOR_METHODS):
                receiver = _self_attr(node.func.value)
                if receiver is not None and receiver not in self.locks:
                    self._note_access(receiver, node, True, held, method_name,
                                      facts)
        elif isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is None or attr in self.locks:
                return
            is_write = isinstance(node.ctx, (ast.Store, ast.Del))
            # `self.x[k] = v` / `self.x[k] += v`: the subscript stores,
            # the attribute itself loads — but it IS a mutation of x.
            parent = self.file.parent(node)
            if (isinstance(parent, ast.Subscript)
                    and isinstance(parent.ctx, (ast.Store, ast.Del))):
                is_write = True
            gp = self.file.parent(parent) if parent is not None else None
            if (isinstance(parent, ast.Subscript)
                    and isinstance(gp, ast.AugAssign)
                    and gp.target is parent):
                is_write = True
            self._note_access(attr, node, is_write, held, method_name, facts)

    def _note_access(self, attr: str, node: ast.AST, is_write: bool,
                     held: FrozenSet[str], method_name: str,
                     facts: MethodFacts) -> None:
        facts.accesses.append(AttrAccess(
            attr=attr, line=node.lineno, col=node.col_offset,
            is_write=is_write, held=held))
        if is_write:
            if method_name == "__init__":
                self.init_attrs.add(attr)
            else:
                self.mutated_attrs.add(attr)
        elif method_name == "__init__":
            # Plain assigns in __init__ (Store ctx) also land here via the
            # Store branch above; Loads in __init__ are publication-safe.
            pass
        if method_name == "__init__" and is_write:
            self.init_attrs.add(attr)

    def _close_acquired_sets(self) -> None:
        """Fixpoint: each method's transitive acquired-lock set."""
        for facts in self.methods.values():
            facts.all_acquired = {lock for lock, _ in facts.acquisitions}
        changed = True
        while changed:
            changed = False
            for facts in self.methods.values():
                for callee, _, _ in facts.calls:
                    target = self.methods.get(callee)
                    if target is None:
                        continue
                    extra = target.all_acquired - facts.all_acquired
                    if extra:
                        facts.all_acquired |= extra
                        changed = True

    # ----- lock-order graph ------------------------------------------- #

    def order_edges(self) -> Dict[str, Set[str]]:
        """``held -> then-acquired`` edges (direct and via self-calls)."""
        edges: Dict[str, Set[str]] = {lock: set()
                                      for lock in set(self.locks.values())}
        for facts in self.methods.values():
            for lock, held in facts.acquisitions:
                for outer in held:
                    if outer != lock:  # reentrant re-acquisition is fine
                        edges.setdefault(outer, set()).add(lock)
            for callee, held, _ in facts.calls:
                target = self.methods.get(callee)
                if target is None or not held:
                    continue
                for inner in target.all_acquired:
                    for outer in held:
                        if outer != inner:
                            edges.setdefault(outer, set()).add(inner)
        return edges

    # ----- cross-thread unlocked access ------------------------------- #

    def entry_points(self) -> Set[str]:
        """Methods other threads call into: the public surface plus
        explicit ``Thread(target=...)`` targets."""
        entries = set(self.thread_targets)
        for name, facts in self.methods.items():
            if not name.startswith("_"):
                entries.add(name)
        entries.discard("__init__")
        return entries

    def may_run_unlocked(self) -> Set[str]:
        """Methods reachable, with no lock held, from an entry point."""
        unlocked = set(self.entry_points())
        changed = True
        while changed:
            changed = False
            for name in list(unlocked):
                facts = self.methods.get(name)
                if facts is None:
                    continue
                for callee, held, _ in facts.calls:
                    if not held and callee in self.methods \
                            and callee not in unlocked:
                        unlocked.add(callee)
                        changed = True
        return unlocked


def extract_lock_classes(project: Project) -> List[LockClass]:
    """Every lock-owning class in the project, facts extracted."""
    classes: List[LockClass] = []
    for file in project.files:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            cls = LockClass(file=file, node=node)
            cls.extract()
            if cls.locks:
                classes.append(cls)
    return classes


def build_lock_graph(project: Project) -> Dict[str, Dict[str, Set[str]]]:
    """``class qualname -> {lock -> locks acquired while holding it}``.

    The fast-lane gate asserts ``find_cycles`` of every graph is empty —
    "the serve stack's lock-order graph is cycle-free" is a named project
    invariant, kept true by machine.
    """
    return {cls.qualname: cls.order_edges()
            for cls in extract_lock_classes(project)}


def find_cycles(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles in a small lock graph (DFS, deduplicated by
    rotation so each cycle reports once)."""
    cycles: List[List[str]] = []
    seen: Set[Tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: List[str],
            on_path: Set[str]) -> None:
        for nxt in sorted(edges.get(node, ())):
            if nxt == start:
                rotation = min(range(len(path)),
                               key=lambda i: path[i:] + path[:i])
                key = tuple(path[rotation:] + path[:rotation])
                if key not in seen:
                    seen.add(key)
                    cycles.append(list(key))
            elif nxt not in on_path and nxt > start:
                # Only explore nodes > start: each cycle is found exactly
                # once, rooted at its smallest node.
                path.append(nxt)
                on_path.add(nxt)
                dfs(start, nxt, path, on_path)
                on_path.discard(nxt)
                path.pop()

    for start in sorted(edges):
        dfs(start, start, [start], {start})
    return cycles


@register
class LockDiscipline(Rule):
    """Potential deadlocks and cross-thread unlocked access."""

    id = "REP006"
    title = "lock discipline (order cycles, cross-thread unlocked access)"
    hint = ("deadlock cycles: pick one global acquisition order; unlocked "
            "access: take the (reentrant) lock around the read, or prove "
            "the attribute is only touched by one thread and note why "
            "in a noqa")

    def check(self, project: Project) -> Iterable[Finding]:
        for cls in extract_lock_classes(project):
            yield from self._check_order(cls)
            yield from self._check_unlocked(cls)

    def _check_order(self, cls: LockClass) -> Iterable[Finding]:
        for cycle in find_cycles(cls.order_edges()):
            chain = " -> ".join(cycle + [cycle[0]])
            yield self.finding(
                cls.file.rel, cls.node.lineno, cls.node.col_offset,
                f"lock-order cycle in {cls.node.name}: {chain} — two "
                f"threads taking these locks in opposite orders deadlock")

    def _check_unlocked(self, cls: LockClass) -> Iterable[Finding]:
        # Which attributes are written under some lock, outside __init__?
        locked_writers: Dict[str, str] = {}
        for facts in cls.methods.values():
            if facts.name == "__init__":
                continue
            for access in facts.accesses:
                if access.is_write and access.held:
                    locked_writers.setdefault(access.attr, facts.name)
        unlocked_methods = cls.may_run_unlocked()
        reported: Set[Tuple[str, int]] = set()
        for name in sorted(unlocked_methods):
            facts = cls.methods.get(name)
            if facts is None:
                continue
            for access in facts.accesses:
                if access.held or access.attr not in locked_writers:
                    continue
                if access.attr in cls.init_attrs \
                        and access.attr not in cls.mutated_attrs:
                    continue  # immutable after __init__: publication-safe
                key = (access.attr, access.line)
                if key in reported:
                    continue
                reported.add(key)
                kind = "write to" if access.is_write else "read of"
                yield self.finding(
                    cls.file.rel, access.line, access.col,
                    f"unlocked {kind} `{access.attr}` in "
                    f"{cls.node.name}.{name}() — written under a lock in "
                    f"{cls.node.name}.{locked_writers[access.attr]}(), so "
                    f"this access races with it")
