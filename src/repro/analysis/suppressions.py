"""``# repro: noqa[REPxxx]`` suppression handling.

A finding is *suppressed* — acknowledged, kept visible in ``--show-
suppressed`` output and in the JSON counts, but not gate-failing — when
the flagged line (or any line of the flagged multi-line statement) carries
a project noqa comment naming its rule:

    inner = np.power(x, 3)  # repro: noqa[REP002] general-exponent autograd op

The bare form ``# repro: noqa`` suppresses every rule on the line; the
bracketed form takes a comma-separated rule list and is strongly preferred
(a bare noqa also swallows findings you have not seen yet).  Text after
the bracket is the human justification — the convention (enforced by
review, not by machine) is that every suppression says *why*.

Only real comments count: the noqa pattern inside a string literal is
ignored, because the walker's comment map comes from ``tokenize``.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List, Optional

from .findings import Finding
from .walker import SourceFile

NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<rules>[A-Za-z0-9_,\s]+)\])?",
    re.IGNORECASE)

#: Sentinel: a bare ``# repro: noqa`` suppresses every rule.
ALL_RULES = frozenset({"*"})


def noqa_rules(comment: str) -> Optional[FrozenSet[str]]:
    """The rule ids a comment suppresses (None: not a noqa comment)."""
    match = NOQA_RE.search(comment)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return ALL_RULES
    return frozenset(rule.strip().upper() for rule in rules.split(",")
                     if rule.strip())


def line_suppresses(file: SourceFile, line: int, rule: str) -> bool:
    comment = file.comments.get(line)
    if comment is None:
        return False
    rules = noqa_rules(comment)
    if rules is None:
        return False
    return rules is ALL_RULES or "*" in rules or rule.upper() in rules


def apply_suppressions(findings: List[Finding],
                       project_files: dict) -> List[Finding]:
    """Mark findings whose line carries a matching noqa comment."""
    out: List[Finding] = []
    for finding in findings:
        file = project_files.get(finding.path)
        if file is not None and line_suppresses(file, finding.line,
                                                finding.rule):
            finding = finding.suppress()
        out.append(finding)
    return out
