"""The rule registry: one :class:`Rule` per mechanized project invariant.

Every rule carries an id (``REPxxx``), a one-line title, a severity and a
fix hint, and implements ``check(project) -> Iterable[Finding]`` over the
parsed :class:`~repro.analysis.walker.Project`.  Rules register themselves
at import time via the :func:`register` decorator; ``repro.analysis.run``
and the CLI resolve them through :func:`get_rules`, which also implements
``--select`` / ``--ignore`` filtering.

Adding a rule is three steps (see ``docs/static_analysis.md``):

1. Subclass :class:`Rule` in a ``rules_*`` module, set ``id``/``title``/
   ``hint``, implement ``check``.
2. Decorate it with ``@register``.
3. Add one triggering and one non-triggering fixture to
   ``tests/test_static_analysis.py`` — a rule without a fixture proving it
   fires is a rule that silently rotted.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence, Type

from .findings import SEVERITY_ERROR, Finding
from .walker import Project

RULE_ID_RE = re.compile(r"^REP\d{3}$")


class Rule:
    """Base class for one project-invariant check."""

    id: str = ""
    title: str = ""
    severity: str = SEVERITY_ERROR
    hint: str = ""

    def check(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, file_rel: str, line: int, col: int,
                message: str, hint: Optional[str] = None) -> Finding:
        return Finding(rule=self.id, severity=self.severity, path=file_rel,
                       line=line, col=col, message=message,
                       hint=self.hint if hint is None else hint)


#: id -> rule instance, in registration order.
RULES: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index a rule by its id."""
    rule = rule_cls()
    if not RULE_ID_RE.match(rule.id):
        raise ValueError(f"rule id must match REPxxx, got {rule.id!r}")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return rule_cls


def get_rules(select: Optional[Sequence[str]] = None,
              ignore: Optional[Sequence[str]] = None) -> List[Rule]:
    """Resolve the rule set to run; unknown ids fail loudly."""
    known = set(RULES)
    for requested in list(select or []) + list(ignore or []):
        if requested.upper() not in known:
            raise ValueError(f"unknown rule {requested!r}; known rules: "
                             f"{sorted(known)}")
    chosen = ([RULES[r.upper()] for r in select] if select
              else list(RULES.values()))
    ignored = {r.upper() for r in (ignore or [])}
    return [rule for rule in chosen if rule.id not in ignored]
