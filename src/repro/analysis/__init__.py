"""repro.analysis — the project's own static analyzer.

Generic linters know Python; they do not know *this* repo.  The rules
here mechanize invariants that were each learned from a real bug or a
real design decision in this tree — the fig03 ``pool or default``
empty-collection bug, the gelu ``np.power`` hot-path regression, the
fault-site catalog, the serve API deprecations, the telemetry
one-None-check contract, and the threaded engine's lock discipline.
``docs/static_analysis.md`` is the rule catalog with the full rationale.

Library use::

    from repro.analysis import run
    findings = run(["src/"])                  # unsuppressed findings
    assert not findings

CLI use::

    python -m repro.analysis src/                      # text report
    python -m repro.analysis --format=json src/        # machine report
    python -m repro.analysis --select REP004 tests/    # one rule only

Suppression::

    x = np.power(a, b)  # repro: noqa[REP002] general-exponent autograd op
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from .registry import RULES, Rule, get_rules, register
from .suppressions import apply_suppressions
from .walker import Project, SourceFile, load_project, parse_source

# Importing the rule modules populates the registry.
from . import rules_patterns  # noqa: F401  (registration side effect)
from . import rules_faults  # noqa: F401  (registration side effect)
from . import lockgraph  # noqa: F401  (registration side effect)
from .lockgraph import build_lock_graph, find_cycles

__all__ = [
    "Finding", "SEVERITY_ERROR", "SEVERITY_WARNING",
    "Rule", "RULES", "register", "get_rules",
    "Project", "SourceFile", "load_project", "parse_source",
    "build_lock_graph", "find_cycles",
    "run", "run_project", "check_sources",
]


def run_project(paths: Sequence[Union[str, "object"]],
                select: Optional[Sequence[str]] = None,
                ignore: Optional[Sequence[str]] = None,
                include_suppressed: bool = False) -> List[Finding]:
    """Analyze files/directories; the CLI and the pytest gate enter here."""
    rules = get_rules(select=select, ignore=ignore)
    project = load_project(paths)
    findings: List[Finding] = list(project.errors)
    for rule in rules:
        findings.extend(rule.check(project))
    findings = apply_suppressions(findings, project.by_path())
    findings.sort(key=Finding.sort_key)
    if include_suppressed:
        return findings
    return [f for f in findings if not f.suppressed]


def run(paths: Sequence[Union[str, "object"]],
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
        include_suppressed: bool = False) -> List[Finding]:
    """Alias of :func:`run_project` — the documented library entry point."""
    return run_project(paths, select=select, ignore=ignore,
                       include_suppressed=include_suppressed)


def check_sources(sources: dict,
                  select: Optional[Sequence[str]] = None,
                  ignore: Optional[Sequence[str]] = None,
                  include_suppressed: bool = False) -> List[Finding]:
    """Analyze in-memory ``{path: source}`` blobs (fixture tests enter
    here — no tmp files needed, and REP002's path scoping still applies
    because the dict keys act as relative paths)."""
    project = Project()
    for path, source in sources.items():
        try:
            project.files.append(parse_source(source, path))
        except SyntaxError as error:
            from .walker import PARSE_RULE, normalize
            project.errors.append(Finding(
                rule=PARSE_RULE, severity=SEVERITY_ERROR,
                path=normalize(path),
                line=error.lineno if error.lineno is not None else 1,
                col=error.offset if error.offset is not None else 0,
                message=f"syntax error: {error.msg}"))
    rules = get_rules(select=select, ignore=ignore)
    findings: List[Finding] = list(project.errors)
    for rule in rules:
        findings.extend(rule.check(project))
    findings = apply_suppressions(findings, project.by_path())
    findings.sort(key=Finding.sort_key)
    if include_suppressed:
        return findings
    return [f for f in findings if not f.suppressed]
