"""The :class:`Finding` record every rule emits.

A finding is one violation of one project invariant at one source
location.  Findings are plain frozen dataclasses so they sort, dedupe and
serialize trivially — the CLI's ``--format=json`` output and the
``benchmarks/check_lint.py`` gate both consume :meth:`Finding.as_dict`
verbatim, which is what makes lint results machine-diffable across PRs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

#: Finding severities.  ``error`` findings are invariant violations that
#: fail the gate; ``warning`` findings are advisory (none of the core
#: rules currently emit them, but custom rules may).
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    #: True when a ``# repro: noqa[REPxxx]`` comment on the flagged line
    #: acknowledges the finding (it then does not fail the gate).
    suppressed: bool = False

    def suppress(self) -> "Finding":
        return replace(self, suppressed=True)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "suppressed": self.suppressed,
        }

    def format(self) -> str:
        """One ``path:line:col: RULE [severity] message`` text line."""
        tag = f"{self.rule} [{'suppressed' if self.suppressed else self.severity}]"
        line = f"{self.path}:{self.line}:{self.col}: {tag} {self.message}"
        if self.hint:
            line += f"  (hint: {self.hint})"
        return line

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)
