"""REP003 — fault-site catalog sync (a cross-file rule).

PR 6 introduced deterministic fault injection keyed by site name:
``self._faults.fire("decode.step")`` at the instrumented site, and
``FAULT_SITES`` in ``repro/serve/faults.py`` as the authoritative catalog
that docs, tests and the CLI's ``--fault-site`` validation all read.  The
two drift in both directions:

* a new instrumented site whose string never lands in the catalog is
  undiscoverable — ``REPRO_FAULTS`` can name it but nothing documents it
  and ``fires_since`` accounting misattributes it;
* a catalog entry whose call site was refactored away is a documented
  fault that can never fire — chaos tests targeting it silently test
  nothing.

This rule extracts the catalog from the ``FAULT_SITES`` dict literal's
AST, collects every fire-style call with a string-literal site argument
across the analyzed files, and reports both directions of drift.  When the
analyzed path set does not include a catalog module at all (fixture dirs,
partial runs over a single file) the rule stays silent — it is a
whole-project consistency check, not a per-file pattern.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from .findings import Finding
from .registry import Rule, register
from .walker import Project, SourceFile

#: The module-level dict literal holding the authoritative site catalog.
CATALOG_NAME = "FAULT_SITES"

#: Callable names whose first string-literal argument is a fault site:
#: ``self._faults.fire("decode.step")`` and the paged cache's injected
#: ``self.fault_hook("kv.admit")``.
_FIRE_NAMES = {"fire", "fault_hook"}


def _catalog_entries(file: SourceFile) -> Optional[Dict[str, int]]:
    """``FAULT_SITES`` keys -> line numbers, if this file defines it."""
    for node in file.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(isinstance(t, ast.Name) and t.id == CATALOG_NAME
                   for t in targets):
            continue
        if not isinstance(value, ast.Dict):
            return None
        entries: Dict[str, int] = {}
        for key in value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                entries[key.value] = key.lineno
        return entries
    return None


def _fire_sites(file: SourceFile) -> Iterable[Tuple[str, ast.Call]]:
    """Every ``(site, call)`` for fire-style calls with literal sites."""
    for node in ast.walk(file.tree):
        if not (isinstance(node, ast.Call) and node.args):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name not in _FIRE_NAMES:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield first.value, node


@register
class FaultSiteCatalogSync(Rule):
    """Fire sites and the ``FAULT_SITES`` catalog must agree both ways."""

    id = "REP003"
    title = "fault-site catalog sync (fire sites <-> FAULT_SITES)"
    hint = ("add new sites to FAULT_SITES in repro/serve/faults.py with a "
            "one-line description; delete catalog entries whose call "
            "sites are gone")

    def check(self, project: Project) -> Iterable[Finding]:
        catalog: Optional[Dict[str, int]] = None
        catalog_file: Optional[SourceFile] = None
        for file in project.files:
            entries = _catalog_entries(file)
            if entries is not None:
                catalog, catalog_file = entries, file
                break
        if catalog is None or catalog_file is None:
            return  # no catalog in this path set: nothing to sync against

        used = set()
        for file in project.files:
            for site, call in _fire_sites(file):
                used.add(site)
                if site not in catalog:
                    yield self.finding(
                        file.rel, call.lineno, call.col_offset,
                        f"fault site {site!r} is fired here but missing "
                        f"from {CATALOG_NAME} ({catalog_file.rel})")
        for site, lineno in catalog.items():
            if site not in used:
                yield self.finding(
                    catalog_file.rel, lineno, 0,
                    f"{CATALOG_NAME} entry {site!r} has no fire() call "
                    f"site anywhere in the analyzed tree — chaos tests "
                    f"targeting it test nothing")
