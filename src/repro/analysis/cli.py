"""``python -m repro.analysis`` — the project linter's command line.

Exit codes follow the gate contract: 0 means no unsuppressed findings,
1 means at least one, 2 means the run itself failed (bad arguments,
missing paths).  ``--format=json`` emits a machine-readable report that
``benchmarks/check_lint.py`` diffs against its committed baseline the same
way ``check_regression.py`` diffs performance numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence

from . import run_project
from .registry import RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based project lint + static lock-discipline "
                    "checker for the repro tree.")
    parser.add_argument("paths", nargs="*",
                        help="files and/or directories to analyze")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="REPxxx",
                        help="run only these rules (repeatable)")
    parser.add_argument("--ignore", action="append", default=None,
                        metavar="REPxxx",
                        help="skip these rules (repeatable)")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print findings silenced by "
                             "`# repro: noqa[...]` comments")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _list_rules() -> None:
    for rule in RULES.values():
        print(f"{rule.id}  [{rule.severity}]  {rule.title}")
        if rule.hint:
            print(f"       hint: {rule.hint}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0
    if not args.paths:
        parser.error("the following arguments are required: paths")

    started = time.perf_counter()
    try:
        findings = run_project(args.paths, select=args.select,
                               ignore=args.ignore, include_suppressed=True)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    unsuppressed = [f for f in findings if not f.suppressed]
    shown = findings if args.show_suppressed else unsuppressed

    if args.format == "json":
        per_rule: dict = {}
        for finding in findings:
            bucket = per_rule.setdefault(
                finding.rule, {"unsuppressed": 0, "suppressed": 0})
            bucket["suppressed" if finding.suppressed
                   else "unsuppressed"] += 1
        print(json.dumps({
            "findings": [f.as_dict() for f in shown],
            "counts": per_rule,
            "total_unsuppressed": len(unsuppressed),
            "total_suppressed": len(findings) - len(unsuppressed),
            "elapsed_s": round(elapsed, 3),
        }, indent=2, sort_keys=True))
    else:
        for finding in shown:
            print(finding.format())
        suppressed_count = len(findings) - len(unsuppressed)
        summary = (f"{len(unsuppressed)} finding(s)"
                   f" ({suppressed_count} suppressed)"
                   f" in {elapsed:.2f}s")
        print(summary if not shown else f"\n{summary}")

    return 1 if unsuppressed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
