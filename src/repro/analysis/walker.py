"""File discovery and parsing: turn paths into an analyzable :class:`Project`.

Each Python file is parsed once into a :class:`SourceFile` carrying the
AST, a child→parent node map (rules need enclosing-context questions like
"is this ``or`` in an ``if`` test?") and the per-line comment map that
drives ``# repro: noqa[REPxxx]`` suppression.  Files that fail to parse
become ``REP000`` findings instead of crashing the run — an analyzer that
dies on the first syntax error cannot gate a tree.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .findings import SEVERITY_ERROR, Finding

#: Directory names never descended into.
EXCLUDED_DIRS = {".git", "__pycache__", ".venv", "venv", "build", "dist",
                 ".mypy_cache", ".pytest_cache", "node_modules", ".eggs"}

#: Rule id reserved for files the walker itself could not analyze.
PARSE_RULE = "REP000"


@dataclass
class SourceFile:
    """One parsed Python source file plus the maps rules query."""

    path: Path
    #: Normalized posix-style path string; rules scope on substrings of
    #: this (e.g. REP002 only fires under ``repro/nn`` / ``repro/serve``).
    rel: str
    source: str
    tree: ast.Module
    #: line number -> comment text (from tokenize, so string literals that
    #: merely *contain* ``#`` never count as comments).
    comments: Dict[int, str] = field(default_factory=dict)
    #: child AST node -> parent AST node, for enclosing-context queries.
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        seen = self.parents.get(node)
        while seen is not None:
            yield seen
            seen = self.parents.get(seen)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None


@dataclass
class Project:
    """Every parsed file of one analyzer run, plus walker-level findings."""

    files: List[SourceFile] = field(default_factory=list)
    #: REP000 parse failures (these are real findings: a file the analyzer
    #: cannot read is a file the invariants cannot protect).
    errors: List[Finding] = field(default_factory=list)

    def by_path(self) -> Dict[str, SourceFile]:
        return {f.rel: f for f in self.files}


def _comment_map(source: str) -> Dict[int, str]:
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the AST parse is the authority on whether the file is valid
    return comments


def _parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def normalize(path: Union[str, Path]) -> str:
    return Path(path).as_posix()


def parse_source(source: str, path: Union[str, Path]) -> SourceFile:
    """Parse one in-memory source blob (fixture tests enter here)."""
    path = Path(path)
    tree = ast.parse(source, filename=str(path))
    return SourceFile(path=path, rel=normalize(path), source=source,
                      tree=tree, comments=_comment_map(source),
                      parents=_parent_map(tree))


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files and directories mix freely)."""
    found: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_file():
            if entry.suffix == ".py":
                found.append(entry)
            continue
        if not entry.is_dir():
            raise FileNotFoundError(f"no such file or directory: {entry}")
        for candidate in sorted(entry.rglob("*.py")):
            if any(part in EXCLUDED_DIRS for part in candidate.parts):
                continue
            found.append(candidate)
    # De-dupe while preserving order (overlapping path arguments).
    seen = set()
    unique = []
    for path in found:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def load_project(paths: Sequence[Union[str, Path]]) -> Project:
    project = Project()
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            project.errors.append(Finding(
                rule=PARSE_RULE, severity=SEVERITY_ERROR, path=normalize(path),
                line=1, col=0, message=f"cannot read file: {error}"))
            continue
        try:
            project.files.append(parse_source(source, path))
        except SyntaxError as error:
            project.errors.append(Finding(
                rule=PARSE_RULE, severity=SEVERITY_ERROR, path=normalize(path),
                line=error.lineno if error.lineno is not None else 1,
                col=error.offset if error.offset is not None else 0,
                message=f"syntax error: {error.msg}"))
    return project
