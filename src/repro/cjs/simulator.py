"""Discrete-event cluster simulator for DAG job scheduling.

The simulator owns a pool of identical executors.  Whenever executors are
free and runnable stages exist, it asks the scheduler for a decision —
*(which runnable stage to run next, how many executors to give it)* — exactly
the two-part action of Decima and of the paper's CJS task.  The chosen stage
then runs its tasks in waves over the granted executors and releases them on
completion, unlocking child stages.

Job completion time (JCT) is ``finish_time - arrival_time`` per job; the
evaluation metric is the average JCT over the workload (§A.6).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .jobs import Job, Stage


@dataclass
class SchedulingDecision:
    """A scheduler's answer: run ``stage_id`` of ``job_id`` on ``num_executors``."""

    job_id: int
    stage_id: int
    num_executors: int


@dataclass
class StageState:
    """Bookkeeping for one stage during simulation."""

    job_id: int
    stage_id: int
    status: str = "blocked"  # blocked -> runnable -> running -> done
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    executors: int = 0


@dataclass
class CJSResult:
    """Outcome of simulating one workload."""

    job_completion_times: Dict[int, float] = field(default_factory=dict)
    job_arrivals: Dict[int, float] = field(default_factory=dict)
    makespan: float = 0.0
    decisions: int = 0

    @property
    def jcts(self) -> np.ndarray:
        return np.asarray([self.job_completion_times[j] - self.job_arrivals[j]
                           for j in sorted(self.job_completion_times)], dtype=np.float64)

    @property
    def average_jct(self) -> float:
        jcts = self.jcts
        return float(jcts.mean()) if jcts.size else 0.0


@dataclass
class SchedulingContext:
    """Snapshot handed to schedulers when a decision is needed."""

    time: float
    free_executors: int
    total_executors: int
    jobs: Dict[int, Job]
    stage_states: Dict[Tuple[int, int], StageState]
    runnable: List[Tuple[int, int]]  # (job_id, stage_id) pairs

    def stage(self, job_id: int, stage_id: int) -> Stage:
        return self.jobs[job_id].stages[stage_id]

    def remaining_job_work(self, job_id: int) -> float:
        """Total work of the job's stages that have not finished yet."""
        total = 0.0
        for stage_id, stage in self.jobs[job_id].stages.items():
            state = self.stage_states[(job_id, stage_id)]
            if state.status != "done":
                total += stage.total_work
        return total

    def active_jobs(self) -> List[int]:
        return sorted({job_id for (job_id, _), state in self.stage_states.items()
                       if state.status != "done"})


class ClusterSimulator:
    """Event-driven simulator of a homogeneous executor pool."""

    def __init__(self, jobs: Sequence[Job], num_executors: int) -> None:
        if num_executors < 1:
            raise ValueError("num_executors must be >= 1")
        if not jobs:
            raise ValueError("at least one job is required")
        self.jobs: Dict[int, Job] = {job.job_id: job for job in jobs}
        self.num_executors = num_executors

    # ------------------------------------------------------------------ #
    def run(self, scheduler, decision_callback=None) -> CJSResult:
        """Simulate the workload under ``scheduler``.

        ``scheduler`` must implement ``schedule(context) -> SchedulingDecision``.
        ``decision_callback(context, decision)``, when given, is invoked for
        every decision — the DD-LRNA experience collector uses it to record
        trajectories without touching scheduler internals.
        """
        if hasattr(scheduler, "reset"):
            scheduler.reset()
        stage_states: Dict[Tuple[int, int], StageState] = {}
        for job in self.jobs.values():
            for stage_id in job.stages:
                stage_states[(job.job_id, stage_id)] = StageState(job.job_id, stage_id)

        result = CJSResult()
        for job in self.jobs.values():
            result.job_arrivals[job.job_id] = job.arrival_time

        # Event queue: (time, sequence, kind, payload)
        events: List[Tuple[float, int, str, Tuple[int, int]]] = []
        seq = 0
        for job in self.jobs.values():
            heapq.heappush(events, (job.arrival_time, seq, "arrival", (job.job_id, -1)))
            seq += 1

        free = self.num_executors
        now = 0.0
        arrived: set[int] = set()
        running: Dict[Tuple[int, int], int] = {}

        def unlock_runnable(job_id: int) -> None:
            job = self.jobs[job_id]
            for stage_id in job.stages:
                state = stage_states[(job_id, stage_id)]
                if state.status != "blocked":
                    continue
                parents_done = all(
                    stage_states[(job_id, parent)].status == "done"
                    for parent in job.parents(stage_id)
                )
                if parents_done:
                    state.status = "runnable"

        def runnable_stages() -> List[Tuple[int, int]]:
            return [(job_id, stage_id) for (job_id, stage_id), state in stage_states.items()
                    if state.status == "runnable" and job_id in arrived]

        def dispatch() -> None:
            """Keep asking the scheduler while work and executors are available."""
            nonlocal free, seq
            while free > 0:
                candidates = runnable_stages()
                if not candidates:
                    return
                context = SchedulingContext(
                    time=now, free_executors=free, total_executors=self.num_executors,
                    jobs=self.jobs, stage_states=stage_states, runnable=candidates,
                )
                decision = scheduler.schedule(context)
                if decision is None:
                    return
                key = (decision.job_id, decision.stage_id)
                if key not in set(candidates):
                    raise ValueError(f"scheduler chose non-runnable stage {key}")
                allocation = int(np.clip(decision.num_executors, 1, free))
                stage = self.jobs[decision.job_id].stages[decision.stage_id]
                allocation = min(allocation, stage.num_tasks)
                waves = int(np.ceil(stage.num_tasks / allocation))
                duration = waves * stage.task_duration
                state = stage_states[key]
                state.status = "running"
                state.start_time = now
                state.executors = allocation
                running[key] = allocation
                free -= allocation
                result.decisions += 1
                if decision_callback is not None:
                    decision_callback(context, SchedulingDecision(decision.job_id,
                                                                  decision.stage_id, allocation))
                heapq.heappush(events, (now + duration, seq, "finish", key))
                seq += 1

        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == "arrival":
                job_id = payload[0]
                arrived.add(job_id)
                unlock_runnable(job_id)
            else:  # stage finish
                key = payload
                job_id, stage_id = key
                state = stage_states[key]
                state.status = "done"
                state.finish_time = now
                free += running.pop(key)
                unlock_runnable(job_id)
                if all(stage_states[(job_id, sid)].status == "done"
                       for sid in self.jobs[job_id].stages):
                    result.job_completion_times[job_id] = now
            dispatch()

        unfinished = [key for key, state in stage_states.items() if state.status != "done"]
        if unfinished:
            raise RuntimeError(f"simulation ended with unfinished stages: {unfinished[:5]}")
        result.makespan = now
        return result


def run_workload(scheduler, jobs: Sequence[Job], num_executors: int,
                 decision_callback=None) -> CJSResult:
    """Convenience wrapper around :class:`ClusterSimulator`."""
    return ClusterSimulator(jobs, num_executors).run(scheduler, decision_callback)
