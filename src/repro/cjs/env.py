"""Observation encoding and trajectory collection for learning-based CJS.

Learned schedulers (Decima, NetLLM) need a fixed-size view of the scheduling
state.  Following Decima, the observation at each decision point consists of

* per-candidate features for up to :data:`MAX_CANDIDATES` runnable stages
  (task count, task duration, stage work, remaining work of the owning job and
  its rank among candidates, job age, number of runnable stages in the job,
  validity mask), candidates
  listed in arrival/FIFO order so that picking the right one requires reading
  the features, and
* global features (free-executor fraction, number of active jobs, wall time).

Actions have two components, as in the paper (Table 1): the candidate index
of the stage to run next, and a parallelism bucket giving the fraction of the
currently free executors to grant.

:func:`collect_trajectory` replays any scheduler over a workload and records
``(observation, action, reward)`` tuples, with the standard Decima reward
``-(number of active jobs) x (elapsed time)`` between decisions, whose sum
equals the negative total job completion time.  This is what the DD-LRNA
experience collector consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .jobs import Job
from .simulator import (
    CJSResult,
    ClusterSimulator,
    SchedulingContext,
    SchedulingDecision,
)

#: Maximum number of candidate stages encoded in one observation.
MAX_CANDIDATES = 8
#: Features per candidate stage.
CANDIDATE_FEATURES = 8
#: Global features appended after the candidate block.
GLOBAL_FEATURES = 3
#: Discrete parallelism buckets (fraction of free executors to allocate).
PARALLELISM_FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def observation_size() -> int:
    """Length of the flattened CJS observation vector."""
    return MAX_CANDIDATES * CANDIDATE_FEATURES + GLOBAL_FEATURES


def ordered_candidates(context: SchedulingContext) -> List[Tuple[int, int]]:
    """Runnable stages in FIFO (arrival time, job id, stage id) order, truncated."""
    ordered = sorted(
        context.runnable,
        key=lambda key: (context.jobs[key[0]].arrival_time, key[0], key[1]),
    )
    return ordered[:MAX_CANDIDATES]


def encode_observation(context: SchedulingContext) -> np.ndarray:
    """Encode a scheduling context into the flat observation vector."""
    candidates = ordered_candidates(context)
    features = np.zeros((MAX_CANDIDATES, CANDIDATE_FEATURES))
    runnable_per_job: Dict[int, int] = {}
    for job_id, _ in context.runnable:
        runnable_per_job[job_id] = runnable_per_job.get(job_id, 0) + 1
    remaining_work = [context.remaining_job_work(job_id) for job_id, _ in candidates]
    # Rank of each candidate's owning-job remaining work (0 = least work left).
    work_rank = np.argsort(np.argsort(remaining_work)) if candidates else np.zeros(0)
    for row, (job_id, stage_id) in enumerate(candidates):
        stage = context.stage(job_id, stage_id)
        job = context.jobs[job_id]
        features[row] = [
            stage.num_tasks / 20.0,
            stage.task_duration / 4.0,
            stage.total_work / 40.0,
            remaining_work[row] / 200.0,
            work_rank[row] / MAX_CANDIDATES,
            (context.time - job.arrival_time) / 100.0,
            runnable_per_job.get(job_id, 0) / 5.0,
            1.0,  # validity mask
        ]
    global_features = np.asarray([
        context.free_executors / max(context.total_executors, 1),
        len(context.active_jobs()) / 10.0,
        context.time / 500.0,
    ])
    return np.concatenate([features.reshape(-1), global_features])


def decision_from_action(context: SchedulingContext, candidate_index: int,
                         parallelism_bucket: int) -> SchedulingDecision:
    """Translate a (candidate index, parallelism bucket) action into a decision.

    Invalid candidate indices are clamped to the nearest valid candidate so
    that any action a learned policy emits is executable — the same guarantee
    the NetLLM networking head gives by construction.
    """
    candidates = ordered_candidates(context)
    index = int(np.clip(candidate_index, 0, len(candidates) - 1))
    bucket = int(np.clip(parallelism_bucket, 0, len(PARALLELISM_FRACTIONS) - 1))
    job_id, stage_id = candidates[index]
    fraction = PARALLELISM_FRACTIONS[bucket]
    executors = max(1, int(round(fraction * context.free_executors)))
    return SchedulingDecision(job_id=job_id, stage_id=stage_id, num_executors=executors)


def action_from_decision(context: SchedulingContext, decision: SchedulingDecision
                         ) -> Tuple[int, int]:
    """Inverse of :func:`decision_from_action`, used when recording teacher actions."""
    candidates = ordered_candidates(context)
    key = (decision.job_id, decision.stage_id)
    try:
        index = candidates.index(key)
    except ValueError:
        index = 0
    fraction = decision.num_executors / max(context.free_executors, 1)
    bucket = int(np.argmin([abs(fraction - f) for f in PARALLELISM_FRACTIONS]))
    return index, bucket


@dataclass
class CJSTransition:
    """One (state, action, reward) step of a scheduling trajectory."""

    observation: np.ndarray
    candidate_index: int
    parallelism_bucket: int
    reward: float
    time: float


@dataclass
class CJSTrajectory:
    """A full scheduling trajectory plus the resulting workload metrics."""

    transitions: List[CJSTransition]
    result: CJSResult

    @property
    def total_reward(self) -> float:
        return float(sum(t.reward for t in self.transitions))


def collect_trajectory(scheduler, jobs: Sequence[Job], num_executors: int) -> CJSTrajectory:
    """Run ``scheduler`` over ``jobs`` and record its decisions as a trajectory.

    Rewards follow Decima: between consecutive decisions, each active job
    accrues a penalty proportional to the elapsed time, so maximizing the sum
    of rewards minimizes the total (and hence average) job completion time.
    """
    records: List[Dict] = []

    def callback(context: SchedulingContext, decision: SchedulingDecision) -> None:
        index, bucket = action_from_decision(context, decision)
        records.append({
            "observation": encode_observation(context),
            "candidate_index": index,
            "parallelism_bucket": bucket,
            "time": context.time,
            "active_jobs": len(context.active_jobs()),
        })

    result = ClusterSimulator(jobs, num_executors).run(scheduler, decision_callback=callback)

    transitions: List[CJSTransition] = []
    for i, record in enumerate(records):
        next_time = records[i + 1]["time"] if i + 1 < len(records) else result.makespan
        elapsed = max(0.0, next_time - record["time"])
        reward = -record["active_jobs"] * elapsed
        transitions.append(CJSTransition(
            observation=record["observation"],
            candidate_index=record["candidate_index"],
            parallelism_bucket=record["parallelism_bucket"],
            reward=reward,
            time=record["time"],
        ))
    return CJSTrajectory(transitions=transitions, result=result)
