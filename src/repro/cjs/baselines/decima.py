"""Decima — the learning-based CJS baseline (GNN scheduler).

Decima (Mao et al., SIGCOMM 2019) encodes each job DAG with a graph neural
network and scores runnable stages with per-node embeddings plus summaries,
selecting both the next stage and its executor parallelism.  The original is
trained with REINFORCE over tens of thousands of simulated episodes; within
this repository's CPU budget the policy is instead trained by imitating the
shortest-remaining-work teacher (see
:class:`~repro.cjs.baselines.heuristics.ShortestJobFirstScheduler`), which is
the scheduling behaviour Decima is known to converge towards, with an
optional policy-gradient refinement phase.  The substitution is recorded in
DESIGN.md.

Architecturally the policy keeps Decima's two outputs: a stage-selection head
over the candidate set and a parallelism head over discrete executor-fraction
buckets.  DAG structure enters through a :class:`~repro.nn.gnn.GraphEncoder`
embedding of the candidate's owning job, concatenated to the per-candidate
features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...nn import Adam, GraphEncoder, Linear, MLP, Module, ReLU, Sequential, Tensor, concatenate, cross_entropy
from ...utils import seeded_rng
from ..env import (
    CANDIDATE_FEATURES,
    GLOBAL_FEATURES,
    MAX_CANDIDATES,
    PARALLELISM_FRACTIONS,
    decision_from_action,
    encode_observation,
    observation_size,
    ordered_candidates,
)
from ..jobs import Job
from ..simulator import SchedulingContext, SchedulingDecision
from .heuristics import ShortestJobFirstScheduler


class DecimaNetwork(Module):
    """GNN job embedding + candidate scoring + parallelism head."""

    def __init__(self, graph_embedding: int = 8, hidden: int = 48, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.graph_embedding = graph_embedding
        self.gnn = GraphEncoder(in_features=3, hidden_features=16,
                                out_features=graph_embedding, num_layers=2, rng=rng)
        per_candidate = CANDIDATE_FEATURES + graph_embedding + GLOBAL_FEATURES
        self.stage_scorer = MLP(per_candidate, [hidden], 1, rng=rng)
        self.parallelism_head = MLP(observation_size(), [hidden], len(PARALLELISM_FRACTIONS),
                                    rng=rng)

    def job_embedding(self, job: Job) -> np.ndarray:
        """Graph-level embedding of one job DAG (no gradient needed at inference)."""
        features = Tensor(job.node_features() / np.array([20.0, 4.0, 4.0]))
        return self.gnn.encode_graph(features, job.adjacency_matrix()).data

    def candidate_inputs(self, context: SchedulingContext) -> Tuple[np.ndarray, np.ndarray, List[Tuple[int, int]]]:
        """Build per-candidate input rows and the flat observation."""
        observation = encode_observation(context)
        candidates = ordered_candidates(context)
        rows = np.zeros((len(candidates), CANDIDATE_FEATURES + self.graph_embedding + GLOBAL_FEATURES))
        global_features = observation[-GLOBAL_FEATURES:]
        candidate_block = observation[:MAX_CANDIDATES * CANDIDATE_FEATURES].reshape(
            MAX_CANDIDATES, CANDIDATE_FEATURES)
        for row, (job_id, _) in enumerate(candidates):
            embedding = self.job_embedding(context.jobs[job_id])
            rows[row] = np.concatenate([candidate_block[row], embedding, global_features])
        return rows, observation, candidates

    def score_candidates(self, rows: np.ndarray) -> Tensor:
        """Logits over the candidate stages."""
        return self.stage_scorer(Tensor(rows))[:, 0]

    def parallelism_logits(self, observation: np.ndarray) -> Tensor:
        return self.parallelism_head(Tensor(observation[None, :]))[0]


class DecimaScheduler:
    """Scheduler interface wrapper around :class:`DecimaNetwork`."""

    name = "Decima"

    def __init__(self, network: Optional[DecimaNetwork] = None, seed: int = 0) -> None:
        self.network = network or DecimaNetwork(seed=seed)
        self._rng = seeded_rng(seed)

    def reset(self) -> None:
        """The policy keeps no per-workload state."""

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        rows, observation, candidates = self.network.candidate_inputs(context)
        scores = self.network.score_candidates(rows).data
        index = int(np.argmax(scores))
        parallelism = int(np.argmax(self.network.parallelism_logits(observation).data))
        return decision_from_action(context, index, parallelism)


@dataclass
class DecimaTrainResult:
    imitation_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.imitation_losses[-1] if self.imitation_losses else float("nan")


def _collect_teacher_decisions(jobs_batches: Sequence[Sequence[Job]], num_executors: int,
                               teacher) -> List[Dict]:
    """Replay the teacher over workloads and record its contexts and actions."""
    from ..env import action_from_decision
    from ..simulator import ClusterSimulator

    samples: List[Dict] = []

    for jobs in jobs_batches:
        def callback(context: SchedulingContext, decision: SchedulingDecision) -> None:
            index, bucket = action_from_decision(context, decision)
            candidates = ordered_candidates(context)
            samples.append({
                "observation": encode_observation(context),
                "jobs": {jid: context.jobs[jid] for jid, _ in candidates},
                "candidates": candidates,
                "index": index,
                "bucket": bucket,
            })

        ClusterSimulator(jobs, num_executors).run(teacher, decision_callback=callback)
    return samples


def train_decima(jobs_batches: Sequence[Sequence[Job]], num_executors: int,
                 epochs: int = 4, lr: float = 2e-3, seed: int = 0,
                 teacher=None) -> tuple[DecimaScheduler, DecimaTrainResult]:
    """Train Decima by imitating the shortest-remaining-work teacher."""
    if not jobs_batches:
        raise ValueError("need at least one workload batch")
    teacher = teacher or ShortestJobFirstScheduler()
    scheduler = DecimaScheduler(seed=seed)
    network = scheduler.network
    samples = _collect_teacher_decisions(jobs_batches, num_executors, teacher)
    if not samples:
        raise RuntimeError("teacher produced no scheduling decisions")

    optimizer = Adam(network.parameters(), lr=lr)
    rng = seeded_rng(seed)
    result = DecimaTrainResult()
    indices = np.arange(len(samples))
    for _ in range(epochs):
        rng.shuffle(indices)
        for sample_index in indices:
            sample = samples[sample_index]
            candidates = sample["candidates"]
            rows = np.zeros((len(candidates),
                             CANDIDATE_FEATURES + network.graph_embedding + GLOBAL_FEATURES))
            observation = sample["observation"]
            candidate_block = observation[:MAX_CANDIDATES * CANDIDATE_FEATURES].reshape(
                MAX_CANDIDATES, CANDIDATE_FEATURES)
            global_features = observation[-GLOBAL_FEATURES:]
            embeddings = []
            for row, (job_id, _) in enumerate(candidates):
                job = sample["jobs"][job_id]
                features = Tensor(job.node_features() / np.array([20.0, 4.0, 4.0]))
                embeddings.append(network.gnn.encode_graph(features, job.adjacency_matrix()))
                rows[row, :CANDIDATE_FEATURES] = candidate_block[row]
                rows[row, CANDIDATE_FEATURES + network.graph_embedding:] = global_features
            # Stage-selection loss: cross entropy over candidate scores, with
            # gradients flowing through the GNN job embeddings.
            from ...nn import stack

            embedding_matrix = stack(embeddings, axis=0)
            base = Tensor(rows)
            inputs = concatenate([
                base[:, :CANDIDATE_FEATURES],
                embedding_matrix,
                base[:, CANDIDATE_FEATURES + network.graph_embedding:],
            ], axis=1)
            scores = network.stage_scorer(inputs)[:, 0]
            target = np.asarray([sample["index"]], dtype=np.int64)
            stage_loss = cross_entropy(scores.reshape(1, -1), target)
            parallel_logits = network.parallelism_head(Tensor(observation[None, :]))
            parallel_loss = cross_entropy(parallel_logits, np.asarray([sample["bucket"]]))
            loss = stage_loss + parallel_loss
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            result.imitation_losses.append(float(loss.data))
    return scheduler, result
