"""CJS baseline schedulers: FIFO, Fair, the SJF teacher and Decima."""

from .heuristics import FIFOScheduler, FairScheduler, ShortestJobFirstScheduler
from .decima import DecimaScheduler, train_decima

__all__ = [
    "FIFOScheduler",
    "FairScheduler",
    "ShortestJobFirstScheduler",
    "DecimaScheduler",
    "train_decima",
]
