"""Rule-based cluster schedulers: FIFO, Fair and shortest-job-first.

FIFO and Fair are the two Spark scheduling modes the paper compares against
(§A.3).  :class:`ShortestJobFirstScheduler` is not a paper baseline — it is a
strong heuristic (shortest-remaining-work-first, near-optimal for average
JCT on a single resource pool) used as the teacher for Decima's imitation
warm start and as one of the "existing algorithms" that populate the DD-LRNA
experience pool.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..simulator import SchedulingContext, SchedulingDecision


class FIFOScheduler:
    """Serve jobs strictly in arrival order, giving each all free executors."""

    name = "FIFO"

    def reset(self) -> None:
        """FIFO is stateless."""

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        job_id, stage_id = min(
            context.runnable,
            key=lambda key: (context.jobs[key[0]].arrival_time, key[0], key[1]),
        )
        stage = context.stage(job_id, stage_id)
        allocation = min(context.free_executors, stage.num_tasks)
        return SchedulingDecision(job_id=job_id, stage_id=stage_id, num_executors=allocation)


class FairScheduler:
    """Round-robin over jobs so each receives a roughly equal executor share."""

    name = "Fair"

    def __init__(self) -> None:
        self._last_job: Optional[int] = None

    def reset(self) -> None:
        self._last_job = None

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        jobs_with_work = sorted({job_id for job_id, _ in context.runnable})
        # Rotate to the job after the one served most recently.
        if self._last_job in jobs_with_work:
            pivot = jobs_with_work.index(self._last_job) + 1
            order = jobs_with_work[pivot:] + jobs_with_work[:pivot]
        else:
            order = jobs_with_work
        job_id = order[0]
        self._last_job = job_id
        stage_id = min(sid for jid, sid in context.runnable if jid == job_id)
        stage = context.stage(job_id, stage_id)
        fair_share = max(1, context.free_executors // max(1, len(jobs_with_work)))
        allocation = min(fair_share, stage.num_tasks)
        return SchedulingDecision(job_id=job_id, stage_id=stage_id, num_executors=allocation)


class ShortestJobFirstScheduler:
    """Run the runnable stage of the job with the least remaining work."""

    name = "SJF"

    def reset(self) -> None:
        """SJF is stateless."""

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        def key(candidate):
            job_id, stage_id = candidate
            return (context.remaining_job_work(job_id),
                    context.jobs[job_id].arrival_time, job_id, stage_id)

        job_id, stage_id = min(context.runnable, key=key)
        stage = context.stage(job_id, stage_id)
        allocation = min(context.free_executors, stage.num_tasks)
        return SchedulingDecision(job_id=job_id, stage_id=stage_id, num_executors=allocation)
