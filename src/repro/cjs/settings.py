"""CJS simulation settings (Table 4 of the paper).

The paper scales two knobs between the default and unseen settings: the
number of job requests (200 vs 450) and the executor-resource budget (50k vs
30k units).  The reproduction keeps the same ratios at a smaller absolute
scale so workloads simulate in seconds: the executor pool and job count are
divided by a constant factor, which preserves the load (work per executor)
that drives the relative scheduler ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .jobs import Job, TPCHLikeJobGenerator

#: Scale factor between the paper's absolute numbers and the reproduction's.
SCALE_FACTOR = 10


@dataclass(frozen=True)
class CJSSetting:
    """One row of Table 4 (paper-scale numbers)."""

    name: str
    num_jobs: int
    num_executors: int

    @property
    def scaled_num_jobs(self) -> int:
        return max(4, self.num_jobs // SCALE_FACTOR)

    @property
    def scaled_num_executors(self) -> int:
        return max(2, self.num_executors // SCALE_FACTOR)


#: Table 4 of the paper (executor resources expressed in "k units" -> units here).
CJS_SETTINGS: Dict[str, CJSSetting] = {
    "default_train": CJSSetting("default_train", num_jobs=200, num_executors=50),
    "default_test": CJSSetting("default_test", num_jobs=200, num_executors=50),
    "unseen_setting1": CJSSetting("unseen_setting1", num_jobs=200, num_executors=30),
    "unseen_setting2": CJSSetting("unseen_setting2", num_jobs=450, num_executors=50),
    "unseen_setting3": CJSSetting("unseen_setting3", num_jobs=450, num_executors=30),
}


def build_workload(setting: CJSSetting, seed: int = 0, mean_interarrival: float = 6.0
                   ) -> tuple[List[Job], int]:
    """Materialize (jobs, num_executors) for a setting at reproduction scale."""
    generator = TPCHLikeJobGenerator(seed=seed)
    jobs = generator.generate_workload(setting.scaled_num_jobs,
                                       mean_interarrival=mean_interarrival)
    return jobs, setting.scaled_num_executors
