"""DAG job model and the TPC-H-like synthetic workload generator.

A cluster job is a directed acyclic graph of *stages*; each stage consists of
a number of identical tasks with a common task duration, and a stage can only
start once all of its parent stages have finished.  This is the abstraction
used by Decima and by the ``spark-sched-sim`` codebase the paper builds on.

The TPC-H query DAGs used by the paper are not redistributable, so
:class:`TPCHLikeJobGenerator` synthesizes jobs with the same qualitative
shape: a mix of map-reduce diamonds, chains, joins and fan-in trees, between
two and a dozen stages, with heavy-tailed task counts and durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..utils import seeded_rng


@dataclass
class Stage:
    """One execution stage of a job."""

    stage_id: int
    num_tasks: int
    task_duration: float

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("a stage needs at least one task")
        if self.task_duration <= 0:
            raise ValueError("task duration must be positive")

    @property
    def total_work(self) -> float:
        """Total CPU-seconds of the stage."""
        return self.num_tasks * self.task_duration


@dataclass
class Job:
    """A DAG of stages plus its arrival time."""

    job_id: int
    stages: Dict[int, Stage]
    dag: nx.DiGraph
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if not nx.is_directed_acyclic_graph(self.dag):
            raise ValueError("job graph must be a DAG")
        missing = set(self.dag.nodes) - set(self.stages)
        if missing:
            raise ValueError(f"DAG nodes without stage definitions: {sorted(missing)}")

    # ------------------------------------------------------------------ #
    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def total_work(self) -> float:
        return sum(stage.total_work for stage in self.stages.values())

    def parents(self, stage_id: int) -> List[int]:
        return list(self.dag.predecessors(stage_id))

    def children(self, stage_id: int) -> List[int]:
        return list(self.dag.successors(stage_id))

    def roots(self) -> List[int]:
        return [node for node in self.dag.nodes if self.dag.in_degree(node) == 0]

    def critical_path_length(self) -> float:
        """Longest work path through the DAG (lower bound on completion time)."""
        order = list(nx.topological_sort(self.dag))
        longest: Dict[int, float] = {}
        for node in order:
            work = self.stages[node].total_work
            parent_best = max((longest[p] for p in self.dag.predecessors(node)), default=0.0)
            longest[node] = parent_best + work
        return max(longest.values()) if longest else 0.0

    def adjacency_matrix(self) -> np.ndarray:
        """Dense adjacency matrix ordered by stage id (for the GNN encoder)."""
        ids = sorted(self.stages)
        index = {stage_id: i for i, stage_id in enumerate(ids)}
        matrix = np.zeros((len(ids), len(ids)))
        for src, dst in self.dag.edges:
            matrix[index[src], index[dst]] = 1.0
        return matrix

    def node_features(self) -> np.ndarray:
        """Per-stage features ``(num_stages, 3)``: tasks, duration, out-degree."""
        ids = sorted(self.stages)
        features = np.zeros((len(ids), 3))
        for row, stage_id in enumerate(ids):
            stage = self.stages[stage_id]
            features[row] = [stage.num_tasks, stage.task_duration, self.dag.out_degree(stage_id)]
        return features


# ---------------------------------------------------------------------- #
# Workload generation
# ---------------------------------------------------------------------- #
_SHAPES = ("chain", "diamond", "fan_in", "map_reduce")


class TPCHLikeJobGenerator:
    """Synthesize jobs whose DAG shapes resemble TPC-H query plans."""

    def __init__(self, seed: int = 0, min_stages: int = 2, max_stages: int = 10,
                 task_scale: float = 1.0) -> None:
        if min_stages < 1 or max_stages < min_stages:
            raise ValueError("invalid stage-count range")
        self._rng = seeded_rng(seed)
        self.min_stages = min_stages
        self.max_stages = max_stages
        self.task_scale = task_scale
        self._next_job_id = 0

    # -- DAG shapes ------------------------------------------------------ #
    def _build_dag(self, num_stages: int) -> nx.DiGraph:
        shape = str(self._rng.choice(_SHAPES))
        graph = nx.DiGraph()
        graph.add_nodes_from(range(num_stages))
        if shape == "chain" or num_stages <= 2:
            for i in range(num_stages - 1):
                graph.add_edge(i, i + 1)
        elif shape == "diamond":
            # source -> parallel middle stages -> sink
            for i in range(1, num_stages - 1):
                graph.add_edge(0, i)
                graph.add_edge(i, num_stages - 1)
        elif shape == "fan_in":
            # independent sources feeding one final stage
            for i in range(num_stages - 1):
                graph.add_edge(i, num_stages - 1)
        else:  # map_reduce: two layers of maps joined by reduces
            half = max(1, num_stages // 2)
            for i in range(half):
                for j in range(half, num_stages):
                    if self._rng.random() < 0.6 or j == half:
                        graph.add_edge(i, j)
        return graph

    def generate(self, arrival_time: float = 0.0) -> Job:
        """Generate one job arriving at ``arrival_time``."""
        num_stages = int(self._rng.integers(self.min_stages, self.max_stages + 1))
        dag = self._build_dag(num_stages)
        stages: Dict[int, Stage] = {}
        for stage_id in range(num_stages):
            # Heavy-tailed task counts (TPC-H queries mix tiny and huge stages).
            num_tasks = int(np.ceil(self._rng.lognormal(mean=1.6, sigma=0.8)))
            num_tasks = int(np.clip(num_tasks, 1, 60))
            duration = float(np.clip(self._rng.lognormal(mean=0.0, sigma=0.5), 0.2, 8.0))
            stages[stage_id] = Stage(stage_id=stage_id, num_tasks=num_tasks,
                                     task_duration=duration * self.task_scale)
        job = Job(job_id=self._next_job_id, stages=stages, dag=dag, arrival_time=arrival_time)
        self._next_job_id += 1
        return job

    def generate_workload(self, num_jobs: int, mean_interarrival: float = 4.0,
                          batch_fraction: float = 0.25) -> List[Job]:
        """Generate ``num_jobs`` jobs: an initial batch plus Poisson arrivals.

        ``batch_fraction`` of the jobs are present at time zero (queued work),
        the rest arrive with exponential inter-arrival times — the mix used by
        Decima's continuous-arrival experiments.
        """
        if num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")
        jobs: List[Job] = []
        num_batch = max(1, int(num_jobs * batch_fraction))
        for _ in range(num_batch):
            jobs.append(self.generate(arrival_time=0.0))
        t = 0.0
        for _ in range(num_jobs - num_batch):
            t += float(self._rng.exponential(mean_interarrival))
            jobs.append(self.generate(arrival_time=t))
        return jobs
