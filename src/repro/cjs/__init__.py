"""``repro.cjs`` — cluster job scheduling substrate (DAG jobs, simulator, baselines)."""

from .jobs import Job, Stage, TPCHLikeJobGenerator
from .simulator import (
    CJSResult,
    ClusterSimulator,
    SchedulingContext,
    SchedulingDecision,
    StageState,
    run_workload,
)
from .env import (
    CANDIDATE_FEATURES,
    GLOBAL_FEATURES,
    MAX_CANDIDATES,
    PARALLELISM_FRACTIONS,
    CJSTrajectory,
    CJSTransition,
    action_from_decision,
    collect_trajectory,
    decision_from_action,
    encode_observation,
    observation_size,
    ordered_candidates,
)
from .settings import CJS_SETTINGS, CJSSetting, SCALE_FACTOR, build_workload
from .baselines import (
    DecimaScheduler,
    FIFOScheduler,
    FairScheduler,
    ShortestJobFirstScheduler,
    train_decima,
)

__all__ = [
    "Job", "Stage", "TPCHLikeJobGenerator",
    "CJSResult", "ClusterSimulator", "SchedulingContext", "SchedulingDecision", "StageState",
    "run_workload",
    "CANDIDATE_FEATURES", "GLOBAL_FEATURES", "MAX_CANDIDATES", "PARALLELISM_FRACTIONS",
    "CJSTrajectory", "CJSTransition", "action_from_decision", "collect_trajectory",
    "decision_from_action", "encode_observation", "observation_size", "ordered_candidates",
    "CJS_SETTINGS", "CJSSetting", "SCALE_FACTOR", "build_workload",
    "DecimaScheduler", "FIFOScheduler", "FairScheduler", "ShortestJobFirstScheduler",
    "train_decima",
]
