"""A small character-level tokenizer for the LLM substitute.

The tokenizer is only needed by the *token-based* answer-generation paths of
the paper: the prompt-learning baseline (Figure 2 / Figure 17) and the LM-head
token prediction that NetLLM replaces with networking heads.  NetLLM's own
pipeline never tokenizes task data — the multimodal encoder injects token-like
embeddings directly.

A character vocabulary keeps the implementation honest about the paper's
"sub-word" pain point: numbers such as ``151.76`` span many tokens, so
autoregressive generation genuinely requires many inference rounds and can
emit malformed numeric strings, which is exactly the hallucination / latency
problem Figure 2 quantifies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

PAD_TOKEN = "<pad>"
BOS_TOKEN = "<bos>"
EOS_TOKEN = "<eos>"
UNK_TOKEN = "<unk>"

_BASE_CHARS = (
    "0123456789"
    ".,-+()[]{}:;%/ "
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "_=<>\n"
)


class CharTokenizer:
    """Character-level tokenizer with special tokens."""

    def __init__(self, extra_chars: str = "") -> None:
        specials = [PAD_TOKEN, BOS_TOKEN, EOS_TOKEN, UNK_TOKEN]
        chars = list(dict.fromkeys(_BASE_CHARS + extra_chars))
        self._id_to_token: List[str] = specials + chars
        self._token_to_id: Dict[str, int] = {tok: i for i, tok in enumerate(self._id_to_token)}

    # ------------------------------------------------------------------ #
    @property
    def vocab_size(self) -> int:
        return len(self._id_to_token)

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS_TOKEN]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    # ------------------------------------------------------------------ #
    def encode(self, text: str, add_bos: bool = False, add_eos: bool = False) -> List[int]:
        """Encode ``text`` into a list of token ids."""
        ids = [self._token_to_id.get(ch, self.unk_id) for ch in text]
        if add_bos:
            ids = [self.bos_id] + ids
        if add_eos:
            ids = ids + [self.eos_id]
        return ids

    def decode(self, ids: Sequence[int], strip_special: bool = True) -> str:
        """Decode token ids back to text."""
        pieces = []
        for token_id in ids:
            token_id = int(token_id)
            if token_id < 0 or token_id >= self.vocab_size:
                raise ValueError(f"token id {token_id} out of range")
            token = self._id_to_token[token_id]
            if strip_special and token in (PAD_TOKEN, BOS_TOKEN, EOS_TOKEN, UNK_TOKEN):
                continue
            pieces.append(token)
        return "".join(pieces)

    def encode_batch(self, texts: Sequence[str], max_len: int,
                     add_bos: bool = True, add_eos: bool = True) -> np.ndarray:
        """Encode and right-pad a batch of strings into an int array."""
        batch = np.full((len(texts), max_len), self.pad_id, dtype=np.int64)
        for row, text in enumerate(texts):
            ids = self.encode(text, add_bos=add_bos, add_eos=add_eos)[:max_len]
            batch[row, :len(ids)] = ids
        return batch

    def tokens_per_answer(self, answer: str) -> int:
        """Number of autoregressive steps needed to emit ``answer`` plus EOS."""
        return len(self.encode(answer, add_eos=True))
