"""Autoregressive token generation for the LM-head baseline paths.

NetLLM removes this machinery in favour of networking heads, but the paper's
motivation experiments (Figure 2) quantify exactly why: token-by-token
generation takes one transformer inference per character/sub-word and can
produce malformed (hallucinated) answers.  This module implements greedy and
sampling-based generation plus a latency/validity profiler used by the
Figure 2 benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..nn import no_grad
from ..utils import seeded_rng
from .model import LanguageModel


@dataclass
class GenerationResult:
    """Outcome of one autoregressive generation call."""

    text: str
    token_ids: List[int]
    num_inferences: int
    elapsed_seconds: float
    stopped_by_eos: bool
    #: Optional per-token decode breakdown (seconds per sampling step, prefill
    #: first).  Filled by ``generate(collect_timing=True)`` and by the serving
    #: engine; ``None`` when timing collection was off.
    token_seconds: Optional[List[float]] = None

    @property
    def prefill_seconds(self) -> float:
        """Time to the first sampled token (prompt prefill + first sample)."""
        return self.token_seconds[0] if self.token_seconds else 0.0

    @property
    def decode_seconds_per_token(self) -> float:
        """Mean per-token latency of the steady-state decode steps."""
        if not self.token_seconds or len(self.token_seconds) < 2:
            return 0.0
        rest = self.token_seconds[1:]
        return sum(rest) / len(rest)


def sample_token(logits: np.ndarray, temperature: float,
                 rng: np.random.Generator) -> int:
    """Sample one token id from unnormalized next-token ``logits``.

    ``temperature == 0`` is greedy argmax; otherwise temperature-scaled
    softmax sampling.  Shared by :func:`generate` and the serving engine's
    decode loop so served sessions reproduce the standalone token stream.
    """
    if temperature and temperature > 0:
        scaled = logits / temperature
        scaled = scaled - scaled.max()
        probs = np.exp(scaled)
        probs = probs / probs.sum()
        return int(rng.choice(len(probs), p=probs))
    return int(np.argmax(logits))


def generate(model: LanguageModel, prompt: str, max_new_tokens: int = 64,
             temperature: float = 0.0, seed: int = 0,
             stop_on_eos: bool = True, use_cache: bool = True,
             collect_timing: bool = False) -> GenerationResult:
    """Generate a completion for ``prompt`` with the LM head, token by token.

    ``temperature == 0`` performs greedy decoding; otherwise tokens are
    sampled from the temperature-scaled softmax, which is the source of the
    answer-validity problem the paper describes.

    Decoding runs under :func:`~repro.nn.no_grad` with the model in eval mode
    (restored afterwards), so dropout never desynchronizes the two paths.
    With ``use_cache`` (the default) each step feeds only the newest token
    through the transformer and attends against cached keys/values — O(T·L)
    for the whole answer instead of O(T·L²) — producing logits identical to
    the full-window forward.  Once the context window overflows
    ``max_seq_len`` the cache is re-primed on the trimmed window, which
    matches the sliding-window semantics of the uncached path exactly; in
    that saturated regime every step recomputes the window, so caching only
    speeds up the portion of the answer that fits within ``max_seq_len``
    (exact parity is deliberately kept over amortized sliding).
    ``num_inferences`` still counts one transformer inference per generated
    token (the paper's Figure 2 metric).

    With ``collect_timing`` the result carries ``token_seconds`` — the wall
    clock of every sampling step (prompt prefill first) — the same breakdown
    the serving engine records per request, so queue/prefill/decode shares can
    be compared between standalone and served generation.
    """
    if max_new_tokens < 1:
        raise ValueError("max_new_tokens must be >= 1")
    tokenizer = model.tokenizer
    rng = seeded_rng(seed)
    context = tokenizer.encode(prompt, add_bos=True)
    max_context = model.config.max_seq_len
    generated: List[int] = []
    stopped = False
    token_seconds: Optional[List[float]] = [] if collect_timing else None

    start = time.perf_counter()
    last_step = start
    num_inferences = 0
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            cache = model.init_cache() if use_cache else None
            pending: Optional[List[int]] = None  # tokens not yet in the cache
            for _ in range(max_new_tokens):
                if cache is None:
                    window = (context + generated)[-max_context:]
                    logits = model.forward_tokens(
                        np.asarray(window, dtype=np.int64)[None, :])
                else:
                    if pending is None or cache.seq_len + len(pending) > max_context:
                        # First step, or the sliding window dropped old tokens
                        # (whose cached positional embeddings would be stale):
                        # re-prime the cache on the current window.
                        cache.reset()
                        pending = (context + generated)[-max_context:]
                    logits = model.forward_incremental(
                        np.asarray(pending, dtype=np.int64)[None, :], cache)
                num_inferences += 1
                if token_seconds is not None:
                    now = time.perf_counter()
                    token_seconds.append(now - last_step)
                    last_step = now
                next_id = sample_token(logits.data[0, -1, :], temperature, rng)
                if stop_on_eos and next_id == tokenizer.eos_id:
                    stopped = True
                    break
                generated.append(next_id)
                pending = [next_id]
    finally:
        if was_training:
            model.train()
    elapsed = time.perf_counter() - start
    text = tokenizer.decode(generated)
    return GenerationResult(text=text, token_ids=generated, num_inferences=num_inferences,
                            elapsed_seconds=elapsed, stopped_by_eos=stopped,
                            token_seconds=token_seconds)


@dataclass
class GenerationProfile:
    """Aggregate validity / latency statistics over many generations."""

    num_answers: int = 0
    num_valid: int = 0
    total_seconds: float = 0.0
    total_inferences: int = 0
    latencies: List[float] = field(default_factory=list)

    @property
    def valid_fraction(self) -> float:
        return self.num_valid / self.num_answers if self.num_answers else 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_seconds / self.num_answers if self.num_answers else 0.0

    @property
    def mean_inferences(self) -> float:
        return self.total_inferences / self.num_answers if self.num_answers else 0.0


def profile_generation(model: LanguageModel, prompts: List[str],
                       validator: Callable[[str], bool],
                       max_new_tokens: int = 64, temperature: float = 0.7,
                       seed: int = 0, server=None) -> GenerationProfile:
    """Run token-based generation over ``prompts`` and measure validity/latency.

    With ``server`` (a :class:`repro.serve.InferenceServer` built on this
    model), every prompt is submitted up front and decoded with continuous
    batching — per-answer latency then includes queueing, which is what a
    deployed endpoint observes.
    """
    profile = GenerationProfile()
    if server is not None:
        handles = [server.submit_generation(prompt, max_new_tokens=max_new_tokens,
                                            temperature=temperature, seed=seed + index)
                   for index, prompt in enumerate(prompts)]
        if not server.is_serving:
            server.run_until_idle()
        results = [handle.result() for handle in handles]
    else:
        results = [generate(model, prompt, max_new_tokens=max_new_tokens,
                            temperature=temperature, seed=seed + index)
                   for index, prompt in enumerate(prompts)]
    for result in results:
        profile.num_answers += 1
        profile.num_valid += int(bool(validator(result.text)))
        profile.total_seconds += result.elapsed_seconds
        profile.total_inferences += result.num_inferences
        profile.latencies.append(result.elapsed_seconds)
    return profile
