"""Decoder-only transformer language model — the LLM substitute.

The model exposes two entry points that mirror how NetLLM uses a real LLM:

* :meth:`LanguageModel.forward_tokens` — the classic NLP path: token ids go
  through the vocabulary embedding, the transformer backbone, and the language
  modeling (LM) head that predicts next-token logits.  The prompt-learning and
  token-prediction baselines use this path.
* :meth:`LanguageModel.forward_embeddings` — the NetLLM path: pre-computed
  token-like embeddings (from the multimodal encoder) are fed straight into
  the backbone and the contextualized output features are returned *without*
  the LM head, ready for a networking head.

LoRA adapters can be enabled per instance; when enabled, the backbone's linear
projections become :class:`~repro.nn.lora.LoRALinear` layers whose base
weights stay frozen while rank-``r`` updates are trained (DD-LRNA).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    DEFAULT_BLOCK_SIZE,
    Embedding,
    KVCache,
    LayerNorm,
    Linear,
    Module,
    PagedKVCache,
    Tensor,
    TransformerBackbone,
    iter_lora_layers,
)
from .config import LLMConfig
from .tokenizer import CharTokenizer


class LanguageModel(Module):
    """GPT-style decoder-only language model with optional LoRA adapters."""

    def __init__(self, config: LLMConfig, tokenizer: Optional[CharTokenizer] = None,
                 lora_rank: int = 0, lora_alpha: float = 16.0,
                 seed: int = 0) -> None:
        super().__init__()
        self.config = config
        self.tokenizer = tokenizer or CharTokenizer()
        rng = np.random.default_rng(seed)
        vocab_size = self.tokenizer.vocab_size
        self.lora_rank = lora_rank

        self.token_embedding = Embedding(vocab_size, config.d_model, rng=rng)
        self.backbone = TransformerBackbone(
            d_model=config.d_model,
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            max_seq_len=config.max_seq_len,
            d_hidden=config.hidden_dim,
            dropout=config.dropout,
            lora_rank=lora_rank,
            lora_alpha=lora_alpha,
            rng=rng,
        )
        self.lm_head = Linear(config.d_model, vocab_size, bias=False, rng=rng)

    # ------------------------------------------------------------------ #
    # Forward paths
    # ------------------------------------------------------------------ #
    def forward_tokens(self, token_ids: np.ndarray) -> Tensor:
        """Next-token logits for ``(batch, seq)`` integer token ids."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        embeddings = self.token_embedding(token_ids)
        features = self.backbone(embeddings, causal=True)
        return self.lm_head(features)

    def init_cache(self) -> KVCache:
        """Fresh KV cache for incremental decoding (one slot per block)."""
        return self.backbone.init_cache()

    def forward_incremental(self, token_ids: np.ndarray, cache: KVCache) -> Tensor:
        """Next-token logits for the *new* tokens only, using the KV cache.

        ``token_ids`` holds the tokens that follow the positions already in
        ``cache`` (the whole prompt on the first call, usually a single token
        afterwards).  The cache is updated in place; the returned logits cover
        only the new positions and match :meth:`forward_tokens` on the full
        window to machine precision.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        embeddings = self.token_embedding(token_ids)
        features = self.backbone(embeddings, causal=True, cache=cache)
        return self.lm_head(features)

    def init_paged_cache(self, max_sessions: int = 16,
                         max_context: Optional[int] = None,
                         block_size: int = DEFAULT_BLOCK_SIZE,
                         extra_blocks: int = 0) -> PagedKVCache:
        """Paged multi-session KV cache for batched decoding (``repro.serve``).

        The pool is sized so ``max_sessions`` concurrent sessions can each
        reach ``max_context`` tokens (default: the model's ``max_seq_len``),
        plus ``extra_blocks`` for out-of-session residents such as a shared
        prompt-prefix cache.  Storage is only materialized for blocks actually
        touched, so short sessions never pay for the worst case.
        """
        max_context = min(max_context or self.config.max_seq_len,
                          self.config.max_seq_len)
        per_session = -(-max_context // block_size)
        return self.backbone.init_paged_cache(
            max_sessions * per_session + extra_blocks, block_size=block_size)

    def forward_step(self, token_ids: np.ndarray, cache: PagedKVCache,
                     session_ids: np.ndarray,
                     counts: Optional[np.ndarray] = None) -> Tensor:
        """Next-token logits for one new token of each listed session.

        ``token_ids`` has shape ``(n,)`` or ``(n, 1)``; row *i* is the newest
        token of the paged-cache session ``session_ids[i]``.  One forward
        advances all sessions together (per-session positions come from the
        cache), with per-session logits matching :meth:`forward_incremental`
        on the session alone.

        With ``counts`` given, ``token_ids`` is ``(n, max(counts))`` and the
        call is a ragged multi-token speculative verification forward: row
        *i* feeds its first ``counts[i]`` tokens, the returned logits cover
        every query position, and per-session logit columns ``< counts[i]``
        match ``counts[i]`` sequential single-token steps exactly (see
        :meth:`TransformerBackbone.forward_step`).
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[:, None]
        embeddings = self.token_embedding(token_ids)
        features = self.backbone.forward_step(embeddings, cache, session_ids,
                                              counts=counts)
        return self.lm_head(features)

    def forward_embeddings(self, embeddings: Tensor, causal: bool = True) -> Tensor:
        """Contextualized output features for externally produced embeddings.

        This is the path used by NetLLM: the LM head is bypassed entirely and
        the raw ``(batch, seq, d_model)`` output features are returned for a
        task-specific networking head.
        """
        return self.backbone(embeddings, causal=causal)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        return self.forward_tokens(token_ids)

    # ------------------------------------------------------------------ #
    # Parameter bookkeeping (freezing / LoRA / ablations)
    # ------------------------------------------------------------------ #
    @property
    def d_model(self) -> int:
        return self.config.d_model

    def freeze_backbone(self) -> None:
        """Freeze every pre-trained weight (token/positional embeddings, blocks,
        LM head).  LoRA ``A``/``B`` matrices remain trainable when present."""
        for name, param in self.named_parameters():
            if name.endswith("lora_a") or name.endswith("lora_b"):
                param.requires_grad = True
            else:
                param.requires_grad = False

    def set_lora_enabled(self, enabled: bool) -> None:
        """Enable or disable the learned low-rank updates (domain-knowledge ablation)."""
        for layer in iter_lora_layers(self):
            layer.enable_lora(enabled)

    def randomize_weights(self, seed: int = 0) -> None:
        """Re-initialize all backbone weights (the 'no pre-trained knowledge' ablation)."""
        rng = np.random.default_rng(seed)
        for name, param in self.named_parameters():
            if name.endswith("lora_b"):
                param.data = np.zeros_like(param.data)
            elif name.endswith(("gamma",)):
                param.data = np.ones_like(param.data)
            elif name.endswith(("beta", "bias")):
                param.data = np.zeros_like(param.data)
            else:
                param.data = rng.normal(0.0, 0.02, size=param.data.shape)

    def num_lora_parameters(self) -> int:
        return int(sum(layer.num_lora_parameters() for layer in iter_lora_layers(self)))

    def trainable_fraction(self) -> float:
        """Fraction of parameters that currently receive gradients."""
        total = self.num_parameters()
        trainable = self.num_parameters(trainable_only=True)
        return trainable / total if total else 0.0

    def parameter_memory_bytes(self, trainable_only: bool = False) -> int:
        """Bytes of parameter storage (used by the adaptation-cost profiler)."""
        params = self.trainable_parameters() if trainable_only else self.parameters()
        return int(sum(p.data.nbytes for p in params))
