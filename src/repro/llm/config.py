"""Configuration objects for the LLM substitute.

The paper adapts Llama2-7B (and OPT / Mistral / LLaVa variants as well as an
OPT size sweep from 0.35B to 13B parameters).  The offline reproduction
environment has no GPU and no pre-trained checkpoints, so each of those models
is represented by a *simulated* configuration: a decoder-only transformer of a
size we can actually pre-train and fine-tune on CPU, annotated with the
parameter count of the model it stands in for (``simulated_param_count``) so
cost reports can be expressed in the paper's terms.

The relative capacity ordering of the real models (0.35B < 1.3B < 2.7B < 7B
< 13B) is preserved by scaling width/depth, which is what matters for the
size-sweep experiment (Figure 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class LLMConfig:
    """Architecture hyper-parameters for one LLM substitute."""

    name: str
    family: str
    d_model: int
    num_layers: int
    num_heads: int
    vocab_size: int = 96
    max_seq_len: int = 192
    d_hidden: Optional[int] = None
    dropout: float = 0.0
    multimodal: bool = False
    simulated_param_count: float = 7e9
    description: str = ""

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")

    @property
    def hidden_dim(self) -> int:
        return self.d_hidden if self.d_hidden is not None else 4 * self.d_model

    def scaled(self, **overrides) -> "LLMConfig":
        """Return a copy with some fields overridden (for ablations)."""
        data = self.__dict__.copy()
        data.update(overrides)
        return LLMConfig(**data)


def _cfg(name: str, family: str, d_model: int, num_layers: int, num_heads: int,
         simulated: float, multimodal: bool = False, description: str = "") -> LLMConfig:
    return LLMConfig(
        name=name,
        family=family,
        d_model=d_model,
        num_layers=num_layers,
        num_heads=num_heads,
        multimodal=multimodal,
        simulated_param_count=simulated,
        description=description,
    )


#: Named configurations standing in for the checkpoints used in the paper.
DEFAULT_CONFIGS: Dict[str, LLMConfig] = {
    # Main foundation model used throughout the paper.
    "llama2-7b-sim": _cfg("llama2-7b-sim", "llama2", d_model=64, num_layers=3, num_heads=4,
                          simulated=7e9,
                          description="Stand-in for Llama2-7B, the default foundation model."),
    # Figure 15: other 7B-class families.  The families share the 7B capacity
    # class but differ architecturally (head count, FFN width, depth), like
    # their real counterparts, so adapted results are family-specific.
    "opt-7b-sim": LLMConfig(name="opt-7b-sim", family="opt", d_model=64, num_layers=3,
                            num_heads=8, simulated_param_count=6.7e9,
                            description="Stand-in for OPT-6.7B (more, narrower heads)."),
    "mistral-7b-sim": LLMConfig(name="mistral-7b-sim", family="mistral", d_model=64,
                                num_layers=3, num_heads=4, d_hidden=192,
                                simulated_param_count=7e9,
                                description="Stand-in for Mistral-7B (narrower FFN)."),
    "llava-7b-sim": LLMConfig(name="llava-7b-sim", family="llava", d_model=64, num_layers=4,
                              num_heads=4, multimodal=True, simulated_param_count=7e9,
                              description="Stand-in for LLaVa-7B (multimodal pre-training)."),
    # Figure 16: OPT size sweep.
    "opt-0.35b-sim": _cfg("opt-0.35b-sim", "opt", d_model=16, num_layers=1, num_heads=2,
                          simulated=0.35e9, description="Stand-in for OPT-350M."),
    "opt-1.3b-sim": _cfg("opt-1.3b-sim", "opt", d_model=32, num_layers=2, num_heads=2,
                         simulated=1.3e9, description="Stand-in for OPT-1.3B."),
    "opt-2.7b-sim": _cfg("opt-2.7b-sim", "opt", d_model=48, num_layers=2, num_heads=4,
                         simulated=2.7e9, description="Stand-in for OPT-2.7B."),
    "opt-13b-sim": _cfg("opt-13b-sim", "opt", d_model=80, num_layers=4, num_heads=4,
                        simulated=13e9, description="Stand-in for OPT-13B."),
    # Small, fast configuration used by unit tests and examples.
    "tiny-test": _cfg("tiny-test", "test", d_model=32, num_layers=2, num_heads=2,
                      simulated=0.1e9, description="Tiny configuration for tests and CI."),
}


def get_config(name: str) -> LLMConfig:
    """Look up a named configuration, raising a helpful error when unknown."""
    try:
        return DEFAULT_CONFIGS[name]
    except KeyError:
        known = ", ".join(sorted(DEFAULT_CONFIGS))
        raise KeyError(f"unknown LLM config {name!r}; known configs: {known}") from None


def available_configs() -> list[str]:
    return sorted(DEFAULT_CONFIGS)
