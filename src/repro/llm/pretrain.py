"""Synthetic-corpus pre-training for the LLM substitute.

The real Llama2/OPT checkpoints arrive pre-trained on trillions of tokens; we
obviously cannot reproduce that offline.  What the NetLLM experiments need
from pre-training, however, is narrower: a backbone whose frozen features are
*useful* — in particular, attention that tracks smooth numeric sequences,
copies recent context and exposes positional structure.  Those are exactly the
"emergent abilities" (pattern mining, planning) the paper credits for the
adaptation gains, at miniature scale.

``build_corpus`` therefore mixes three kinds of documents:

* smooth numeric series (random walks, sinusoids) rendered as text — teaches
  temporal-pattern continuation;
* key/value and list-completion templates — teaches copying and structure;
* short natural-language sentences about networking — keeps a language flavour.

``pretrain`` runs a standard next-token prediction loop.  The resulting
weights are what the Figure 13 "pre-trained knowledge" ablation removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nn import Adam, clip_grad_norm, cross_entropy
from ..utils import seeded_rng
from .model import LanguageModel

_SENTENCES = [
    "the bitrate of the next chunk should match the available bandwidth",
    "congestion control adjusts the sending rate based on queueing delay",
    "the scheduler allocates executors to the job stage with most work",
    "viewport prediction estimates where the viewer will look next",
    "rebuffering hurts quality of experience more than lower bitrate",
    "the buffer length grows when download is faster than playback",
    "a directed acyclic graph describes the dependency of job stages",
    "throughput varies over time so the client must adapt quickly",
]


def _render_series(values: np.ndarray) -> str:
    return " ".join(f"{v:.2f}" for v in values)


def build_corpus(num_documents: int = 200, seed: int = 0) -> List[str]:
    """Generate a small synthetic pre-training corpus."""
    rng = seeded_rng(seed)
    corpus: List[str] = []
    for index in range(num_documents):
        kind = index % 4
        if kind == 0:
            # Smooth random walk.
            steps = rng.normal(0, 0.5, size=rng.integers(8, 16))
            series = np.cumsum(steps) + rng.uniform(0, 10)
            corpus.append("series: " + _render_series(series))
        elif kind == 1:
            # Sinusoid with noise: periodic pattern continuation.
            t = np.arange(rng.integers(8, 16))
            series = 5 + 3 * np.sin(0.5 * t + rng.uniform(0, np.pi)) + rng.normal(0, 0.1, t.size)
            corpus.append("wave: " + _render_series(series))
        elif kind == 2:
            # Copy / key-value structure.
            key = int(rng.integers(0, 100))
            corpus.append(f"key={key} value={key} repeat key={key} value={key}")
        else:
            corpus.append(str(rng.choice(_SENTENCES)))
    return corpus


@dataclass
class PretrainResult:
    """Summary of a pre-training run."""

    steps: int
    initial_loss: float
    final_loss: float
    losses: List[float]

    @property
    def improved(self) -> bool:
        return self.final_loss < self.initial_loss


def pretrain(model: LanguageModel, corpus: Optional[List[str]] = None, steps: int = 60,
             batch_size: int = 8, seq_len: int = 48, lr: float = 3e-3,
             seed: int = 0) -> PretrainResult:
    """Pre-train ``model`` on next-token prediction over the synthetic corpus.

    The loop is deliberately short: the intent is a *usable* frozen backbone,
    not a state-of-the-art language model.  Pre-training touches all weights,
    so it must run before LoRA freezing (``model.freeze_backbone``).
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    rng = seeded_rng(seed)
    corpus = corpus or build_corpus(seed=seed)
    tokenizer = model.tokenizer
    encoded_docs = [tokenizer.encode(doc, add_bos=True, add_eos=True) for doc in corpus]
    encoded_docs = [doc for doc in encoded_docs if len(doc) >= 4]
    if not encoded_docs:
        raise ValueError("corpus produced no usable documents")

    optimizer = Adam(model.parameters(), lr=lr)
    losses: List[float] = []
    model.train()
    for _ in range(steps):
        batch = np.full((batch_size, seq_len), tokenizer.pad_id, dtype=np.int64)
        for row in range(batch_size):
            doc = encoded_docs[int(rng.integers(0, len(encoded_docs)))]
            if len(doc) > seq_len + 1:
                start = int(rng.integers(0, len(doc) - seq_len - 1))
                window = doc[start:start + seq_len + 1]
            else:
                window = doc
            window = np.asarray(window[:seq_len + 1], dtype=np.int64)
            batch[row, :window.size - 1] = window[:-1]
        # Targets are inputs shifted left by one; pad positions predict pad.
        targets = np.roll(batch, -1, axis=1)
        targets[:, -1] = tokenizer.pad_id

        logits = model.forward_tokens(batch)
        loss = cross_entropy(logits, targets)
        optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(model.parameters(), 1.0)
        optimizer.step()
        losses.append(float(loss.data))
    model.eval()
    return PretrainResult(steps=steps, initial_loss=losses[0], final_loss=losses[-1], losses=losses)
