"""``repro.llm`` — the foundation-model substitute used by NetLLM.

Provides named configurations standing in for Llama2/OPT/Mistral/LLaVa, a
character-level tokenizer, a decoder-only transformer with optional LoRA
adapters, synthetic-corpus pre-training and autoregressive generation (used
only by the baselines NetLLM replaces).
"""

from .config import DEFAULT_CONFIGS, LLMConfig, available_configs, get_config
from .tokenizer import BOS_TOKEN, EOS_TOKEN, PAD_TOKEN, UNK_TOKEN, CharTokenizer
from .model import LanguageModel
from .pretrain import PretrainResult, build_corpus, pretrain
from .generation import (
    GenerationProfile,
    GenerationResult,
    generate,
    profile_generation,
    sample_token,
)
from .registry import build_llm, clear_cache, load_llm

__all__ = [
    "DEFAULT_CONFIGS", "LLMConfig", "available_configs", "get_config",
    "BOS_TOKEN", "EOS_TOKEN", "PAD_TOKEN", "UNK_TOKEN", "CharTokenizer",
    "LanguageModel",
    "PretrainResult", "build_corpus", "pretrain",
    "GenerationProfile", "GenerationResult", "generate", "profile_generation",
    "sample_token",
    "build_llm", "clear_cache", "load_llm",
]
