"""Registry that builds (and optionally pre-trains) named LLM substitutes.

Benchmarks and examples obtain models through :func:`load_llm` so that a
single cache avoids repeating the synthetic pre-training step for every
experiment in a process.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .config import LLMConfig, get_config
from .model import LanguageModel
from .pretrain import PretrainResult, pretrain
from .tokenizer import CharTokenizer

_CACHE: Dict[Tuple[str, int, bool, int], LanguageModel] = {}


def build_llm(name: str = "llama2-7b-sim", lora_rank: int = 0, pretrained: bool = True,
              pretrain_steps: int = 60, seed: int = 0) -> LanguageModel:
    """Construct a fresh LLM substitute for config ``name``.

    When ``pretrained`` is true the model is pre-trained on the synthetic
    corpus; otherwise the random initialization is kept (the "no pre-trained
    knowledge" ablation of Figure 13).
    """
    config = get_config(name)
    model = LanguageModel(config, tokenizer=CharTokenizer(), lora_rank=lora_rank, seed=seed)
    if pretrained:
        pretrain(model, steps=pretrain_steps, seed=seed)
    return model


def load_llm(name: str = "llama2-7b-sim", lora_rank: int = 0, pretrained: bool = True,
             pretrain_steps: int = 60, seed: int = 0, use_cache: bool = True) -> LanguageModel:
    """Return a cached LLM substitute, building it on first use.

    Note: callers that fine-tune the returned model share the cached instance;
    pass ``use_cache=False`` for an isolated copy (the adaptation APIs in
    :mod:`repro.core.api` do this).
    """
    key = (name, lora_rank, pretrained, seed)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    model = build_llm(name, lora_rank=lora_rank, pretrained=pretrained,
                      pretrain_steps=pretrain_steps, seed=seed)
    if use_cache:
        _CACHE[key] = model
    return model


def clear_cache() -> None:
    _CACHE.clear()
