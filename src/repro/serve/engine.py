"""`InferenceServer` — the batched multi-session serving facade.

One engine serves two kinds of traffic through a single shared model:

* **Generation sessions** (``task="generate"``): streaming autoregressive
  requests decoded with continuous batching over the batched KV cache — new
  sessions are admitted into the in-flight batch whenever slots free up, so
  one ``forward_step`` advances every running session at once.
* **Decision requests** (``task in {"vp", "abr", "cjs"}``): per-step NetLLM
  adapter inferences.  Pending requests of a task are grouped by compatible
  shape between decode steps and executed as one batched adapter forward.

``submit`` returns a :class:`RequestHandle` immediately.  The engine can be
driven synchronously (``step()`` / ``run_until_idle()`` / ``handle.result()``)
or by a background thread (``start()`` / ``stop()``, or the context manager),
which lets independent client threads — e.g. a VP evaluator, several ABR
sessions and a CJS workload — share one batched model.

Threading caveat: all engine forwards run under ``repro.nn.no_grad()``, whose
flag is process-wide (not thread-local) — do not *train* on other threads
while a background serve loop is running.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..llm import LanguageModel
from .metrics import RequestMetrics, ServerStats
from .scheduler import ContinuousBatchingScheduler, SchedulerPolicy
from .session import FAILED, FINISHED, QUEUED, GenerationSession, SessionManager

#: Task names with built-in batching support.
GENERATE = "generate"
DECISION_TASKS = ("vp", "abr", "cjs")


class RequestHandle:
    """Future-style handle for one submitted request."""

    def __init__(self, server: "InferenceServer", request_id: int, task: str,
                 metrics: RequestMetrics) -> None:
        self._server = server
        self.request_id = request_id
        self.task = task
        self.metrics = metrics
        self._event = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the request completes and return its payload.

        With the background serve loop running this waits on the loop; in
        synchronous mode it drives the engine until the request resolves.
        """
        if not self._event.is_set():
            self._server._drive(self, timeout)
        if not self._event.is_set():
            raise TimeoutError(f"request {self.request_id} ({self.task}) timed out")
        if self._error is not None:
            raise self._error
        return self._result

    def _resolve(self, result: Any) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class _DecisionRequest:
    """One queued adapter-inference request."""

    handle: RequestHandle
    payload: Any
    group_key: Tuple = ()


@dataclass
class _GenerationRequest:
    session: GenerationSession
    handle: RequestHandle


class InferenceServer:
    """Batched multi-session inference engine over one shared model.

    Parameters
    ----------
    model:
        The :class:`LanguageModel` serving generation sessions (optional when
        the engine only serves adapter decision traffic).
    policy:
        Batch/context/queue bounds (:class:`SchedulerPolicy`).
    adapters:
        Optional mapping of task name (``"vp"``/``"abr"``/``"cjs"``) to the
        adapted NetLLM adapter answering that task's decision requests.
    """

    def __init__(self, model: Optional[LanguageModel] = None,
                 policy: Optional[SchedulerPolicy] = None,
                 adapters: Optional[Dict[str, Any]] = None) -> None:
        self.policy = policy or SchedulerPolicy()
        self.model = model
        self._manager = (SessionManager(model, max_slots=self.policy.max_batch_size,
                                        max_context=self.policy.max_context,
                                        block_size=self.policy.block_size,
                                        prefill_padding=self.policy.prefill_padding,
                                        ragged_prefill=self.policy.ragged_prefill,
                                        prefix_cache=self.policy.enable_prefix_cache,
                                        max_prefixes=self.policy.max_prefixes)
                         if model is not None else None)
        self._scheduler = ContinuousBatchingScheduler(self.policy)
        self._adapters: Dict[str, Any] = dict(adapters or {})
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._pending_generation: Dict[int, RequestHandle] = {}  # session_id -> handle
        self._pending_decisions: Dict[str, List[_DecisionRequest]] = {}
        # Bounded retention: a long-lived server keeps the most recent
        # completions for stats() instead of growing without limit.
        self._completed: Deque[RequestMetrics] = deque(maxlen=16384)
        self._started_at: Optional[float] = None
        self._last_finished_at: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._running = False

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #
    def register_prefix(self, text: str) -> None:
        """Cache a common prompt head so matching prompts skip recomputing it.

        Typical use: register the task adapters' fixed instruction preambles
        once at startup; every generation prompt that starts with a registered
        head then maps its KV blocks by reference and prefills only the tail.
        """
        if self._manager is None:
            raise ValueError("this server has no language model; "
                             "construct it with model=... to serve generation")
        with self._lock:
            self._manager.register_prefix(text)

    def register_adapter(self, task: str, adapter: Any) -> None:
        if task not in DECISION_TASKS:
            raise ValueError(f"unknown decision task {task!r}; expected one of "
                             f"{DECISION_TASKS}")
        with self._lock:
            self._adapters[task] = adapter

    def submit(self, task: str, payload: Any, **options) -> RequestHandle:
        """Queue one request; returns a future-style handle.

        * ``task="generate"``: ``payload`` is the prompt string; options are
          forwarded to the generation session (``max_new_tokens``,
          ``temperature``, ``seed``, ``stop_on_eos``).
        * ``task="vp"``: ``payload`` is a ``VPSample``-like object; resolves to
          the predicted viewport array.
        * ``task="abr"`` / ``task="cjs"``: ``payload`` is the context dict
          (``returns``, ``states``, ``actions`` and, for CJS, ``valid_mask``);
          resolves to the greedy action tuple.
        """
        if task == GENERATE:
            return self.submit_generation(payload, **options)
        if task not in DECISION_TASKS:
            raise ValueError(f"unknown task {task!r}")
        if options:
            raise TypeError(f"unexpected options for {task!r} request: {sorted(options)}")
        if task not in self._adapters:
            raise ValueError(f"no adapter registered for task {task!r}")
        metrics = RequestMetrics(task=task)
        handle = RequestHandle(self, next(self._ids), task, metrics)
        request = _DecisionRequest(handle=handle, payload=payload,
                                   group_key=self._group_key(task, payload))
        with self._work:
            self._note_submission()
            self._pending_decisions.setdefault(task, []).append(request)
            self._work.notify_all()
        return handle

    def submit_generation(self, prompt: str, max_new_tokens: int = 64,
                          temperature: float = 0.0, seed: int = 0,
                          stop_on_eos: bool = True) -> RequestHandle:
        """Queue a streaming generation request (continuous-batching path)."""
        if self._manager is None:
            raise ValueError("this server has no language model; "
                             "construct it with model=... to serve generation")
        if max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        metrics = RequestMetrics(task=GENERATE)
        request_id = next(self._ids)
        session = GenerationSession(session_id=request_id, prompt=prompt,
                                    max_new_tokens=max_new_tokens,
                                    temperature=temperature, seed=seed,
                                    stop_on_eos=stop_on_eos, metrics=metrics)
        handle = RequestHandle(self, request_id, GENERATE, metrics)
        with self._work:
            self._note_submission()
            if not self._scheduler.enqueue(session):
                handle._fail(RuntimeError(
                    f"request queue full ({self.policy.max_queue}); retry later"))
                return handle
            self._pending_generation[session.session_id] = handle
            self._work.notify_all()
        return handle

    # ------------------------------------------------------------------ #
    # Engine loop
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """One scheduling round: admit, batched decode, flush decisions.

        Returns True when any work was performed (so drivers can loop until
        the engine goes idle).
        """
        with self._lock:
            did_work = False
            did_work |= self._admit_queued()
            did_work |= self._decode_step()
            did_work |= self._flush_decisions()
            return did_work

    def run_until_idle(self) -> None:
        """Drive the engine synchronously until no work remains."""
        while self.step():
            pass

    @property
    def is_serving(self) -> bool:
        """True while the background serve loop is running."""
        return self._thread is not None and self._thread.is_alive()

    def has_pending_work(self) -> bool:
        with self._lock:
            running = self._manager.num_running if self._manager else 0
            pending = sum(len(v) for v in self._pending_decisions.values())
            return bool(running or pending or self._scheduler.queue_depth)

    # ------------------------------------------------------------------ #
    # Background serve loop
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceServer":
        """Run the serve loop on a background thread (idempotent)."""
        with self._lock:
            if self._running:
                return self
            self._running = True
        self._thread = threading.Thread(target=self._serve_loop,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the background loop, optionally draining queued work first.

        Without ``drain``, requests still queued or in flight are *failed*
        (never left unresolved) so no client blocks forever on a handle whose
        server has gone away.
        """
        if drain:
            while self.has_pending_work():
                if self._thread is None or not self._thread.is_alive():
                    self.run_until_idle()
                    break
                time.sleep(0.001)
        with self._work:
            self._running = False
            self._work.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.has_pending_work() or self._pending_generation:
            self._fail_all_pending(RuntimeError(
                "server stopped before completing this request"))

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _serve_loop(self) -> None:
        while True:
            with self._work:
                if not self._running:
                    return
            try:
                did_work = self.step()
            except BaseException as error:
                # The loop thread must not die silently: clients blocked in
                # handle.result() would hang forever. Fail everything pending
                # with the original error and shut the loop down.
                self._fail_all_pending(error)
                with self._work:
                    self._running = False
                return
            if not did_work:
                with self._work:
                    if not self._running:
                        return
                    self._work.wait(timeout=0.005)

    def _fail_all_pending(self, error: BaseException) -> None:
        """Fail every queued/in-flight request (serve loop is going down)."""
        with self._lock:
            for session in self._scheduler.admissions(free_slots=10 ** 9):
                session.state = FAILED
                self._finish_generation(session, error=error)
            if self._manager is not None:
                for session in list(self._manager.running.values()):
                    self._manager.evict(session, reason="failed")
                    session.state = FAILED
                    self._finish_generation(session, error=error)
            for session_id in list(self._pending_generation):
                handle = self._pending_generation.pop(session_id)
                handle._fail(error)
            for task, pending in list(self._pending_decisions.items()):
                self._pending_decisions[task] = []
                for request in pending:
                    request.handle._fail(error)

    def _drive(self, handle: RequestHandle, timeout: Optional[float]) -> None:
        """Resolve ``handle``: wait on the loop thread or step synchronously."""
        if self._thread is not None and self._thread.is_alive() \
                and threading.current_thread() is not self._thread:
            handle._event.wait(timeout)
            return
        deadline = None if timeout is None else time.perf_counter() + timeout
        while not handle.done():
            if deadline is not None and time.perf_counter() > deadline:
                return
            if not self.step():
                if not handle.done():
                    handle._fail(RuntimeError(
                        f"request {handle.request_id} cannot complete: engine is idle"))
                return

    # ------------------------------------------------------------------ #
    # Step phases (called with the lock held)
    # ------------------------------------------------------------------ #
    def _admit_queued(self) -> bool:
        if self._manager is None:
            return False
        admitted = self._scheduler.admissions(self._manager.num_free)
        if not admitted:
            return False
        try:
            self._manager.admit_many(admitted)
        except Exception:
            # Batched prefill failed: retry one by one so a single bad
            # request cannot reject the whole admission wave.
            for session in admitted:
                if session.state != QUEUED:
                    continue
                try:
                    self._manager.admit(session)
                except Exception as error:
                    session.state = FAILED
                    self._finish_generation(session, error=error)
        for session in admitted:
            if session.state == FINISHED:  # e.g. EOS sampled from prefill
                self._finish_generation(session)
        return True

    def _decode_step(self) -> bool:
        if self._manager is None or self._manager.num_running == 0:
            return False
        completed, occupancy = self._manager.step()
        if occupancy:
            self._scheduler.record_step(
                occupancy, blocks_in_use=self._manager.cache.blocks_in_use)
        for session in completed:
            self._finish_generation(session)
        return True

    def _finish_generation(self, session: GenerationSession,
                           error: Optional[BaseException] = None) -> None:
        handle = self._pending_generation.pop(session.session_id, None)
        self._last_finished_at = time.perf_counter()
        if handle is None:
            return
        if error is not None:
            session.metrics.mark_finished()
            handle._fail(error)
            return
        self._completed.append(session.metrics)
        handle._resolve(session.to_result(self.model.tokenizer))

    def _flush_decisions(self) -> bool:
        did_work = False
        for task in DECISION_TASKS:
            pending = self._pending_decisions.get(task)
            if not pending:
                continue
            self._pending_decisions[task] = []
            groups: Dict[Tuple, List[_DecisionRequest]] = {}
            for request in pending:
                groups.setdefault(request.group_key, []).append(request)
            for group in groups.values():
                self._execute_decision_group(task, group)
                self._scheduler.record_step(len(group))
            did_work = True
        return did_work

    def _execute_decision_group(self, task: str,
                                group: List[_DecisionRequest]) -> None:
        adapter = self._adapters[task]
        for request in group:
            request.handle.metrics.mark_admitted()
            request.handle.metrics.batch_sizes.append(len(group))
        try:
            if task == "vp":
                predictions = adapter.predict_batch([r.payload for r in group])
                results: List[Any] = predictions
            else:
                returns = np.stack([r.payload["returns"] for r in group])
                states = np.stack([r.payload["states"] for r in group])
                actions = np.stack([r.payload["actions"] for r in group])
                masks = None
                if task == "cjs":
                    masks = np.stack([r.payload["valid_mask"] for r in group])
                results = adapter.act_batch(returns, states, actions, valid_masks=masks)
        except Exception as error:
            for request in group:
                request.handle.metrics.mark_finished()
                request.handle._fail(error)
            return
        self._last_finished_at = time.perf_counter()
        for request, result in zip(group, results):
            request.handle.metrics.mark_finished()
            self._completed.append(request.handle.metrics)
            request.handle._resolve(result)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @staticmethod
    def _group_key(task: str, payload: Any) -> Tuple:
        """Batching-compatibility key for a decision request."""
        if task == "vp":
            history = payload.history
            saliency = payload.saliency
            saliency_key = None if saliency is None else tuple(saliency.shape)
            return (tuple(history.shape), saliency_key)
        states = payload["states"]
        return (int(states.shape[0]),)

    def _note_submission(self) -> None:
        if self._started_at is None:
            self._started_at = time.perf_counter()

    def stats(self) -> ServerStats:
        """Aggregate throughput/latency/occupancy over completed requests."""
        with self._lock:
            end = self._last_finished_at or time.perf_counter()
            wall = (end - self._started_at) if self._started_at is not None else 0.0
            prefix = self._manager.prefix if self._manager is not None else None
            return ServerStats.from_requests(
                list(self._completed), wall,
                list(self._scheduler.occupancy_samples),
                list(self._scheduler.queue_depth_samples),
                block_usage_samples=list(self._scheduler.block_usage_samples),
                block_capacity=(self._manager.cache.allocator.num_blocks
                                if self._manager is not None else 0),
                prefix_hits=prefix.hits if prefix is not None else 0,
                prefix_misses=prefix.misses if prefix is not None else 0,
                prefix_tokens_reused=(prefix.tokens_reused
                                      if prefix is not None else 0))
