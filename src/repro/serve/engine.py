"""`InferenceServer` — the batched multi-session serving facade.

One engine serves two kinds of traffic through a single shared model:

* **Generation sessions** (:class:`~repro.serve.requests.GenerateRequest`):
  streaming autoregressive requests decoded with continuous batching over the
  paged KV cache — new sessions are admitted into the in-flight batch
  whenever slots free up, so one ``forward_step`` advances every running
  session at once.  With ``SchedulerPolicy.prefill_chunk_size`` set, each
  step runs the unified token-budget scheduler: decode rows spend the step's
  ``step_token_budget`` first and long prompts are prefilled in chunks with
  the remainder, so a long arrival never stalls in-flight decode (its first
  token streams the moment its final chunk commits).
* **Decision requests** (:class:`~repro.serve.requests.DecisionRequest`):
  per-step adapter inferences answered by pluggable
  :class:`~repro.serve.runtimes.TaskRuntime` registrations (built-ins:
  ``vp``/``abr``/``cjs``).  Pending requests of a task are grouped by the
  runtime's ``group_key`` between decode steps and executed as one batched
  forward.

``submit`` takes a typed request and returns a :class:`RequestHandle`
immediately.  The handle exposes the full request lifecycle: ``result()``
blocks for the final payload, ``stream()`` yields text pieces as decode steps
commit them, and ``cancel()`` aborts the request — evicting its session and
returning its KV blocks to the pool at the next safe point.  Requests may
carry a ``priority`` class (admitted first, aged against starvation) and a
relative ``deadline_s`` (expiry fails the handle with
:class:`~repro.serve.requests.DeadlineExceeded`, in-queue or mid-decode).

**Failure semantics** (fault isolation, not fail-all): an exception in one
phase of a step is *quarantined* to the requests it implicates — the
sessions of the failed decode batch, the sessions of the failed prefill
band/chunk, or the entries of the failed decision group.  Their blocks are
evicted and reclaimed, :meth:`~repro.nn.PagedKVCache.check_invariants`
proves the pool is still sound, and only those handles fail (with
:class:`~repro.serve.requests.RequestFailed` carrying the original error)
while the loop keeps serving everything else.  Transient failures are
retried under ``SchedulerPolicy.retry_policy`` (bounded attempts,
exponential backoff, original queue aging).  Only a violated pool invariant
escalates to the fail-all crash guard, marking the server ``FAILED``.
Under overload, ``shed_queue_depth``/``shed_queue_age_s`` shed new
submissions with :class:`~repro.serve.requests.ServerOverloaded` instead of
letting the queue drown the in-flight work; ``server.health`` summarizes
all of this as HEALTHY/DEGRADED/FAILED.  Deterministic chaos testing hooks
into the same paths via :mod:`repro.serve.faults`.

The engine can be driven synchronously (``step()`` / ``run_until_idle()`` /
``handle.result()``) or by a background thread (``start()`` / ``stop()``, or
the context manager), which lets independent client threads — e.g. a VP
evaluator, several ABR sessions and a CJS workload — share one batched model.
Engine forwards self-wrap in ``repro.nn.no_grad()``, whose flag is
thread-local, so other threads remain free to train concurrently — on *other*
models.  ``Module.training`` is per-module shared state (the engine snapshots
and restores it around forwards), so do not flip the *served* model between
``train()``/``eval()`` from another thread while the loop is running.
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
import warnings
from dataclasses import dataclass
from collections import deque
from typing import Any, Deque, Dict, Hashable, Iterator, List, Optional, Tuple, Union

from ..llm import LanguageModel
from .faults import FaultInjector
from .metrics import (
    OUTCOME_CANCELLED,
    OUTCOME_EXPIRED,
    OUTCOME_FAILED,
    OUTCOME_SHED,
    RequestMetrics,
    ServeCounters,
    ServerHealth,
    ServerStats,
)
from .requests import (
    DeadlineExceeded,
    DecisionRequest,
    GenerateRequest,
    RequestCancelled,
    RequestFailed,
    ServerOverloaded,
)
from .runtimes import TaskRuntime, build_runtime
from .scheduler import ContinuousBatchingScheduler, SchedulerPolicy
from .session import (
    FAILED,
    FINISHED,
    PREFILLING,
    QUEUED,
    REASON_CANCELLED,
    REASON_DEADLINE,
    RUNNING,
    GenerationSession,
    SessionManager,
)
from .telemetry import RequestExplanation, ServeTelemetry

#: The built-in generation task name (decision tasks are runtime
#: registrations; see :mod:`repro.serve.runtimes`).
GENERATE = "generate"

#: Stream-queue sentinel: no more tokens will arrive.
_STREAM_END = object()


class RequestHandle:
    """Future-style handle for one submitted request.

    Beyond the future surface (``done()`` / ``result()``), the handle is the
    client's side of the request lifecycle: ``stream()`` consumes tokens as
    the engine commits them (``GenerateRequest(stream=True)`` only) and
    ``cancel()`` aborts the request, releasing any KV blocks it holds.
    """

    def __init__(self, server: "InferenceServer", request_id: int,
                 request: Union[GenerateRequest, DecisionRequest],
                 metrics: RequestMetrics, *, legacy: bool = False) -> None:
        self._server = server
        self.request_id = request_id
        self.request = request
        self.task = request.task
        self.metrics = metrics
        self._event = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._session: Optional[GenerationSession] = None
        self._stream: Optional[queue_module.SimpleQueue] = None
        self._legacy = legacy
        if isinstance(request, GenerateRequest) and request.stream:
            self._stream = queue_module.SimpleQueue()

    def done(self) -> bool:
        return self._event.is_set()

    def cancelled(self) -> bool:
        return isinstance(self._error, RequestCancelled)

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the request completes and return its payload.

        With the background serve loop running this waits on the loop; in
        synchronous mode it drives the engine until the request resolves.
        Raises :class:`~repro.serve.requests.RequestCancelled` /
        :class:`~repro.serve.requests.DeadlineExceeded` when the request was
        cancelled or expired instead of completing.
        """
        if not self._event.is_set():
            self._server._drive(self, timeout)
        if not self._event.is_set():
            raise TimeoutError(f"request {self.request_id} ({self.task}) timed out")
        if self._error is not None:
            raise self._error
        if self._legacy:
            return getattr(self._result, "value", self._result)
        return self._result

    def cancel(self) -> bool:
        """Abort the request; False when it already reached a terminal state.

        A queued request is dropped before ever touching the model; a running
        generation session is evicted and its KV blocks return to the pool
        immediately.  After a successful cancel, ``result()`` (and an active
        ``stream()``) raise :class:`~repro.serve.requests.RequestCancelled`.
        """
        return self._server._cancel(self)

    def stream(self, timeout: Optional[float] = None) -> Iterator[str]:
        """Yield generated text pieces as decode steps commit them.

        Only available for ``GenerateRequest(stream=True)`` submissions.  The
        concatenation of the yielded pieces equals ``result().text``.  Works
        in both drive modes: with a background serve loop the iterator blocks
        on the token queue; synchronously it steps the engine itself between
        tokens.  ``timeout`` bounds the *inactivity* between consecutive
        pieces (not the total stream duration), so a long but steadily
        producing generation never times out.  A cancelled/expired/failed
        request raises the corresponding error after yielding whatever was
        committed before the failure; iterating a fully-drained stream again
        just re-raises (or returns nothing).
        """
        if self._stream is None:
            raise RuntimeError(
                "this request does not stream; submit a "
                "GenerateRequest(stream=True) to consume tokens incrementally")
        last_progress = time.perf_counter()
        while True:
            try:
                piece = self._stream.get_nowait()
            except queue_module.Empty:
                # Terminal and drained (e.g. the end sentinel went to an
                # earlier iteration/consumer): nothing more will ever arrive.
                if self.done() and self._stream.empty():
                    break
                if timeout is not None \
                        and time.perf_counter() - last_progress > timeout:
                    raise TimeoutError(
                        f"request {self.request_id} ({self.task}) stream "
                        f"produced nothing for {timeout}s")
                if self._server._pump(self):
                    continue  # sync drive: the step may have pushed pieces
                try:  # a background loop produces: block briefly for it
                    piece = self._stream.get(timeout=0.05)
                except queue_module.Empty:
                    continue
            if piece is _STREAM_END:
                break
            last_progress = time.perf_counter()
            yield piece
        if self._error is not None:
            raise self._error

    # -- engine-side plumbing ------------------------------------------- #
    def _push_piece(self, piece: str) -> None:
        if self._stream is not None:
            self._stream.put(piece)

    def _resolve(self, result: Any) -> None:
        if self._event.is_set():  # already terminal (e.g. cancelled): keep it
            return
        self._result = result
        self._event.set()
        if self._stream is not None:
            self._stream.put(_STREAM_END)

    def _fail(self, error: BaseException) -> None:
        if self._event.is_set():  # already terminal (e.g. cancelled): keep it
            return
        self._error = error
        self._event.set()
        if self._stream is not None:
            self._stream.put(_STREAM_END)


@dataclass
class _PendingDecision:
    """One queued decision request with its grouping/lifecycle bookkeeping."""

    handle: RequestHandle
    request: DecisionRequest
    group_key: Hashable = ()
    deadline_at: Optional[float] = None
    #: Retry backoff: not flushed before this time (None: immediately).
    retry_at: Optional[float] = None

    def is_expired(self, now: float) -> bool:
        return self.deadline_at is not None and now > self.deadline_at


class InferenceServer:
    """Batched multi-session inference engine over one shared model.

    Parameters
    ----------
    model:
        The :class:`LanguageModel` serving generation sessions (optional when
        the engine only serves decision traffic).
    policy:
        Batch/context/queue/priority bounds (:class:`SchedulerPolicy`).
    adapters:
        Optional mapping of built-in task name (``"vp"``/``"abr"``/``"cjs"``)
        to the adapted NetLLM adapter answering that task — shorthand for the
        matching :mod:`repro.serve.runtimes` registration.
    runtimes:
        Optional mapping of task name to a :class:`TaskRuntime`
        implementation, for novel tasks beyond the built-ins.
    fault_injector:
        Optional seeded :class:`~repro.serve.faults.FaultInjector` wired
        through the session manager and paged pool (chaos testing only;
        constructing one requires the ``REPRO_FAULTS`` env toggle).
    telemetry:
        The flight recorder (:class:`~repro.serve.telemetry.ServeTelemetry`).
        ``None``/``True`` record with the defaults, ``False`` disables
        tracing entirely (hot paths pay one ``None`` check), and a
        pre-built instance customizes capacity/window width.  Read it back
        via ``server.telemetry`` (``records()``/``windows()``/
        ``export_jsonl()``) and :meth:`explain_request`.
    """

    #: Seconds ``stop()`` waits for the loop thread before declaring a leak.
    JOIN_TIMEOUT_S = 5.0

    def __init__(self, model: Optional[LanguageModel] = None,
                 policy: Optional[SchedulerPolicy] = None,
                 adapters: Optional[Dict[str, Any]] = None,
                 runtimes: Optional[Dict[str, TaskRuntime]] = None,
                 fault_injector: Optional[FaultInjector] = None,
                 telemetry: Union[ServeTelemetry, bool, None] = None) -> None:
        self.policy = policy or SchedulerPolicy()
        self.model = model
        self._faults = fault_injector
        if telemetry is None or telemetry is True:
            telemetry = ServeTelemetry()
        elif telemetry is False:
            telemetry = ServeTelemetry(enabled=False)
        #: The flight recorder (always an object; possibly disabled).
        self.telemetry = telemetry
        # Hot-path guard: None when disabled, so every instrumented site is
        # a single ``is None`` check (same idiom as fault injection).
        self._trace: Optional[ServeTelemetry] = (
            telemetry if telemetry.enabled else None)
        self._manager = (SessionManager(model, max_slots=self.policy.max_batch_size,
                                        max_context=self.policy.max_context,
                                        block_size=self.policy.block_size,
                                        prefill_padding=self.policy.prefill_padding,
                                        ragged_prefill=self.policy.ragged_prefill,
                                        prefix_cache=self.policy.enable_prefix_cache,
                                        max_prefixes=self.policy.max_prefixes,
                                        fault_injector=fault_injector,
                                        telemetry=self._trace,
                                        speculation=self.policy.speculation,
                                        speculation_k=self.policy.speculation_k)
                         if model is not None else None)
        self._scheduler = ContinuousBatchingScheduler(self.policy)
        self._runtimes: Dict[str, TaskRuntime] = {}
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._pending_generation: Dict[int, RequestHandle] = {}  # session_id -> handle
        self._queued_generation: Dict[int, RequestHandle] = {}   # request_id -> handle
        self._pending_decisions: Dict[str, List[_PendingDecision]] = {}
        # Bounded retention: a long-lived server keeps the most recent
        # completions for stats() instead of growing without limit.
        self._completed: Deque[RequestMetrics] = deque(maxlen=16384)
        self._started_at: Optional[float] = None
        self._last_finished_at: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._running = False
        # Fault-tolerance bookkeeping (all under self._lock).
        self._faults_quarantined = 0
        self._retries = 0
        self._shed = 0
        self._crashed = False
        self._last_fault_at: Optional[float] = None
        for task, adapter in (adapters or {}).items():
            self.register_adapter(task, adapter)
        for task, runtime in (runtimes or {}).items():
            self.register_task(task, runtime)

    # ------------------------------------------------------------------ #
    # Registration API
    # ------------------------------------------------------------------ #
    def register_prefix(self, text: str) -> None:
        """Cache a common prompt head so matching prompts skip recomputing it.

        Typical use: register the task adapters' fixed instruction preambles
        once at startup; every generation prompt that starts with a registered
        head then maps its KV blocks by reference and prefills only the tail.
        """
        self._require_model()
        with self._lock:
            self._manager.register_prefix(text)

    def register_task(self, task: str, runtime: TaskRuntime) -> None:
        """Register a :class:`TaskRuntime` answering ``task`` requests.

        This is the extension point for novel tasks: the engine has no
        per-task branches, so a registration is all a new decision task
        needs.
        """
        if task == GENERATE:
            raise ValueError(f"task name {GENERATE!r} is reserved for "
                             f"generation sessions")
        for method in ("group_key", "execute_batch"):
            if not callable(getattr(runtime, method, None)):
                raise TypeError(f"runtime for task {task!r} must implement "
                                f"TaskRuntime.{method}")
        with self._lock:
            self._runtimes[task] = runtime

    def register_adapter(self, task: str, adapter: Any) -> None:
        """Register a built-in NetLLM adapter (``vp``/``abr``/``cjs``)."""
        self.register_task(task, build_runtime(task, adapter))

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #
    def submit(self, request: Union[GenerateRequest, DecisionRequest, str],
               payload: Any = None, **options) -> RequestHandle:
        """Queue one typed request; returns a future-style handle.

        * :class:`GenerateRequest`: a streaming generation session (continuous
          batching path).  ``stream=True`` enables ``handle.stream()``.
        * :class:`DecisionRequest`: answered by the task's registered
          :class:`TaskRuntime` (built-ins: ``vp``/``abr``/``cjs``).

        Passing a task-name string (``submit("generate", prompt, ...)`` /
        ``submit("vp", sample)``) is the deprecated pre-typed surface: it
        constructs the matching request dataclass, warns, and — for decision
        tasks — unwraps the typed result back to the bare payload the old API
        returned.
        """
        if isinstance(request, GenerateRequest):
            if payload is not None or options:
                raise TypeError("GenerateRequest carries all options; pass "
                                "nothing else to submit()")
            return self._submit_generation(request)
        if isinstance(request, DecisionRequest):
            if payload is not None or options:
                raise TypeError("DecisionRequest carries all options; pass "
                                "nothing else to submit()")
            return self._submit_decision(request)
        if isinstance(request, str):
            return self._submit_legacy(request, payload, options)
        raise TypeError(f"submit() takes a GenerateRequest or DecisionRequest, "
                        f"got {type(request).__name__}")

    def _submit_legacy(self, task: str, payload: Any,
                       options: Dict[str, Any]) -> RequestHandle:
        warnings.warn(
            "submit(task: str, payload) is deprecated; submit a typed "
            "GenerateRequest/DecisionRequest instead",
            DeprecationWarning, stacklevel=3)
        if task == GENERATE:
            return self._submit_generation(GenerateRequest(prompt=payload, **options))
        if options:
            raise TypeError(f"unexpected options for {task!r} request: "
                            f"{sorted(options)}")
        return self._submit_decision(DecisionRequest(task=task, payload=payload),
                                     legacy=True)

    def submit_generation(self, prompt: str, **options) -> RequestHandle:
        """Typed-convenience shorthand: ``submit(GenerateRequest(prompt, ...))``."""
        return self._submit_generation(GenerateRequest(prompt=prompt, **options))

    def _submit_generation(self, request: GenerateRequest) -> RequestHandle:
        self._require_model()
        request_id = next(self._ids)
        metrics = RequestMetrics(task=GENERATE, priority=request.priority,
                                 request_id=request_id)
        session = GenerationSession(session_id=request_id, prompt=request.prompt,
                                    max_new_tokens=request.max_new_tokens,
                                    temperature=request.temperature,
                                    seed=request.seed,
                                    stop_on_eos=request.stop_on_eos,
                                    priority=request.priority,
                                    metrics=metrics)
        if request.deadline_s is not None:
            session.deadline_at = metrics.submitted_at + request.deadline_s
        handle = RequestHandle(self, request_id, request, metrics)
        handle._session = session
        if request.stream:
            tokenizer = self.model.tokenizer
            session.on_token = lambda token_id: handle._push_piece(
                tokenizer.decode([token_id]))
        with self._work:
            self._note_submission()
            overload = self._overload_reason()
            if overload is not None:
                self._shed_request(handle, session, overload)
                return handle
            if not self._scheduler.enqueue(session):
                self._shed_request(handle, session, (
                    f"request queue full ({self.policy.max_queue}); "
                    f"retry later"))
                return handle
            self._queued_generation[request_id] = handle
            self._work.notify_all()
        return handle

    def _submit_decision(self, request: DecisionRequest,
                         legacy: bool = False) -> RequestHandle:
        # register_task() mutates _runtimes under the lock; read it there
        # too so a concurrent registration cannot tear this lookup.
        with self._lock:
            runtime = self._runtimes.get(request.task)
        if runtime is None:
            raise ValueError(
                f"no task runtime registered for {request.task!r} "
                f"(register_adapter for vp/abr/cjs, register_task for "
                f"novel tasks)")
        group_key = runtime.group_key(request)
        try:  # probe now: an unhashable key must fail this submission only,
            hash(group_key)  # not explode inside the serve loop's flush
        except TypeError:
            raise TypeError(
                f"task runtime for {request.task!r} returned an unhashable "
                f"group_key ({type(group_key).__name__}); return e.g. a "
                f"tuple of shapes") from None
        request_id = next(self._ids)
        metrics = RequestMetrics(task=request.task, priority=request.priority,
                                 request_id=request_id)
        handle = RequestHandle(self, request_id, request, metrics,
                               legacy=legacy)
        pending = _PendingDecision(
            handle=handle, request=request,
            group_key=group_key,
            deadline_at=(None if request.deadline_s is None
                         else metrics.submitted_at + request.deadline_s))
        with self._work:
            self._note_submission()
            overload = self._overload_reason()
            if overload is not None:
                self._shed_request(handle, None, overload)
                return handle
            self._pending_decisions.setdefault(request.task, []).append(pending)
            self._work.notify_all()
        return handle

    def _require_model(self) -> None:
        if self._manager is None:
            raise ValueError("this server has no language model; "
                             "construct it with model=... to serve generation")

    # ------------------------------------------------------------------ #
    # Overload shedding and health
    # ------------------------------------------------------------------ #
    def _overload_reason(self) -> Optional[str]:
        """Why a new submission should be shed right now (lock held).

        ``None`` means the engine is accepting.  Depth counts everything
        waiting (generation queue + pending decisions); age looks at the
        oldest admissible waiter — both are the signals past which admitting
        more work only pushes every queued request past its deadline.
        """
        policy = self.policy
        if policy.shed_queue_depth is not None:
            depth = self._scheduler.queue_depth + sum(
                len(v) for v in self._pending_decisions.values())
            if depth >= policy.shed_queue_depth:
                return (f"queue depth {depth} at the shed bound "
                        f"{policy.shed_queue_depth}")
        if policy.shed_queue_age_s is not None:
            oldest = self._scheduler.oldest_wait_s()
            if oldest > policy.shed_queue_age_s:
                return (f"oldest queued request has waited {oldest:.3f}s, "
                        f"past the shed bound {policy.shed_queue_age_s}s")
        return None

    def _shed_request(self, handle: RequestHandle,
                      session: Optional[GenerationSession],
                      reason: str) -> None:
        """Reject a submission under overload (lock held)."""
        self._shed += 1
        self.telemetry.note_shed()
        if session is not None:
            session.state = FAILED
        handle.metrics.outcome = OUTCOME_SHED
        handle.metrics.mark_finished()
        self._completed.append(handle.metrics)
        handle._fail(ServerOverloaded(
            f"request {handle.request_id} ({handle.task}) shed: {reason}"))

    @property
    def health(self) -> str:
        """Coarse engine health (see :class:`~repro.serve.metrics.ServerHealth`).

        ``FAILED`` once an unrecoverable fault tore the loop down;
        ``DEGRADED`` while the engine is shedding load or within
        ``health_window_s`` of a quarantined fault or retry; ``HEALTHY``
        otherwise.
        """
        with self._lock:
            if self._crashed:
                return ServerHealth.FAILED
            if self._overload_reason() is not None:
                return ServerHealth.DEGRADED
            if (self._last_fault_at is not None
                    and time.perf_counter() - self._last_fault_at
                    < self.policy.health_window_s):
                return ServerHealth.DEGRADED
            return ServerHealth.HEALTHY

    def _note_fault(self) -> None:
        """Count one quarantine event (lock held)."""
        self._faults_quarantined += 1
        self._last_fault_at = time.perf_counter()

    # ------------------------------------------------------------------ #
    # Lifecycle: cancellation and deadlines
    # ------------------------------------------------------------------ #
    def _cancel(self, handle: RequestHandle) -> bool:
        with self._work:
            if handle.done():
                return False
            session = handle._session
            if session is not None:
                if session.state == QUEUED:
                    self._scheduler.remove(session)
                    self._queued_generation.pop(handle.request_id, None)
                elif session.state in (PREFILLING, RUNNING):
                    self._manager.evict(session, reason=REASON_CANCELLED)
                self._pending_generation.pop(session.session_id, None)
                session.state = FAILED
            else:
                pending = self._pending_decisions.get(handle.task, [])
                self._pending_decisions[handle.task] = [
                    p for p in pending if p.handle is not handle]
            self._terminate(handle, OUTCOME_CANCELLED, RequestCancelled(
                f"request {handle.request_id} ({handle.task}) was cancelled"))
            self._work.notify_all()
        return True

    def _expire(self, handle: RequestHandle, where: str) -> None:
        """Fail an over-deadline request (called with the lock held)."""
        self._terminate(handle, OUTCOME_EXPIRED, DeadlineExceeded(
            f"request {handle.request_id} ({handle.task}) exceeded its "
            f"deadline of {handle.request.deadline_s}s {where}"))

    def _terminate(self, handle: RequestHandle, outcome: str,
                   error: BaseException) -> None:
        if outcome == OUTCOME_CANCELLED:
            self.telemetry.note_cancelled()
        elif outcome == OUTCOME_EXPIRED:
            self.telemetry.note_expired()
        handle.metrics.outcome = outcome
        handle.metrics.mark_finished()
        self._completed.append(handle.metrics)
        self._last_finished_at = time.perf_counter()
        handle._fail(error)

    def _reap_expired_queued(self) -> bool:
        """Fail queued generation sessions whose deadline already passed."""
        expired = self._scheduler.reap_expired()
        for session in expired:
            session.state = FAILED
            handle = self._queued_generation.pop(session.session_id, None)
            if handle is not None:
                self._expire(handle, "while queued")
        return bool(expired)

    def _reap_expired_running(self) -> bool:
        """Evict running/prefilling sessions whose deadline passed mid-step."""
        if self._manager is None:
            return False
        now = time.perf_counter()
        expired = [s for s in list(self._manager.running.values())
                   + list(self._manager.prefilling.values())
                   if s.is_expired(now)]
        for session in expired:
            self._manager.evict(session, reason=REASON_DEADLINE)
            session.state = FAILED
            handle = self._pending_generation.pop(session.session_id, None)
            if handle is not None:
                self._expire(handle, "mid-decode")
        return bool(expired)

    # ------------------------------------------------------------------ #
    # Engine loop
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """One scheduling round: admit, batched decode, flush decisions.

        Returns True when any work was performed (so drivers can loop until
        the engine goes idle).  Per-phase failures are quarantined to the
        implicated requests inside the phases; an exception escaping a phase
        (e.g. pool invariants violated after a quarantine) is unrecoverable —
        everything pending fails with it, the server turns ``FAILED`` and
        the error propagates to the driver.
        """
        with self._lock:
            trace = self._trace
            if trace is not None:
                trace.begin_step(
                    time.perf_counter(),
                    self._faults.fired_log if self._faults is not None else None)
            did_work = False
            try:
                did_work |= self._reap_expired_queued()
                did_work |= self._admit_queued()
                did_work |= self._reap_expired_running()
                did_work |= self._decode_step()
                did_work |= self._flush_decisions()
                return did_work
            except BaseException as error:
                did_work = True  # a crashing step is never discarded as idle
                self._crashed = True
                self._fail_all_pending(error)
                raise
            finally:
                # Commit on the crash path too: the record of the step that
                # tore the server down is the one a post-mortem needs most.
                if trace is not None:
                    self._commit_step_trace(did_work)

    def _commit_step_trace(self, did_work: bool) -> None:
        """Freeze this step's trace draft with the end-of-step gauges."""
        manager = self._manager
        prefix = manager.prefix if manager is not None else None
        self._trace.commit_step(  # repro: noqa[REP005] sole caller is step()'s finally, already under the `trace is not None` guard
            time.perf_counter(), did_work,
            queue_depth=self._scheduler.queue_depth,
            queue_depth_by_priority=self._scheduler.queue_depth_by_priority(),
            blocks_in_use=(manager.cache.blocks_in_use
                           if manager is not None else 0),
            prefix_hits_total=prefix.hits if prefix is not None else 0)

    def run_until_idle(self) -> None:
        """Drive the engine synchronously until no work remains.

        Parks briefly when the only remaining work is a retry backoff that
        has not elapsed yet, so retried requests still complete.
        """
        while True:
            if self.step():
                continue
            wake = self._next_retry_at()
            if wake is None:
                return
            time.sleep(min(max(wake - time.perf_counter(), 0.0), 0.05))

    @property
    def is_serving(self) -> bool:
        """True while the background serve loop is running."""
        return self._thread is not None and self._thread.is_alive()

    def has_pending_work(self) -> bool:
        with self._lock:
            running = (self._manager.num_running + self._manager.num_prefilling
                       if self._manager else 0)
            pending = sum(len(v) for v in self._pending_decisions.values())
            return bool(running or pending or self._scheduler.queue_depth)

    # ------------------------------------------------------------------ #
    # Background serve loop
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceServer":
        """Run the serve loop on a background thread (idempotent)."""
        with self._lock:
            if self._running:
                return self
            self._running = True
        self._thread = threading.Thread(target=self._serve_loop,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the background loop.

        With ``drain`` the engine first finishes everything — *queued* work
        included, whether or not the background loop is (still) alive: if the
        loop died or was never started, the remaining work is driven
        synchronously.  Without ``drain``, queued requests are failed
        immediately (fail-fast: nothing new is admitted) and in-flight work
        is failed once the loop exits — either way no client blocks forever
        on a handle whose server has gone away.
        """
        if drain:
            while self.has_pending_work():
                if not self.is_serving:
                    self.run_until_idle()
                    break
                time.sleep(0.001)
        else:
            self._fail_queued(RuntimeError(
                "server stopped before admitting this request"))
        with self._work:
            self._running = False
            self._work.notify_all()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.JOIN_TIMEOUT_S)
            if thread.is_alive():
                # The loop thread is wedged (very likely holding the engine
                # lock), so the fail-everything path below could deadlock —
                # raise loudly instead of silently leaking a live thread
                # whose pending handles may never resolve.
                raise RuntimeError(
                    f"serve loop thread {thread.name!r} did not exit within "
                    f"{self.JOIN_TIMEOUT_S}s of stop(); leaking it — pending "
                    f"handles may hang and the engine must not be reused")
        # One atomic snapshot under the lock: _pending_generation is
        # mutated lock-held on the submit/cancel paths, and the reentrant
        # lock makes the nested has_pending_work() acquisition free.
        with self._lock:
            leftover = bool(self.has_pending_work()
                            or self._pending_generation)
        if leftover:
            self._fail_all_pending(RuntimeError(
                "server stopped before completing this request"))

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _serve_loop(self) -> None:
        while True:
            with self._work:
                if not self._running:
                    return
            try:
                did_work = self.step()
            except BaseException as error:
                # The loop thread must not die silently: clients blocked in
                # handle.result() would hang forever. Fail everything pending
                # with the original error and shut the loop down.
                self._fail_all_pending(error)
                with self._work:
                    self._running = False
                return
            if not did_work:
                with self._work:
                    if not self._running:
                        return
                    self._work.wait(timeout=0.005)

    def _fail_queued(self, error: BaseException) -> None:
        """Fail every *queued* (not yet admitted) request immediately."""
        with self._lock:
            for session in self._scheduler.drain():
                session.state = FAILED
                handle = self._queued_generation.pop(session.session_id, None)
                if handle is not None:
                    handle._fail(error)
            for task, pending in list(self._pending_decisions.items()):
                self._pending_decisions[task] = []
                for entry in pending:
                    entry.handle._fail(error)

    def _fail_all_pending(self, error: BaseException) -> None:
        """Fail every queued/in-flight request (serve loop is going down)."""
        with self._lock:
            self._fail_queued(error)
            if self._manager is not None:
                for session in (list(self._manager.running.values())
                                + list(self._manager.prefilling.values())):
                    try:
                        self._manager.evict(session, reason="failed")
                    except Exception:
                        # A corrupted pool must not mask the original error:
                        # every remaining handle still fails with it below.
                        pass
                    session.state = FAILED
                    self._finish_generation(session, error=error)
            for session_id in list(self._pending_generation):
                handle = self._pending_generation.pop(session_id)
                handle._fail(error)

    def _drive(self, handle: RequestHandle, timeout: Optional[float]) -> None:
        """Resolve ``handle``: wait on the loop thread or step synchronously."""
        if self._thread is not None and self._thread.is_alive() \
                and threading.current_thread() is not self._thread:
            handle._event.wait(timeout)
            return
        deadline = None if timeout is None else time.perf_counter() + timeout
        while not handle.done():
            if deadline is not None and time.perf_counter() > deadline:
                return
            if self.step() or handle.done():
                continue
            wake = self._next_retry_at()
            if wake is None:
                handle._fail(RuntimeError(
                    f"request {handle.request_id} cannot complete: engine is idle"))
                return
            # Idle only until a retry backoff elapses: park, then step again.
            time.sleep(min(max(wake - time.perf_counter(), 0.0), 0.05))

    def _pump(self, handle: RequestHandle) -> bool:
        """One drive round for a blocked ``stream()`` consumer.

        With a live background loop this is a no-op returning False (the
        loop produces the tokens; the consumer should block on the queue);
        otherwise the consumer thread steps the engine itself, exactly as
        ``_drive`` does for ``result()``, and returns True.
        """
        if handle.done():
            return True
        if self._thread is not None and self._thread.is_alive() \
                and threading.current_thread() is not self._thread:
            return False
        if not self.step() and not handle.done():
            wake = self._next_retry_at()
            if wake is None:
                handle._fail(RuntimeError(
                    f"request {handle.request_id} cannot complete: "
                    f"engine is idle"))
            else:
                time.sleep(min(max(wake - time.perf_counter(), 0.0), 0.05))
        return True

    # ------------------------------------------------------------------ #
    # Step phases (called with the lock held)
    # ------------------------------------------------------------------ #
    def _admit_queued(self) -> bool:
        """Admission/prefill phase of one engine step.

        With ``prefill_chunk_size`` unset this is the classic one-shot path:
        queued sessions are admitted into freed slots and fully prefilled in
        ragged bands.  With it set, the phase runs the unified token-budget
        scheduler: in-flight prefills resume one chunk each, then new
        sessions are admitted while slots and the step's token budget last
        (decode rows were already charged one token each against
        ``step_token_budget``).
        """
        if self._manager is None:
            return False
        if self.policy.prefill_chunk_size is not None:
            return self._budgeted_prefill_phase()
        admitted = self._scheduler.admissions(self._manager.num_free)
        if not admitted:
            return False
        if self._trace is not None:
            self._trace.note_admitted(s.session_id for s in admitted)
        for session in admitted:
            handle = self._queued_generation.pop(session.session_id, None)
            if handle is not None:
                self._pending_generation[session.session_id] = handle
        try:
            self._manager.admit_many(admitted)
        except Exception:
            # Batched prefill failed: retry one by one so a single bad
            # request cannot reject the whole admission wave.
            for session in admitted:
                if session.state != QUEUED:
                    continue
                try:
                    self._manager.admit(session)
                except Exception as error:
                    self._quarantine_sessions([session], error, phase="prefill")
        for session in admitted:
            if session.state == FINISHED:  # e.g. EOS sampled from prefill
                self._finish_generation(session)
        return True

    def _budgeted_prefill_phase(self) -> bool:
        """Chunked prefill under the step token budget (see SchedulerPolicy)."""
        manager = self._manager
        chunk = self.policy.prefill_chunk_size
        # Decode's share of the step budget: with speculation on, each row
        # plans its draft now and is charged 1 + drafted tokens; off, the
        # plan degenerates to one token per running row.  A draft-proposal
        # fault implicates the whole decode batch (no KV state exists yet,
        # so the quarantine is purely bookkeeping).
        try:
            planned = manager.plan_decode_tokens(self.policy.step_token_budget)
        except Exception as error:
            self._quarantine_sessions(list(manager.running.values()), error,
                                      phase="draft propose")
            planned = manager.num_running
        budget = self._scheduler.prefill_budget(planned)
        cap = manager.num_free
        if budget is not None:
            # In-flight prefills draw from the budget first — reserve the
            # worst case for each (a full chunk plus the same-step decode row
            # of a completion) — and earlier admissions in the wave may draw
            # that much before later ones.  Size the wave so even then every
            # admitted session gets at least one token this step: a session
            # admitted with zero progress would leave the priority queue only
            # to hoard a batch slot in FIFO prefill order.
            draw = chunk + 1  # worst per-session budget draw (chunk + decode)
            remaining = budget - draw * manager.num_prefilling
            # The last admission may need 2 tokens (a one-token tail costs
            # prefill + its same-step decode row), hence the -2.
            cap = 0 if remaining < 2 else min(cap, (remaining - 2) // draw + 1)
        admitted = self._scheduler.admissions(cap) if cap > 0 else []
        for session in admitted:
            handle = self._queued_generation.pop(session.session_id, None)
            if handle is not None:
                self._pending_generation[session.session_id] = handle
        if not admitted and not manager.num_prefilling:
            return False
        if self._trace is not None:
            self._trace.note_prefill_budget(budget)
            self._trace.note_admitted(s.session_id for s in admitted)
        spent, terminal, failures, deferred = manager.prefill_step(
            admitted, self.policy.prefill_chunk_size, budget)
        for session in terminal:
            self._finish_generation(session)
        for session, error in failures:
            # The manager already aborted the session (abort is idempotent);
            # quarantine re-verifies the pool and retries-or-fails the handle.
            self._quarantine_sessions([session], error, phase="prefill chunk")
        # Budget ran dry before these admissions' first token: put them back
        # at the head of the priority queue with their original wait intact,
        # so aging and FIFO ordering continue as if they had never left.
        # Reversed so the earliest-admitted deferral keeps the earliest seq.
        for session in reversed(deferred):
            if self._trace is not None:
                self._trace.note_deferred(session.session_id)
            handle = self._pending_generation.pop(session.session_id, None)
            self._scheduler.requeue_front(session)
            if handle is not None:
                self._queued_generation[session.session_id] = handle
        return bool(admitted or spent or terminal or failures)

    def _decode_step(self) -> bool:
        if self._manager is None or self._manager.num_running == 0:
            return False
        batch = list(self._manager.running.values())
        if self._trace is not None:
            self._trace.note_decode(s.session_id for s in batch)
        try:
            completed, occupancy = self._manager.step()
        except Exception as error:
            # The whole decode batch is implicated: a mid-forward failure may
            # have left any of its rows with partially-committed KV state.
            self._quarantine_sessions(batch, error, phase="decode step")
            return True
        if occupancy:
            self._scheduler.record_step(
                occupancy, blocks_in_use=self._manager.cache.blocks_in_use)
        for session in completed:
            self._finish_generation(session)
        return True

    # ------------------------------------------------------------------ #
    # Fault quarantine and retries (called with the lock held)
    # ------------------------------------------------------------------ #
    def _quarantine_sessions(self, sessions: List[GenerationSession],
                             error: BaseException, phase: str) -> None:
        """Contain a phase failure to the sessions it implicates.

        Evict-first, check-second: the implicated sessions' blocks (possibly
        holding partially-committed state) are reclaimed *before*
        ``check_invariants`` judges the pool, so a clean quarantine leaves a
        provably sound pool and the loop keeps serving.  A violated invariant
        means the fault corrupted shared state — that escalates (raises) into
        the fail-all crash guard in :meth:`step`.
        """
        self._note_fault()
        if self._trace is not None:
            self._trace.note_quarantine(s.session_id for s in sessions)
        for session in sessions:
            self._manager.abort(session)
        self._verify_pool_sound(error)
        now = time.perf_counter()
        for session in sessions:
            self._resolve_failed_session(session, error, phase, now)

    def _verify_pool_sound(self, error: BaseException) -> None:
        """Prove the KV pool survived a quarantine; escalate if it did not."""
        manager = self._manager
        if manager is None:
            return
        prefix = manager.prefix
        try:
            manager.cache.check_invariants(
                external_refs=prefix.external_refs() if prefix is not None
                else None)
        except AssertionError as violation:
            raise RuntimeError(
                f"unrecoverable fault: KV-pool invariants violated after "
                f"quarantine ({violation}); original error: {error}") from error

    def _resolve_failed_session(self, session: GenerationSession,
                                error: BaseException, phase: str,
                                now: float) -> None:
        """Retry a quarantined session if policy allows, else fail its handle."""
        policy = self.policy.retry_policy
        handle = self._pending_generation.get(session.session_id)
        streamed = (handle is not None
                    and session.metrics.first_token_at is not None
                    and handle._stream is not None)
        if (policy is not None and policy.is_retryable(error)
                and session.metrics.attempts < policy.max_attempts
                and not streamed and not session.is_expired(now)):
            self._retry_generation(session, now)
            return
        session.state = FAILED
        if self._trace is not None:
            self._trace.note_failed()
        handle = self._pending_generation.pop(session.session_id, None)
        session.metrics.outcome = OUTCOME_FAILED
        session.metrics.mark_finished()
        self._completed.append(session.metrics)
        self._last_finished_at = time.perf_counter()
        if handle is not None:
            handle._fail(RequestFailed(
                f"request {session.session_id} (generate) failed during "
                f"{phase}: {error}", cause=error))

    def _retry_generation(self, session: GenerationSession, now: float) -> None:
        """Re-enqueue a quarantined session for another attempt.

        The session restarts from scratch (its KV state was evicted by the
        quarantine) but keeps its original ``submitted_at``, so priority
        aging continues as if it had never been admitted.
        """
        policy = self.policy.retry_policy
        session.metrics.attempts += 1
        self._retries += 1
        if self._trace is not None:
            self._trace.note_retry()
        # Reset execution state back to a fresh submission.
        session.state = QUEUED
        session.slot = None
        session.prompt_ids = []
        session.prompt_pos = 0
        session.prefill_cache = None
        session.prefix_entry = None
        session.generated = []
        session.stopped_by_eos = False
        session.finish_reason = None
        session.num_inferences = 0
        session._rng = None
        session._last_step_at = None
        metrics = session.metrics
        metrics.admitted_at = None
        metrics.first_token_at = None
        metrics.token_seconds = []
        metrics.batch_sizes = []
        metrics.tokens_generated = 0
        metrics.prefix_tokens = 0
        failures = session.metrics.attempts - 1
        backoff = policy.backoff_for(failures)
        session.retry_at = (now + backoff) if backoff > 0 else None
        self._scheduler.requeue_front(session)
        handle = self._pending_generation.pop(session.session_id, None)
        if handle is not None:
            self._queued_generation[session.session_id] = handle

    def _quarantine_decision_group(self, task: str,
                                   group: List[_PendingDecision],
                                   error: BaseException) -> None:
        """Contain a decision-batch failure to that group's entries.

        Runtimes never touch the KV pool, so no invariant check is needed —
        the blast radius is exactly the batched entries, each retried under
        the retry policy or failed with :class:`RequestFailed`.
        """
        self._note_fault()
        if self._trace is not None:
            self._trace.note_quarantine(e.handle.request_id for e in group)
        policy = self.policy.retry_policy
        now = time.perf_counter()
        for entry in group:
            metrics = entry.handle.metrics
            if (policy is not None and policy.is_retryable(error)
                    and metrics.attempts < policy.max_attempts
                    and not entry.is_expired(now)):
                metrics.attempts += 1
                self._retries += 1
                if self._trace is not None:
                    self._trace.note_retry()
                backoff = policy.backoff_for(metrics.attempts - 1)
                entry.retry_at = (now + backoff) if backoff > 0 else None
                self._pending_decisions.setdefault(task, []).append(entry)
                continue
            metrics.outcome = OUTCOME_FAILED
            metrics.mark_finished()
            if self._trace is not None:
                self._trace.note_failed()
            self._completed.append(metrics)
            entry.handle._fail(RequestFailed(
                f"request {entry.handle.request_id} ({task}) decision batch "
                f"failed: {error}", cause=error))

    def _next_retry_at(self) -> Optional[float]:
        """Earliest pending retry wake-up across both queues (None: no retries)."""
        with self._lock:
            candidates: List[float] = []
            queued = self._scheduler.next_retry_at()
            if queued is not None:
                candidates.append(queued)
            for pending in self._pending_decisions.values():
                candidates.extend(e.retry_at for e in pending
                                  if e.retry_at is not None)
            return min(candidates) if candidates else None

    def _finish_generation(self, session: GenerationSession,
                           error: Optional[BaseException] = None) -> None:
        if error is None and self._trace is not None:
            self._trace.note_finished(session.session_id)
        handle = self._pending_generation.pop(session.session_id, None)
        self._last_finished_at = time.perf_counter()
        if handle is None:
            return
        if error is not None:
            session.metrics.mark_finished()
            handle._fail(error)
            return
        self._completed.append(session.metrics)
        handle._resolve(session.to_result(self.model.tokenizer))

    def _flush_decisions(self) -> bool:
        did_work = False
        now = time.perf_counter()
        ready: List[Tuple[str, List[_PendingDecision]]] = []
        for task in list(self._pending_decisions):
            pending = self._pending_decisions.get(task)
            if not pending:
                continue
            # Retry-parked entries stay queued until their backoff elapses.
            eligible = [e for e in pending
                        if e.retry_at is None or e.retry_at <= now]
            waiting = [e for e in pending
                       if e.retry_at is not None and e.retry_at > now]
            self._pending_decisions[task] = waiting
            if not eligible:
                continue
            groups: Dict[Hashable, List[_PendingDecision]] = {}
            for entry in eligible:
                if entry.is_expired(now):
                    self._expire(entry.handle, "while queued")
                    continue
                entry.retry_at = None
                groups.setdefault(entry.group_key, []).append(entry)
            ready.extend((task, group) for group in groups.values())
            did_work = True
        # Higher-priority groups execute first within the flush round (every
        # pending decision still runs this step; priority orders the batched
        # forwards, which is what bounds a high-priority request's latency).
        ready.sort(key=lambda item: -max(e.request.priority for e in item[1]))
        for task, group in ready:
            self._execute_decision_group(task, group)
            self._scheduler.record_step(len(group))
        return did_work

    def _execute_decision_group(self, task: str,
                                group: List[_PendingDecision]) -> None:
        runtime = self._runtimes[task]
        for entry in group:
            entry.handle.metrics.mark_admitted()
            entry.handle.metrics.batch_sizes.append(len(group))
        try:
            if self._faults is not None:
                self._faults.fire("runtime.execute_batch")
            results = runtime.execute_batch([entry.request for entry in group])
            if len(results) != len(group):
                raise RuntimeError(
                    f"task runtime {task!r} returned {len(results)} results "
                    f"for a batch of {len(group)}")
        except Exception as error:
            # Blast radius: exactly this decision batch (see satellite test).
            self._quarantine_decision_group(task, group, error)
            return
        self._last_finished_at = time.perf_counter()
        if self._trace is not None:
            self._trace.note_decisions(len(group))
        for entry, result in zip(group, results):
            entry.handle.metrics.mark_finished()
            self._completed.append(entry.handle.metrics)
            entry.handle._resolve(result)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _note_submission(self) -> None:
        if self._started_at is None:
            self._started_at = time.perf_counter()

    def stats(self) -> ServerStats:
        """Aggregate throughput/latency/occupancy over completed requests."""
        with self._lock:
            end = (self._last_finished_at
                   if self._last_finished_at is not None
                   else time.perf_counter())
            wall = (end - self._started_at) if self._started_at is not None else 0.0
            prefix = self._manager.prefix if self._manager is not None else None
            counters = ServeCounters(
                prefix_hits=prefix.hits if prefix is not None else 0,
                prefix_misses=prefix.misses if prefix is not None else 0,
                prefix_tokens_reused=(prefix.tokens_reused
                                      if prefix is not None else 0),
                faults_quarantined=self._faults_quarantined,
                retries=self._retries,
                shed=self._shed,
                tokens_drafted=(self._manager.tokens_drafted
                                if self._manager is not None else 0),
                tokens_accepted=(self._manager.tokens_accepted
                                 if self._manager is not None else 0))
            return ServerStats.from_requests(
                list(self._completed), wall,
                list(self._scheduler.occupancy_samples),
                list(self._scheduler.queue_depth_samples),
                block_usage_samples=list(self._scheduler.block_usage_samples),
                block_capacity=(self._manager.cache.allocator.num_blocks
                                if self._manager is not None else 0),
                counters=counters,
                health=self.health,
                telemetry=self.telemetry.summary())

    def explain_request(self, request_id: int,
                        top_gaps: int = 3) -> RequestExplanation:
        """Attribute a finished request's TTFT and worst inter-token gaps.

        Joins the request's latency intervals to the flight-recorder step
        records covering them (see :meth:`~repro.serve.telemetry.
        ServeTelemetry.explain_request`): which sessions were co-batched,
        which prefill chunks were in flight, and what fault/quarantine/retry
        activity hit — the "who was in the batch when my ITL spiked" answer.
        Raises ``KeyError`` when no completed request has this id (still
        running, or already rotated out of the completion window).
        """
        with self._lock:
            for metrics in reversed(self._completed):
                if metrics.request_id == request_id:
                    return self.telemetry.explain_request(metrics,
                                                          top_gaps=top_gaps)
        raise KeyError(
            f"no completed request with id {request_id} (still running, "
            f"never submitted, or rotated out of the completion window)")
