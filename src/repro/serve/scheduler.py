"""Continuous-batching scheduler: request queue + admission/eviction policy.

The scheduler owns the request queue and decides, between decode steps, which
queued sessions join the in-flight batch (vLLM-style continuous batching:
admissions happen whenever slots free up, never only at batch boundaries).
Admission is **priority-class** ordered: a higher ``priority`` leaves the
queue first, FIFO within a class, and waiting requests *age* into higher
effective classes (``priority_aging_s``) so a busy high-priority stream can
never starve background work.  The scheduler also samples the queue depth and
batch occupancy that feed the :class:`~repro.serve.metrics.ServerStats`
report.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, Type

from ..nn import DEFAULT_BLOCK_SIZE
from .session import GenerationSession


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-execution of transiently-failed requests.

    ``max_attempts`` counts *executions* (first attempt included), so the
    default of 2 means one retry.  An error is retryable when it carries a
    truthy ``transient`` attribute (e.g.
    :class:`~repro.serve.faults.TransientFault`) or is an instance of one of
    the ``retry_on`` exception types — everything else fails the request
    immediately with :class:`~repro.serve.requests.RequestFailed`.  Retried
    generation sessions re-enter the queue at the *front* with their
    original submission time (priority aging and deadlines carry over), and
    ``backoff_for`` spaces attempts exponentially:
    ``backoff_s * backoff_multiplier ** (failures - 1)`` seconds after the
    ``failures``-th failure.
    """

    max_attempts: int = 2
    backoff_s: float = 0.0
    backoff_multiplier: float = 2.0
    retry_on: Tuple[Type[BaseException], ...] = ()

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts counts executions, so it must be >= 1; "
                f"got {self.max_attempts}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_multiplier < 1:
            raise ValueError(
                f"backoff_multiplier must be >= 1 (exponential spacing), "
                f"got {self.backoff_multiplier}")
        for exc in self.retry_on:
            if not (isinstance(exc, type) and issubclass(exc, BaseException)):
                raise TypeError(
                    f"retry_on entries must be exception types, got {exc!r}")

    def is_retryable(self, error: BaseException) -> bool:
        """Whether ``error`` classifies as transient under this policy."""
        if self.retry_on and isinstance(error, self.retry_on):
            return True
        return bool(getattr(error, "transient", False))

    def backoff_for(self, failures: int) -> float:
        """Seconds to park before the attempt after the N-th failure."""
        if self.backoff_s <= 0 or failures < 1:
            return 0.0
        return self.backoff_s * self.backoff_multiplier ** (failures - 1)


@dataclass(frozen=True)
class SchedulerPolicy:
    """Knobs bounding the in-flight batch, per-session context and KV paging.

    ``max_batch_size`` caps how many sessions decode together per engine
    step.  ``max_context`` caps each session's total context length (prompt +
    generated); ``None`` defers to the model's ``max_seq_len``.  ``max_queue``
    bounds the waiting queue — submissions beyond it are rejected, which is
    the backpressure signal a load balancer in front of the engine would
    consume.  ``priority_aging_s`` makes priority admission starvation-free:
    a queued request's effective class grows by one per ``priority_aging_s``
    seconds waited, so any request eventually outranks fresh higher-priority
    traffic (``None`` disables aging: strict classes).  ``block_size`` is the
    paged KV-cache block granularity (an explicit ``max_context`` must be a
    whole number of blocks so the context cap and the pool reservation
    agree).  ``prefill_padding`` bounds padding waste in ragged batched
    prefill: prompt tails are partitioned into length bands (greedily, over
    the sorted lengths) such that each band's right-padded token count stays
    within ``(1 + prefill_padding)`` of its real token count — small bound,
    many narrow bands; large bound, few wide ones.  ``ragged_prefill=False``
    falls back to equal-length-only grouping (the pre-paging behaviour, kept
    for benchmarking).  ``enable_prefix_cache`` turns shared prompt-head
    caching on; ``max_prefixes`` bounds how many heads stay resident (LRU
    beyond that).

    **Chunked prefill / token-budget stepping** (Sarathi-style stall-free
    batching):

    ``prefill_chunk_size`` caps how many prompt tokens one session prefills
    per engine step.  A prompt longer than the chunk is admitted across
    several steps — the session sits in the ``PREFILLING`` state with a
    resumable offset — so in-flight decode sessions keep producing tokens
    *between* the chunks of a long prompt instead of stalling for its whole
    prefill (the head-of-line stall that blows up inter-token p95 exactly
    when the server is busiest).  Prompts whose tail fits inside one chunk
    still ride the ragged length-banded batched prefill.  ``None`` (default)
    preserves one-shot prefill — each prompt admitted in a single forward —
    which is the baseline the latency benchmark compares against.

    ``step_token_budget`` bounds the *total* tokens one engine step schedules:
    every in-flight decode row spends one token first, and only the remaining
    budget is granted to prefill chunks / new admissions.  The bound is
    exact: a prompt that *completes* its prefill joins the same step's decode
    batch, so completion is charged one extra token — a grant that cannot
    afford it stops one token short instead.  A small budget
    keeps step wall-time (and therefore inter-token latency) flat under
    prompt bursts; ``None`` leaves steps unbounded (prefill work is still
    chunked per session when ``prefill_chunk_size`` is set).  Setting a
    budget requires ``prefill_chunk_size`` — the budget is spent in chunk
    grants.

    **Speculative decoding**:

    ``speculation="ngram"`` turns on draft-and-verify multi-token decoding:
    each decode row proposes up to ``speculation_k`` draft tokens copied
    from its own prompt/generated history (no second model — see
    :mod:`repro.serve.speculative`), verifies them in one ragged
    multi-token forward, and keeps the longest accepted prefix.  Output is
    token-exact versus ``speculation="off"`` at any temperature (the
    acceptance rule replays the session's own sampling, RNG draws
    included); only the forwards-per-token ratio changes.  Draft length
    adapts per session between 1 and ``speculation_k`` (fully accepted
    drafts grow it, rejected drafts halve it).  Under ``step_token_budget``
    each speculative row is charged ``1 + drafted`` tokens — draft lengths
    are trimmed, round-robin, to fit the budget — so prefill chunks and
    speculation share one token-accounting regime.

    **Fault tolerance / graceful degradation**:

    ``retry_policy`` re-enqueues transiently-failed requests (see
    :class:`RetryPolicy`); ``None`` (default) fails them on the first fault.
    ``shed_queue_depth`` / ``shed_queue_age_s`` shed *new* submissions with
    :class:`~repro.serve.requests.ServerOverloaded` once the waiting queue
    (generation + pending decisions) reaches that depth / once its oldest
    waiter exceeds that age — admitting more work past either bound only
    pushes everything queued past its deadline.  ``health_window_s`` is how
    long after a quarantined fault or retry the engine still reports
    ``DEGRADED`` health (see :class:`~repro.serve.metrics.ServerHealth`).
    """

    max_batch_size: int = 16
    max_context: Optional[int] = None
    max_queue: Optional[int] = None
    priority_aging_s: Optional[float] = 30.0
    block_size: int = DEFAULT_BLOCK_SIZE
    prefill_padding: float = 0.5
    ragged_prefill: bool = True
    enable_prefix_cache: bool = True
    max_prefixes: int = 8
    prefill_chunk_size: Optional[int] = None
    step_token_budget: Optional[int] = None
    retry_policy: Optional[RetryPolicy] = None
    shed_queue_depth: Optional[int] = None
    shed_queue_age_s: Optional[float] = None
    health_window_s: float = 5.0
    speculation: str = "off"
    speculation_k: int = 4

    def __post_init__(self) -> None:
        if self.speculation not in ("off", "ngram"):
            raise ValueError(
                f"speculation must be 'off' or 'ngram', got "
                f"{self.speculation!r}")
        if self.speculation_k < 1:
            raise ValueError(
                f"speculation_k must be >= 1 draft tokens, got "
                f"{self.speculation_k}")
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be a positive batch width, got "
                f"{self.max_batch_size}")
        if self.prefill_chunk_size is not None and self.prefill_chunk_size < 1:
            raise ValueError(
                f"prefill_chunk_size must be >= 1 tokens (or None for "
                f"one-shot prefill), got {self.prefill_chunk_size}")
        if self.step_token_budget is not None:
            if self.step_token_budget < 2:
                # Admitting any prompt costs at least 2 tokens (one prefill
                # token plus its same-step decode row), so a budget of 1 can
                # never admit anything — starvation, not throttling.
                raise ValueError(
                    f"step_token_budget must be >= 2 tokens (or None for "
                    f"unbounded steps), got {self.step_token_budget}")
            if self.prefill_chunk_size is None:
                raise ValueError(
                    "step_token_budget requires prefill_chunk_size: the "
                    "budget is spent in prefill-chunk grants")
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.prefill_padding < 0:
            raise ValueError(
                f"prefill_padding must be >= 0, got {self.prefill_padding}")
        if self.max_prefixes < 1:
            raise ValueError(f"max_prefixes must be >= 1, got {self.max_prefixes}")
        if self.priority_aging_s is not None and self.priority_aging_s <= 0:
            raise ValueError(
                f"priority_aging_s must be positive seconds (or None to "
                f"disable aging), got {self.priority_aging_s}")
        if self.max_context is not None:
            if self.max_context < 2:
                raise ValueError("max_context must be >= 2")
            if self.max_context % self.block_size:
                raise ValueError(
                    f"max_context ({self.max_context}) must be a multiple of "
                    f"block_size ({self.block_size}) so the context cap is a "
                    f"whole number of KV blocks")
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.retry_policy is not None \
                and not isinstance(self.retry_policy, RetryPolicy):
            raise TypeError(
                f"retry_policy must be a RetryPolicy (or None), got "
                f"{type(self.retry_policy).__name__}")
        if self.shed_queue_depth is not None and self.shed_queue_depth < 1:
            raise ValueError(
                f"shed_queue_depth must be >= 1 (or None to disable "
                f"depth-based shedding), got {self.shed_queue_depth}")
        if self.shed_queue_age_s is not None and self.shed_queue_age_s <= 0:
            raise ValueError(
                f"shed_queue_age_s must be positive seconds (or None to "
                f"disable age-based shedding), got {self.shed_queue_age_s}")
        if self.health_window_s < 0:
            raise ValueError(
                f"health_window_s must be >= 0, got {self.health_window_s}")


@dataclass
class _QueueEntry:
    seq: int
    enqueued_at: float
    session: GenerationSession


class ContinuousBatchingScheduler:
    """Priority-class admission of queued sessions into freed batch slots."""

    #: Per-step samples retained for stats (bounded for long-lived servers).
    MAX_SAMPLES = 65536

    def __init__(self, policy: Optional[SchedulerPolicy] = None) -> None:
        self.policy = policy or SchedulerPolicy()
        self._queue: List[_QueueEntry] = []
        self._seq = 0
        self._front_seq = 0  # decreasing seqs for requeued (deferred) sessions
        self.queue_depth_samples: Deque[int] = deque(maxlen=self.MAX_SAMPLES)
        self.occupancy_samples: Deque[int] = deque(maxlen=self.MAX_SAMPLES)
        self.block_usage_samples: Deque[int] = deque(maxlen=self.MAX_SAMPLES)
        self.admitted_total = 0
        self.rejected_total = 0

    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def queue_depth_by_priority(self) -> Dict[int, int]:
        """Waiting sessions per *raw* priority class (telemetry gauge).

        Raw, not aged: the flight recorder wants the submitted class mix
        (aging is derivable from the record timestamps when needed).
        """
        depths: Dict[int, int] = {}
        for entry in self._queue:
            priority = entry.session.priority
            depths[priority] = depths.get(priority, 0) + 1
        return depths

    def enqueue(self, session: GenerationSession) -> bool:
        """Queue a session for admission; False when the queue is full."""
        if (self.policy.max_queue is not None
                and len(self._queue) >= self.policy.max_queue):
            self.rejected_total += 1
            return False
        self._queue.append(_QueueEntry(seq=self._seq,
                                       enqueued_at=time.perf_counter(),
                                       session=session))
        self._seq += 1
        return True

    def requeue_front(self, session: GenerationSession) -> None:
        """Return a popped-but-never-started session to the queue.

        Used when the step token budget ran dry before an admitted session's
        first prefill token.  Unlike :meth:`enqueue`, the entry keeps the
        session's full wait: ``enqueued_at`` is its submission time (so
        priority aging resumes where it left off, not from zero) and its seq
        precedes every live entry (so it keeps winning FIFO ties against
        later arrivals).  The queue bound does not apply — the session was
        already accounted for when it first entered.
        """
        self._front_seq -= 1
        self._queue.append(_QueueEntry(seq=self._front_seq,
                                       enqueued_at=session.metrics.submitted_at,
                                       session=session))

    def remove(self, session: GenerationSession) -> bool:
        """Drop a queued session (cancellation); False when not queued."""
        for index, entry in enumerate(self._queue):
            if entry.session is session:
                del self._queue[index]
                return True
        return False

    def effective_priority(self, entry: _QueueEntry, now: float) -> int:
        """The entry's priority class after starvation-free aging."""
        aging = self.policy.priority_aging_s
        if aging is None:
            return entry.session.priority
        return entry.session.priority + int((now - entry.enqueued_at) / aging)

    def prefill_budget(self, decode_rows: int) -> Optional[int]:
        """Prompt tokens this step may spend after decode takes its share.

        The unified token-budget policy: each of the ``decode_rows`` sessions
        already in flight spends one token of ``step_token_budget`` first;
        whatever remains funds prefill chunks and new admissions.  ``None``
        means unbounded (no ``step_token_budget`` configured).

        With speculative decoding on, the caller passes the *planned decode
        tokens* (``sum(1 + drafted)`` over the batch, from
        ``SessionManager.plan_decode_tokens``) instead of the row count, so
        drafts and prefill chunks are charged against the same budget.
        """
        budget = self.policy.step_token_budget
        if budget is None:
            return None
        return max(0, budget - decode_rows)

    def admissions(self, free_slots: int,
                   now: Optional[float] = None) -> List[GenerationSession]:
        """Pop the sessions to admit into the freed slots.

        Highest effective priority class first; FIFO (submission order)
        within a class.  Sessions parked for retry backoff
        (``session.retry_at`` in the future) are not eligible until their
        backoff elapses.
        """
        if free_slots <= 0 or not self._queue:
            return []
        now = time.perf_counter() if now is None else now
        eligible = [e for e in self._queue
                    if e.session.retry_at is None or e.session.retry_at <= now]
        grant = min(free_slots, len(eligible))
        if grant <= 0:
            return []
        ranked = sorted(eligible,
                        key=lambda e: (-self.effective_priority(e, now), e.seq))
        chosen = ranked[:grant]
        taken = {id(entry) for entry in chosen}
        self._queue = [entry for entry in self._queue if id(entry) not in taken]
        self.admitted_total += len(chosen)
        for entry in chosen:
            entry.session.retry_at = None
        return [entry.session for entry in chosen]

    def oldest_wait_s(self, now: Optional[float] = None) -> float:
        """Seconds the oldest admissible queued session has been waiting.

        Feeds age-based load shedding.  Sessions parked for retry backoff
        are excluded — they wait on purpose, and counting them would make
        one retried straggler shed all fresh traffic.
        """
        if not self._queue:
            return 0.0
        now = time.perf_counter() if now is None else now
        waits = [now - e.enqueued_at for e in self._queue
                 if e.session.retry_at is None or e.session.retry_at <= now]
        return max(waits) if waits else 0.0

    def next_retry_at(self) -> Optional[float]:
        """Earliest ``retry_at`` across parked sessions (None: none parked).

        Idle drivers use this to sleep until backoff work becomes eligible
        instead of declaring the engine stuck.
        """
        times = [e.session.retry_at for e in self._queue
                 if e.session.retry_at is not None]
        return min(times) if times else None

    def reap_expired(self, now: Optional[float] = None) -> List[GenerationSession]:
        """Pop every queued session whose deadline has already passed."""
        now = time.perf_counter() if now is None else now
        expired = [e.session for e in self._queue if e.session.is_expired(now)]
        if expired:
            dead = set(map(id, expired))
            self._queue = [e for e in self._queue if id(e.session) not in dead]
        return expired

    def drain(self) -> List[GenerationSession]:
        """Pop every queued session (shutdown/fail-fast path)."""
        drained = [entry.session for entry in self._queue]
        self._queue = []
        return drained

    # ------------------------------------------------------------------ #
    def record_step(self, batch_size: int,
                    blocks_in_use: Optional[int] = None) -> None:
        """Sample per-step occupancy, queue depth and KV-block usage."""
        self.occupancy_samples.append(batch_size)
        self.queue_depth_samples.append(len(self._queue))
        if blocks_in_use is not None:
            self.block_usage_samples.append(blocks_in_use)
