"""Continuous-batching scheduler: request queue + admission/eviction policy.

The scheduler owns the FIFO request queue and decides, between decode steps,
which queued sessions join the in-flight batch (vLLM-style continuous
batching: admissions happen whenever slots free up, never only at batch
boundaries).  It also samples the queue depth and batch occupancy that feed
the :class:`~repro.serve.metrics.ServerStats` report.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..nn import DEFAULT_BLOCK_SIZE
from .session import GenerationSession


@dataclass(frozen=True)
class SchedulerPolicy:
    """Knobs bounding the in-flight batch, per-session context and KV paging.

    ``max_batch_size`` caps how many sessions decode together per engine
    step.  ``max_context`` caps each session's total context length (prompt +
    generated); ``None`` defers to the model's ``max_seq_len``.  ``max_queue``
    bounds the waiting queue — submissions beyond it are rejected, which is
    the backpressure signal a load balancer in front of the engine would
    consume.  ``block_size`` is the paged KV-cache block granularity (an
    explicit ``max_context`` must be a whole number of blocks so the context
    cap and the pool reservation agree).  ``prefill_padding`` bounds padding
    waste in ragged batched prefill: prompt tails are partitioned into length
    bands (greedily, over the sorted lengths) such that each band's
    right-padded token count stays within ``(1 + prefill_padding)`` of its
    real token count — small bound, many narrow bands; large bound, few wide
    ones.  ``ragged_prefill=False`` falls back to equal-length-only grouping
    (the pre-paging behaviour, kept for benchmarking).
    ``enable_prefix_cache`` turns shared prompt-head caching on;
    ``max_prefixes`` bounds how many heads stay resident (LRU beyond that).
    """

    max_batch_size: int = 16
    max_context: Optional[int] = None
    max_queue: Optional[int] = None
    block_size: int = DEFAULT_BLOCK_SIZE
    prefill_padding: float = 0.5
    ragged_prefill: bool = True
    enable_prefix_cache: bool = True
    max_prefixes: int = 8

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be a positive batch width, got "
                f"{self.max_batch_size}")
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.prefill_padding < 0:
            raise ValueError(
                f"prefill_padding must be >= 0, got {self.prefill_padding}")
        if self.max_prefixes < 1:
            raise ValueError(f"max_prefixes must be >= 1, got {self.max_prefixes}")
        if self.max_context is not None:
            if self.max_context < 2:
                raise ValueError("max_context must be >= 2")
            if self.max_context % self.block_size:
                raise ValueError(
                    f"max_context ({self.max_context}) must be a multiple of "
                    f"block_size ({self.block_size}) so the context cap is a "
                    f"whole number of KV blocks")
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")


class ContinuousBatchingScheduler:
    """FIFO admission of queued sessions into freed batch slots."""

    #: Per-step samples retained for stats (bounded for long-lived servers).
    MAX_SAMPLES = 65536

    def __init__(self, policy: Optional[SchedulerPolicy] = None) -> None:
        self.policy = policy or SchedulerPolicy()
        self._queue: Deque[GenerationSession] = deque()
        self.queue_depth_samples: Deque[int] = deque(maxlen=self.MAX_SAMPLES)
        self.occupancy_samples: Deque[int] = deque(maxlen=self.MAX_SAMPLES)
        self.block_usage_samples: Deque[int] = deque(maxlen=self.MAX_SAMPLES)
        self.admitted_total = 0
        self.rejected_total = 0

    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def enqueue(self, session: GenerationSession) -> bool:
        """Queue a session for admission; False when the queue is full."""
        if (self.policy.max_queue is not None
                and len(self._queue) >= self.policy.max_queue):
            self.rejected_total += 1
            return False
        self._queue.append(session)
        return True

    def admissions(self, free_slots: int) -> List[GenerationSession]:
        """Pop the sessions to admit into the freed slots (FIFO order)."""
        grant = min(free_slots, len(self._queue))
        admitted = [self._queue.popleft() for _ in range(grant)]
        self.admitted_total += len(admitted)
        return admitted

    # ------------------------------------------------------------------ #
    def record_step(self, batch_size: int,
                    blocks_in_use: Optional[int] = None) -> None:
        """Sample per-step occupancy, queue depth and KV-block usage."""
        self.occupancy_samples.append(batch_size)
        self.queue_depth_samples.append(len(self._queue))
        if blocks_in_use is not None:
            self.block_usage_samples.append(blocks_in_use)
