"""Pluggable task runtimes: how the engine executes decision requests.

A :class:`TaskRuntime` answers one named task's :class:`DecisionRequest`
traffic.  The engine only knows the protocol — ``group_key`` partitions
pending requests into batch-compatible groups between decode steps, and
``execute_batch`` answers one group in a single forward — so adding a task is
a registration (:meth:`~repro.serve.engine.InferenceServer.register_task`),
not an engine edit.  The three NetLLM decision tasks (``vp``/``abr``/``cjs``)
live here as the built-in registrations the old hard-coded engine branches
became.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Protocol, Sequence, Type, runtime_checkable

import numpy as np

from .requests import ABRResult, CJSResult, DecisionRequest, VPResult


@runtime_checkable
class TaskRuntime(Protocol):
    """Executes one task's decision requests in batch-compatible groups."""

    def group_key(self, request: DecisionRequest) -> Hashable:
        """Batching-compatibility key: equal keys may share one forward."""
        ...

    def execute_batch(self, requests: Sequence[DecisionRequest]) -> List[Any]:
        """Answer one group (all sharing a ``group_key``); one result per
        request, in order."""
        ...


class VPRuntime:
    """Viewport prediction through ``VPAdapter.predict_batch``."""

    def __init__(self, adapter: Any) -> None:
        self.adapter = adapter

    def group_key(self, request: DecisionRequest) -> Hashable:
        sample = request.payload
        saliency = sample.saliency
        saliency_key = None if saliency is None else tuple(saliency.shape)
        return (tuple(sample.history.shape), saliency_key)

    def execute_batch(self, requests: Sequence[DecisionRequest]) -> List[VPResult]:
        predictions = self.adapter.predict_batch([r.payload for r in requests])
        return [VPResult(viewport=prediction) for prediction in predictions]


class _ReturnConditionedRuntime:
    """Shared grouping/stacking for the return-conditioned decision tasks.

    Payloads are the context dicts the NetLLM deployment policies prepare
    (``returns``/``states``/``actions`` and, for CJS, ``valid_mask``); windows
    of equal length batch into one ``DecisionAdapter.act_batch`` forward.
    """

    uses_valid_mask = False

    def __init__(self, adapter: Any) -> None:
        self.adapter = adapter

    def group_key(self, request: DecisionRequest) -> Hashable:
        return (int(request.payload["states"].shape[0]),)

    def execute_batch(self, requests: Sequence[DecisionRequest]) -> List[Any]:
        payloads = [r.payload for r in requests]
        returns = np.stack([p["returns"] for p in payloads])
        states = np.stack([p["states"] for p in payloads])
        actions = np.stack([p["actions"] for p in payloads])
        masks = (np.stack([p["valid_mask"] for p in payloads])
                 if self.uses_valid_mask else None)
        answers = self.adapter.act_batch(returns, states, actions, valid_masks=masks)
        return [self._wrap(answer) for answer in answers]

    def _wrap(self, answer: Any) -> Any:
        raise NotImplementedError


class ABRRuntime(_ReturnConditionedRuntime):
    """Adaptive bitrate decisions through ``DecisionAdapter.act_batch``."""

    def _wrap(self, answer: Any) -> ABRResult:
        return ABRResult(action=tuple(answer))


class CJSRuntime(_ReturnConditionedRuntime):
    """Cluster-scheduling decisions through ``DecisionAdapter.act_batch``."""

    uses_valid_mask = True

    def _wrap(self, answer: Any) -> CJSResult:
        stage_index, bucket = answer
        return CJSResult(stage_index=int(stage_index), bucket=int(bucket))


#: The built-in task registrations (adapter in, runtime out).
BUILTIN_RUNTIMES: Dict[str, Type] = {
    "vp": VPRuntime,
    "abr": ABRRuntime,
    "cjs": CJSRuntime,
}


def build_runtime(task: str, adapter: Any) -> TaskRuntime:
    """Wrap ``adapter`` in the built-in runtime for ``task``.

    This is the compatibility bridge behind ``register_adapter``/the
    ``adapters=`` constructor argument; novel tasks implement
    :class:`TaskRuntime` directly and go through ``register_task``.
    """
    try:
        runtime_cls = BUILTIN_RUNTIMES[task]
    except KeyError:
        raise ValueError(
            f"unknown decision task {task!r}; expected one of "
            f"{tuple(BUILTIN_RUNTIMES)} (for a novel task, implement "
            f"TaskRuntime and call register_task)") from None
    return runtime_cls(adapter)
