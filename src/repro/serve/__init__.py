"""``repro.serve`` — batched multi-session inference serving.

The runtime substrate (``repro.nn``'s paged :class:`~repro.nn.PagedKVCache`
and the batched ``forward_step`` path) advances N independent decoding
sessions in one forward over block-granular KV storage; this package adds the
serving machinery on top: a session manager with ragged length-bucketed
batched prefill and a shared prompt-prefix cache (:class:`PrefixCache`), a
continuous-batching scheduler, and the :class:`InferenceServer` facade with
future-style request handles and a queue-level metrics surface (tokens/s,
p50/p95 latency, batch occupancy, block occupancy, prefix hits, queue depth).
"""

from .clients import (
    LockstepABRDriver,
    ServedABRPolicy,
    ServedCJSScheduler,
    ServedVPPredictor,
    serve_vp_predictions,
)
from .engine import InferenceServer, RequestHandle
from .metrics import RequestMetrics, ServerStats
from .prefix import PrefixCache, PrefixEntry
from .scheduler import ContinuousBatchingScheduler, SchedulerPolicy
from .session import GenerationSession, SessionManager

__all__ = [
    "ContinuousBatchingScheduler", "SchedulerPolicy",
    "GenerationSession", "SessionManager",
    "PrefixCache", "PrefixEntry",
    "InferenceServer", "RequestHandle",
    "RequestMetrics", "ServerStats",
    "LockstepABRDriver", "ServedABRPolicy", "ServedCJSScheduler",
    "ServedVPPredictor", "serve_vp_predictions",
]
