"""``repro.serve`` — batched multi-session inference serving.

The runtime substrate (``repro.nn``'s :class:`~repro.nn.BatchedKVCache` and
the batched ``forward_step`` path) advances N independent decoding sessions
in one forward; this package adds the serving machinery on top: a session
manager, a continuous-batching scheduler, and the :class:`InferenceServer`
facade with future-style request handles and a queue-level metrics surface
(tokens/s, p50/p95 latency, batch occupancy, queue depth).
"""

from .clients import (
    LockstepABRDriver,
    ServedABRPolicy,
    ServedCJSScheduler,
    ServedVPPredictor,
    serve_vp_predictions,
)
from .engine import InferenceServer, RequestHandle
from .metrics import RequestMetrics, ServerStats
from .scheduler import ContinuousBatchingScheduler, SchedulerPolicy
from .session import GenerationSession, SessionManager

__all__ = [
    "ContinuousBatchingScheduler", "SchedulerPolicy",
    "GenerationSession", "SessionManager",
    "InferenceServer", "RequestHandle",
    "RequestMetrics", "ServerStats",
    "LockstepABRDriver", "ServedABRPolicy", "ServedCJSScheduler",
    "ServedVPPredictor", "serve_vp_predictions",
]
