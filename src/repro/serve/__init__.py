"""``repro.serve`` — batched multi-session inference serving.

The runtime substrate (``repro.nn``'s paged :class:`~repro.nn.PagedKVCache`
and the batched ``forward_step`` path) advances N independent decoding
sessions in one forward over block-granular KV storage; this package adds the
serving machinery on top: a **typed request/response API**
(:class:`GenerateRequest` / :class:`DecisionRequest` and per-task result
types), request handles with the full lifecycle (``result()`` /
``stream()`` / ``cancel()``, deadlines, priority classes), **pluggable task
runtimes** (:class:`TaskRuntime`; ``vp``/``abr``/``cjs`` are the built-in
registrations), a session manager with ragged length-bucketed batched prefill
and a shared prompt-prefix cache (:class:`PrefixCache`), a priority-aware
continuous-batching scheduler, and the :class:`InferenceServer` facade with a
queue-level metrics surface (tokens/s, p50/p95 latency per priority class,
batch occupancy, block occupancy, prefix hits, cancelled/expired counts).

**Fault tolerance**: the engine is fault-isolated and self-healing.  A
failure in one phase of a step is *quarantined* to the requests it
implicates — their KV blocks are reclaimed, the pool is re-proven sound, and
only those handles fail with :class:`RequestFailed` (original error chained)
while serving continues.  Transient failures retry under
:class:`RetryPolicy` (bounded attempts, exponential backoff, original queue
aging); overload sheds new submissions with :class:`ServerOverloaded`;
``server.health`` and the fault counters on :class:`ServerStats` surface the
state.  :mod:`repro.serve.faults` provides the deterministic
:class:`FaultInjector` (gated behind the ``REPRO_FAULTS`` env toggle) whose
named sites — ``runtime.execute_batch``, ``prefill.band``,
``prefill.chunk``, ``decode.step``, ``decode.logits``, ``draft.propose``,
``decode.verify``, ``kv.admit``, ``kv.extend``, ``prefix.seed`` — drive the
chaos test suite through exactly the production quarantine paths.

**Speculative decoding**: ``SchedulerPolicy(speculation="ngram")`` turns on
draft-and-verify multi-token decode — each session drafts up to
``speculation_k`` tokens copied from its own prompt/generated history
(:class:`NgramProposer`; no second model), verifies them in one ragged
multi-token forward, and keeps the longest accepted prefix, with rejected
KV rolled back.  Output is token-exact versus sequential decoding at any
temperature; acceptance counters surface on :class:`ServerStats`
(``tokens_drafted`` / ``tokens_accepted`` / ``acceptance_rate``) and
per-step on :class:`StepRecord`.  See :mod:`repro.serve.speculative` and
``docs/speculative.md``.

**Observability**: every engine step is recorded by a flight recorder
(:class:`ServeTelemetry`, on by default) — step-level :class:`StepRecord`
traces in a bounded ring (:class:`TraceLog`, JSONL-exportable), fixed
wall-clock window aggregates (:class:`WindowAggregator` /
:class:`WindowStats`, surfaced via ``server.telemetry.windows()`` and
``stats().report()["telemetry"]``), and tail-latency attribution:
``server.explain_request(request_id)`` joins a finished request's TTFT and
worst inter-token gaps to the step records covering them
(:class:`RequestExplanation`) — who was co-batched, which prefill chunks
were in flight, and what fault/retry activity hit.
"""

from ..llm.generation import GenerationResult
from .clients import (
    LockstepABRDriver,
    ServedABRPolicy,
    ServedCJSScheduler,
    ServedVPPredictor,
    serve_vp_predictions,
)
from .engine import InferenceServer, RequestHandle
from .faults import (
    FAULT_SITES,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    TransientFault,
)
from .metrics import RequestMetrics, ServeCounters, ServerHealth, ServerStats
from .prefix import PrefixCache, PrefixEntry
from .requests import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    ABRResult,
    CJSResult,
    DeadlineExceeded,
    DecisionRequest,
    GenerateRequest,
    RequestCancelled,
    RequestFailed,
    ServerOverloaded,
    VPResult,
)
from .runtimes import ABRRuntime, CJSRuntime, TaskRuntime, VPRuntime, build_runtime
from .scheduler import ContinuousBatchingScheduler, RetryPolicy, SchedulerPolicy
from .session import GenerationSession, SessionManager
from .speculative import AdaptiveK, DraftProposer, NgramProposer
from .telemetry import (
    GapAttribution,
    RequestExplanation,
    ServeTelemetry,
    StepRecord,
    TraceLog,
    WindowAggregator,
    WindowStats,
)

__all__ = [
    "GenerateRequest", "DecisionRequest",
    "GenerationResult", "VPResult", "ABRResult", "CJSResult",
    "RequestCancelled", "DeadlineExceeded",
    "RequestFailed", "ServerOverloaded",
    "PRIORITY_LOW", "PRIORITY_NORMAL", "PRIORITY_HIGH",
    "TaskRuntime", "VPRuntime", "ABRRuntime", "CJSRuntime", "build_runtime",
    "ContinuousBatchingScheduler", "SchedulerPolicy", "RetryPolicy",
    "GenerationSession", "SessionManager",
    "DraftProposer", "NgramProposer", "AdaptiveK",
    "PrefixCache", "PrefixEntry",
    "FaultInjector", "FaultSpec", "InjectedFault", "TransientFault",
    "FAULT_SITES",
    "InferenceServer", "RequestHandle",
    "RequestMetrics", "ServeCounters", "ServerStats", "ServerHealth",
    "ServeTelemetry", "StepRecord", "TraceLog",
    "WindowAggregator", "WindowStats",
    "GapAttribution", "RequestExplanation",
    "LockstepABRDriver", "ServedABRPolicy", "ServedCJSScheduler",
    "ServedVPPredictor", "serve_vp_predictions",
]
