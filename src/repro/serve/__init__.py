"""``repro.serve`` — batched multi-session inference serving.

The runtime substrate (``repro.nn``'s paged :class:`~repro.nn.PagedKVCache`
and the batched ``forward_step`` path) advances N independent decoding
sessions in one forward over block-granular KV storage; this package adds the
serving machinery on top: a **typed request/response API**
(:class:`GenerateRequest` / :class:`DecisionRequest` and per-task result
types), request handles with the full lifecycle (``result()`` /
``stream()`` / ``cancel()``, deadlines, priority classes), **pluggable task
runtimes** (:class:`TaskRuntime`; ``vp``/``abr``/``cjs`` are the built-in
registrations), a session manager with ragged length-bucketed batched prefill
and a shared prompt-prefix cache (:class:`PrefixCache`), a priority-aware
continuous-batching scheduler, and the :class:`InferenceServer` facade with a
queue-level metrics surface (tokens/s, p50/p95 latency per priority class,
batch occupancy, block occupancy, prefix hits, cancelled/expired counts).
"""

from ..llm.generation import GenerationResult
from .clients import (
    LockstepABRDriver,
    ServedABRPolicy,
    ServedCJSScheduler,
    ServedVPPredictor,
    serve_vp_predictions,
)
from .engine import InferenceServer, RequestHandle
from .metrics import RequestMetrics, ServerStats
from .prefix import PrefixCache, PrefixEntry
from .requests import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    ABRResult,
    CJSResult,
    DeadlineExceeded,
    DecisionRequest,
    GenerateRequest,
    RequestCancelled,
    VPResult,
)
from .runtimes import ABRRuntime, CJSRuntime, TaskRuntime, VPRuntime, build_runtime
from .scheduler import ContinuousBatchingScheduler, SchedulerPolicy
from .session import GenerationSession, SessionManager

__all__ = [
    "GenerateRequest", "DecisionRequest",
    "GenerationResult", "VPResult", "ABRResult", "CJSResult",
    "RequestCancelled", "DeadlineExceeded",
    "PRIORITY_LOW", "PRIORITY_NORMAL", "PRIORITY_HIGH",
    "TaskRuntime", "VPRuntime", "ABRRuntime", "CJSRuntime", "build_runtime",
    "ContinuousBatchingScheduler", "SchedulerPolicy",
    "GenerationSession", "SessionManager",
    "PrefixCache", "PrefixEntry",
    "InferenceServer", "RequestHandle",
    "RequestMetrics", "ServerStats",
    "LockstepABRDriver", "ServedABRPolicy", "ServedCJSScheduler",
    "ServedVPPredictor", "serve_vp_predictions",
]
