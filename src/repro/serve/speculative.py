"""Draft proposers for speculative multi-token decoding.

The serving engine's decode loop is one full transformer forward per output
token per session.  Speculative decoding buys back wall-clock by *drafting*
several candidate tokens cheaply, verifying them all in one ragged
multi-token forward (the chunked-prefill causal machinery reused as a
verification step — see :meth:`repro.nn.PagedKVCache.prepare_multi_step`),
and keeping the longest accepted prefix.  The acceptance rule makes the
output **token-exact**: draft token ``d_t`` is accepted iff it equals the
token the session would have sampled from the verified logits at that
position — ``argmax`` at temperature 0, and the session's own seeded RNG
draw at temperature > 0 — so the emitted stream is bit-identical to
sequential decoding at any temperature, and the only thing speculation
changes is how many forwards it took to produce it.

There is no second model: the paper's decision traffic is dominated by
*templated* prompts, so drafts are copied out of each session's own
history.  :class:`NgramProposer` keeps a per-session hash index from the
last few tokens (n-grams of order 3, 2, 1) to the position after their most
recent earlier occurrence; a draft is the run of tokens that followed the
longest matching suffix.  On repetitive/templated text most drafts accept
wholesale and each step emits several tokens; on incompressible text the
per-session :class:`AdaptiveK` controller backs the draft length off to 1
so the overhead stays one extra query column per forward.

Everything here is plain data-structure code — no model access, no pool
access — so a draft fault (site ``draft.propose``) can never corrupt KV
state, and rollback of rejected drafts is entirely the cache's
:meth:`~repro.nn.PagedKVCache.truncate_session` concern.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence, Tuple

__all__ = ["DraftProposer", "NgramProposer", "AdaptiveK"]

#: Longest n-gram key indexed (and matched) by :class:`NgramProposer`;
#: longer matches are preferred, shorter ones are the fallback.
MAX_ORDER = 3


class DraftProposer(Protocol):
    """Protocol for draft-token proposers consumed by the session manager.

    A proposer observes each session's token history (prompt plus generated
    tokens) via :meth:`sync` and proposes up to ``k`` likely continuation
    tokens via :meth:`propose`.  Proposals are *hints*: every proposed token
    is verified against the model before it can be emitted, so a wrong
    draft costs only wasted compute, never a wrong token.
    """

    def sync(self, session_id: int, tokens: Sequence[int]) -> None:
        """Observe a session's full token history (called before proposing;
        ``tokens`` grows append-only between calls for a live session)."""

    def propose(self, session_id: int, k: int) -> List[int]:
        """Up to ``k`` draft tokens continuing the session's history."""

    def forget(self, session_id: int) -> None:
        """Drop all state for a finished/evicted session."""


class NgramProposer:
    """Prompt-copy drafter: propose the continuation of the most recent
    earlier occurrence of the session's current suffix.

    Per session, an index maps each n-gram (orders ``MAX_ORDER`` down to 1)
    to the position *after* its most recent occurrence strictly before the
    end of history.  ``propose`` looks up the current suffix longest-order
    first and copies ``k`` tokens from the match onward; a copy that reaches
    the end of history continues cyclically (the session is repeating a
    short cycle — extend it rather than clamp the draft).  Indexing is
    incremental: :meth:`sync` only walks the tokens appended since the last
    call, so steady-state cost is O(new tokens), not O(history).
    """

    def __init__(self, min_order: int = 1) -> None:
        if not 1 <= min_order <= MAX_ORDER:
            raise ValueError(f"min_order must be in 1..{MAX_ORDER}")
        self.min_order = min_order
        self._tokens: Dict[int, List[int]] = {}
        #: session -> {ngram tuple -> position after its latest occurrence}
        self._index: Dict[int, Dict[Tuple[int, ...], int]] = {}
        self._indexed: Dict[int, int] = {}  # tokens already folded into _index

    def sync(self, session_id: int, tokens: Sequence[int]) -> None:
        history = self._tokens.setdefault(session_id, [])
        if len(tokens) < len(history):
            raise ValueError(
                f"session {session_id} history shrank from {len(history)} to "
                f"{len(tokens)} tokens; histories are append-only")
        history.extend(tokens[len(history):])
        index = self._index.setdefault(session_id, {})
        done = self._indexed.get(session_id, 0)
        # Index every n-gram ending at positions [done, len); an n-gram
        # ending at position e (exclusive) maps to e — the position of the
        # token that followed it.  Later occurrences overwrite earlier ones,
        # so lookups always copy from the most recent match.
        for end in range(max(done, self.min_order), len(history)):
            for order in range(self.min_order, MAX_ORDER + 1):
                if order > end:
                    break
                index[tuple(history[end - order:end])] = end
        self._indexed[session_id] = len(history)

    def propose(self, session_id: int, k: int) -> List[int]:
        history = self._tokens.get(session_id)
        if not history or k < 1:
            return []
        index = self._index[session_id]
        for order in range(min(MAX_ORDER, len(history)), self.min_order - 1, -1):
            match = index.get(tuple(history[-order:]))
            # Indexed positions always lie strictly before end-of-history
            # (the current suffix itself is only indexed once more tokens
            # land), but guard anyway: a match at the end has no follower.
            if match is not None and match < len(history):
                run = list(history[match:])
                if len(run) >= k:
                    return run[:k]
                # The matched continuation runs right up to the present
                # token: the session is emitting a cycle whose period is
                # ``len(run)``.  Extend the draft by continuing the cycle —
                # exact for truly periodic text, and merely a (verified)
                # guess otherwise — instead of clamping the draft to the
                # period and wasting the rest of the budget.
                return [run[i % len(run)] for i in range(k)]
        return []

    def forget(self, session_id: int) -> None:
        self._tokens.pop(session_id, None)
        self._index.pop(session_id, None)
        self._indexed.pop(session_id, None)


class AdaptiveK:
    """Per-session draft-length controller: exploit streaks, flee misses.

    Tracks one draft length per session, capped at the policy's
    ``speculation_k``.  After each verified step: a fully accepted draft
    grows ``k`` by one (toward the cap); a fully rejected draft halves it
    (toward 1); a partial acceptance settles at the accepted length — so a
    templated session climbs to the cap and an incompressible one decays to
    paying a single wasted query column per step.
    """

    def __init__(self, cap: int) -> None:
        if cap < 1:
            raise ValueError("speculation cap must be >= 1")
        self.cap = cap
        self._k: Dict[int, int] = {}

    def current(self, session_id: int) -> int:
        return self._k.get(session_id, self.cap)

    def observe(self, session_id: int, drafted: int, accepted: int) -> None:
        if drafted < 1:
            return
        if accepted >= drafted:
            k = min(self.cap, self.current(session_id) + 1)
        elif accepted == 0:
            k = max(1, self.current(session_id) // 2)
        else:
            k = max(1, accepted)
        self._k[session_id] = k

    def forget(self, session_id: int) -> None:
        self._k.pop(session_id, None)
