"""Per-request and server-level metrics for the serving engine.

The metrics surface follows the queue-level performance-diagnosis framing the
serving literature converges on: every request records how long it queued, how
long it decoded and which batch sizes it rode in, and the server aggregates
those into throughput / tail-latency / occupancy statistics.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..utils import percentile


#: Request outcomes (``RequestMetrics.outcome``).
OUTCOME_OK = "ok"
OUTCOME_CANCELLED = "cancelled"
OUTCOME_EXPIRED = "expired"
OUTCOME_FAILED = "failed"  # quarantined after a fault (RequestFailed)
OUTCOME_SHED = "shed"      # rejected at submission under overload


class ServerHealth:
    """Coarse engine health surfaced through ``ServerStats.health``.

    ``HEALTHY``: serving normally.  ``DEGRADED``: still serving, but the
    engine recently quarantined a fault or retried a request (within
    ``SchedulerPolicy.health_window_s``), or is currently shedding load.
    ``FAILED``: the serve loop escalated an unrecoverable fault (pool
    invariants violated) and failed everything pending — the state a replica
    manager reads to trigger failover.
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass
class RequestMetrics:
    """Lifecycle timing of one request through the engine."""

    task: str
    priority: int = 0
    #: Engine-assigned request id (joins this request to the telemetry
    #: trace; ``None`` for metrics constructed outside the engine).
    request_id: Optional[int] = None
    #: How the request ended: completed (``"ok"``), ``handle.cancel()``-ed
    #: (``"cancelled"``), past its ``deadline_s`` (``"expired"``),
    #: fault-quarantined (``"failed"``) or overload-rejected (``"shed"``).
    outcome: str = OUTCOME_OK
    #: Execution attempts so far (1 = first attempt; bumped per retry).
    attempts: int = 1
    submitted_at: float = field(default_factory=time.perf_counter)
    admitted_at: Optional[float] = None
    first_token_at: Optional[float] = None
    finished_at: Optional[float] = None
    tokens_generated: int = 0
    #: Per-token wall-clock seconds (prefill token first) — the same breakdown
    #: :func:`repro.llm.generation.generate` returns with ``collect_timing``.
    token_seconds: List[float] = field(default_factory=list)
    #: Batch occupancy of each engine step this request participated in.
    batch_sizes: List[int] = field(default_factory=list)
    #: Prompt-head tokens served from the shared-prefix cache (0 on a miss).
    prefix_tokens: int = 0

    def mark_admitted(self) -> None:
        self.admitted_at = time.perf_counter()

    def mark_finished(self) -> None:
        self.finished_at = time.perf_counter()

    @property
    def queue_seconds(self) -> float:
        """Time spent waiting before the scheduler admitted the request.

        A request that ended *in the queue* (cancelled or deadline-expired
        before admission) reports its full queued lifetime.
        """
        if self.admitted_at is not None:
            return self.admitted_at - self.submitted_at
        if self.finished_at is not None:
            return self.finished_at - self.submitted_at
        return 0.0

    @property
    def decode_seconds(self) -> float:
        """Time from admission to completion (prefill + all decode steps)."""
        if self.admitted_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.admitted_at

    @property
    def total_seconds(self) -> float:
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at

    @property
    def ttft_s(self) -> float:
        """Time to first token: submission until the first token committed.

        Covers queueing *and* prefill — with chunked prefill a long prompt's
        TTFT spans every chunk, which is exactly the head-latency the
        serving benchmarks gate.  0.0 while no token has been produced.
        """
        if self.first_token_at is None:
            return 0.0
        return self.first_token_at - self.submitted_at

    @property
    def time_to_first_token(self) -> float:  # repro: noqa[REP004] the deprecation shim itself; remove with the alias
        """Deprecated pre-PR-5 name for :attr:`ttft_s`."""
        warnings.warn(
            "RequestMetrics.time_to_first_token is deprecated; use "
            "RequestMetrics.ttft_s",
            DeprecationWarning, stacklevel=2)
        return self.ttft_s

    @property
    def inter_token_seconds(self) -> List[float]:
        """Wall-clock gap before each token after the first (ITL samples).

        ``token_seconds[0]`` is the prefill-to-first-token time (part of
        TTFT, not ITL); every later entry is the gap since the previous
        committed token — the per-request inter-token latency distribution.
        """
        return self.token_seconds[1:]

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)


@dataclass(frozen=True)
class ServeCounters:
    """Engine-side monotonic counters threaded into :class:`ServerStats`.

    One small object instead of ever more loose keyword arguments on
    ``ServerStats.from_requests``: the engine fills it from its internal
    tallies (prefix cache, fault quarantines, retries, overload sheds) and
    new telemetry counters extend this dataclass rather than growing the
    ``from_requests`` signature.
    """

    prefix_hits: int = 0
    prefix_misses: int = 0
    prefix_tokens_reused: int = 0
    faults_quarantined: int = 0
    retries: int = 0
    shed: int = 0
    #: Speculative decoding: draft tokens proposed and draft tokens accepted
    #: (both 0 with ``speculation="off"``).
    tokens_drafted: int = 0
    tokens_accepted: int = 0


@dataclass
class ServerStats:
    """Aggregate serving statistics over the completed requests."""

    requests_completed: int
    tokens_generated: int
    wall_seconds: float
    tokens_per_second: float
    latency_p50_s: float
    latency_p95_s: float
    queue_p50_s: float
    queue_p95_s: float
    #: Time-to-first-token percentiles over completed generation requests
    #: that produced at least one token (queue wait + prefill included).
    ttft_p50_s: float
    ttft_p95_s: float
    #: Inter-token latency percentiles over every decode gap of every
    #: completed request (the tail the chunked-prefill scheduler bounds).
    itl_p50_s: float
    itl_p95_s: float
    mean_batch_occupancy: float
    max_queue_depth: int
    per_task: Dict[str, int]
    #: Queue-wait p50/p95 (and count) per priority class, over every request
    #: that reached a terminal state — including ones that died in the queue.
    queue_by_priority: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: Requests that ended without completing: ``handle.cancel()``-ed and
    #: ``deadline_s``-expired (both excluded from ``requests_completed``).
    cancelled: int = 0
    expired: int = 0
    #: Mean/peak KV-cache blocks live across decode steps, and the pool cap.
    mean_blocks_in_use: float = 0.0
    peak_blocks_in_use: int = 0
    block_capacity: int = 0
    #: Shared prompt-prefix cache counters (0 when the cache is disabled).
    prefix_hits: int = 0
    prefix_misses: int = 0
    prefix_tokens_reused: int = 0
    #: Fault-tolerance counters: requests that ended fault-quarantined,
    #: quarantine events contained without crashing the loop, retry
    #: re-enqueues, and submissions shed under overload.  All stay zero in a
    #: fault-free run — the perf regression gate pins that.
    failed: int = 0
    faults_quarantined: int = 0
    retries: int = 0
    shed: int = 0
    #: Speculative decoding counters: draft tokens proposed, draft tokens
    #: accepted (emitted without their own forward).  Both zero with
    #: ``speculation="off"``.
    tokens_drafted: int = 0
    tokens_accepted: int = 0
    #: Engine health at report time (see :class:`ServerHealth`).
    health: str = ServerHealth.HEALTHY
    #: Flight-recorder summary (``ServeTelemetry.summary()``): enabled flag,
    #: step counts and the most recent time-window aggregates.  Empty when
    #: the stats were built outside an engine.
    telemetry: Dict[str, object] = field(default_factory=dict)

    @property
    def block_occupancy(self) -> float:
        """Mean fraction of the block pool in use during decode steps."""
        if self.block_capacity <= 0:
            return 0.0
        return self.mean_blocks_in_use / self.block_capacity

    @property
    def acceptance_rate(self) -> float:
        """Fraction of drafted tokens the verification forward accepted."""
        if self.tokens_drafted <= 0:
            return 0.0
        return self.tokens_accepted / self.tokens_drafted

    @classmethod
    def from_requests(cls, requests: List[RequestMetrics], wall_seconds: float,
                      occupancy_samples: List[int],
                      queue_depth_samples: List[int], *,
                      block_usage_samples: List[int] = (),
                      block_capacity: int = 0,
                      counters: Optional[ServeCounters] = None,
                      health: str = ServerHealth.HEALTHY,
                      telemetry: Optional[Dict[str, object]] = None
                      ) -> "ServerStats":
        counters = counters or ServeCounters()
        terminal = [r for r in requests if r.finished_at is not None]
        finished = [r for r in terminal if r.outcome == OUTCOME_OK]
        tokens = sum(r.tokens_generated for r in finished)
        latencies = [r.total_seconds for r in finished]
        queues = [r.queue_seconds for r in finished]
        ttfts = [r.ttft_s for r in finished if r.first_token_at is not None]
        itls = [gap for r in finished for gap in r.inter_token_seconds]
        per_task: Dict[str, int] = {}
        for request in finished:
            per_task[request.task] = per_task.get(request.task, 0) + 1
        queue_by_priority: Dict[int, Dict[str, float]] = {}
        for priority in sorted({r.priority for r in terminal}):
            waits = [r.queue_seconds for r in terminal if r.priority == priority]
            queue_by_priority[priority] = {
                "count": len(waits),
                "queue_p50_s": percentile(waits, 50),
                "queue_p95_s": percentile(waits, 95),
            }
        block_usage = list(block_usage_samples)
        return cls(
            requests_completed=len(finished),
            tokens_generated=tokens,
            wall_seconds=wall_seconds,
            tokens_per_second=tokens / wall_seconds if wall_seconds > 0 else 0.0,
            latency_p50_s=percentile(latencies, 50) if latencies else 0.0,
            latency_p95_s=percentile(latencies, 95) if latencies else 0.0,
            queue_p50_s=percentile(queues, 50) if queues else 0.0,
            queue_p95_s=percentile(queues, 95) if queues else 0.0,
            ttft_p50_s=percentile(ttfts, 50) if ttfts else 0.0,
            ttft_p95_s=percentile(ttfts, 95) if ttfts else 0.0,
            itl_p50_s=percentile(itls, 50) if itls else 0.0,
            itl_p95_s=percentile(itls, 95) if itls else 0.0,
            mean_batch_occupancy=(sum(occupancy_samples) / len(occupancy_samples)
                                  if occupancy_samples else 0.0),
            max_queue_depth=max(queue_depth_samples) if queue_depth_samples else 0,
            per_task=per_task,
            queue_by_priority=queue_by_priority,
            cancelled=sum(r.outcome == OUTCOME_CANCELLED for r in terminal),
            expired=sum(r.outcome == OUTCOME_EXPIRED for r in terminal),
            mean_blocks_in_use=(sum(block_usage) / len(block_usage)
                                if block_usage else 0.0),
            peak_blocks_in_use=max(block_usage) if block_usage else 0,
            block_capacity=block_capacity,
            prefix_hits=counters.prefix_hits,
            prefix_misses=counters.prefix_misses,
            prefix_tokens_reused=counters.prefix_tokens_reused,
            failed=sum(r.outcome == OUTCOME_FAILED for r in terminal),
            faults_quarantined=counters.faults_quarantined,
            retries=counters.retries,
            shed=counters.shed,
            tokens_drafted=counters.tokens_drafted,
            tokens_accepted=counters.tokens_accepted,
            health=health,
            telemetry=dict(telemetry or {}),
        )

    def report(self) -> Dict[str, object]:
        """JSON-friendly summary (used by the serving benchmark)."""
        return {
            "requests_completed": self.requests_completed,
            "tokens_generated": self.tokens_generated,
            "wall_seconds": self.wall_seconds,
            "tokens_per_second": self.tokens_per_second,
            "latency_p50_s": self.latency_p50_s,
            "latency_p95_s": self.latency_p95_s,
            "queue_p50_s": self.queue_p50_s,
            "queue_p95_s": self.queue_p95_s,
            "ttft_p50_s": self.ttft_p50_s,
            "ttft_p95_s": self.ttft_p95_s,
            "itl_p50_s": self.itl_p50_s,
            "itl_p95_s": self.itl_p95_s,
            "mean_batch_occupancy": self.mean_batch_occupancy,
            "max_queue_depth": self.max_queue_depth,
            "per_task": dict(self.per_task),
            "queue_by_priority": {str(priority): dict(stats)
                                  for priority, stats in self.queue_by_priority.items()},
            "cancelled": self.cancelled,
            "expired": self.expired,
            "mean_blocks_in_use": self.mean_blocks_in_use,
            "peak_blocks_in_use": self.peak_blocks_in_use,
            "block_capacity": self.block_capacity,
            "block_occupancy": self.block_occupancy,
            "prefix_hits": self.prefix_hits,
            "prefix_misses": self.prefix_misses,
            "prefix_tokens_reused": self.prefix_tokens_reused,
            "failed": self.failed,
            "faults_quarantined": self.faults_quarantined,
            "retries": self.retries,
            "shed": self.shed,
            "tokens_drafted": self.tokens_drafted,
            "tokens_accepted": self.tokens_accepted,
            "acceptance_rate": self.acceptance_rate,
            "health": self.health,
            "telemetry": dict(self.telemetry),
        }
