"""Generation sessions and the session manager over the paged KV cache.

A :class:`GenerationSession` is one streaming autoregressive request (prompt
in, tokens out).  The :class:`SessionManager` owns the model's
:class:`~repro.nn.PagedKVCache`: it prefills prompts in ragged length-bucketed
batches (mixed-length prompts share one padded forward), maps cached common
prompt heads in by reference (:class:`~repro.serve.prefix.PrefixCache`),
advances every running session with one batched ``forward_step`` per engine
step, and evicts completed sessions so their blocks return to the pool —
continuous batching over paged storage.

Fault semantics: every failure path here releases the session's slot and
blocks (:meth:`SessionManager.abort`) before surfacing the error, so the
engine's quarantine can prove pool soundness afterwards.  The manager is
also instrumented with the named fault-injection sites ``prefill.band``,
``prefill.chunk``, ``decode.step``, ``decode.logits``, ``draft.propose``,
``decode.verify`` and ``prefix.seed`` (see :mod:`repro.serve.faults`) —
each a single ``is None`` check when no injector is wired in.

Speculative decoding (``speculation="ngram"``): each decode step first asks
the :class:`~repro.serve.speculative.NgramProposer` for up to ``k`` draft
tokens per session (copied from the session's own history), then verifies
pending-token-plus-drafts in one ragged multi-token forward
(:meth:`~repro.nn.PagedKVCache.prepare_multi_step`).  Each verified logits
column is consumed by the *same* :meth:`SessionManager._consume_logits`
path sequential decode uses — same sampler, same per-session RNG draws,
same EOS/limit eviction — so a draft token is accepted exactly when the
session would have sampled it anyway, and the emitted stream is
token-identical to ``speculation="off"`` at any temperature.  KV written
for rejected drafts is rolled back with
:meth:`~repro.nn.PagedKVCache.truncate_session`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..llm import LanguageModel
from ..llm.generation import GenerationResult, sample_token
from ..nn import DEFAULT_BLOCK_SIZE, KVCache, no_grad
from ..utils import seeded_rng
from .metrics import RequestMetrics
from .prefix import PrefixCache, PrefixEntry
from .speculative import AdaptiveK, NgramProposer

#: Session lifecycle states.
QUEUED = "queued"
PREFILLING = "prefilling"  # prompt partially committed (chunked prefill)
RUNNING = "running"
FINISHED = "finished"
FAILED = "failed"

#: Completion reasons.
REASON_EOS = "eos"
REASON_MAX_TOKENS = "max_tokens"
REASON_CONTEXT_FULL = "context_full"
REASON_CANCELLED = "cancelled"
REASON_DEADLINE = "deadline"


@dataclass
class GenerationSession:
    """One streaming generation request tracked by the engine."""

    session_id: int
    prompt: str
    max_new_tokens: int = 64
    temperature: float = 0.0
    seed: int = 0
    stop_on_eos: bool = True
    priority: int = 0
    #: Absolute ``time.perf_counter()`` completion deadline (None: none).
    deadline_at: Optional[float] = None
    #: Retry backoff: not admissible before this time (None: immediately).
    retry_at: Optional[float] = None
    state: str = QUEUED
    slot: Optional[int] = None
    prompt_ids: List[int] = field(default_factory=list)
    #: Prompt tokens already committed to the paged cache (chunked prefill
    #: resumes from here; equals ``len(prompt_ids)`` once prefill completes).
    prompt_pos: int = 0
    #: Resumable single-session prefill cache holding the history computed so
    #: far; dropped as soon as the prompt completes.
    prefill_cache: Optional[KVCache] = field(default=None, repr=False)
    #: Matched shared-prefix entry (None on a miss), set at prompt preparation.
    prefix_entry: Optional[PrefixEntry] = field(default=None, repr=False)
    generated: List[int] = field(default_factory=list)
    stopped_by_eos: bool = False
    finish_reason: Optional[str] = None
    num_inferences: int = 0
    metrics: RequestMetrics = field(default_factory=lambda: RequestMetrics(task="generate"))
    #: Called with each committed token id (streaming handles subscribe here).
    on_token: Optional[Callable[[int], None]] = field(default=None, repr=False)
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)
    _last_step_at: Optional[float] = field(default=None, repr=False)

    def is_expired(self, now: Optional[float] = None) -> bool:
        if self.deadline_at is None:
            return False
        return (time.perf_counter() if now is None else now) > self.deadline_at

    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = seeded_rng(self.seed)
        return self._rng

    def record_token(self) -> None:
        now = time.perf_counter()
        if self.metrics.first_token_at is None:
            self.metrics.first_token_at = now
        if self._last_step_at is not None:
            reference = self._last_step_at
        elif self.metrics.admitted_at is not None:
            reference = self.metrics.admitted_at
        else:
            reference = self.metrics.submitted_at
        self.metrics.token_seconds.append(now - reference)
        self._last_step_at = now

    def to_result(self, tokenizer) -> GenerationResult:
        """Materialize the standard :class:`GenerationResult` for this session."""
        return GenerationResult(
            text=tokenizer.decode(self.generated),
            token_ids=list(self.generated),
            num_inferences=self.num_inferences,
            elapsed_seconds=self.metrics.total_seconds,
            stopped_by_eos=self.stopped_by_eos,
            token_seconds=list(self.metrics.token_seconds),
        )


class SessionManager:
    """Session bookkeeping and batched decoding over a shared model.

    ``max_slots`` bounds how many sessions decode together (the batch size of
    one engine step); ``max_context`` bounds each session's total context.
    The KV pool is paged (:class:`~repro.nn.PagedKVCache`): a session holds
    exactly the blocks its history needs, so memory follows live tokens
    instead of ``max_slots × max_context``.  Prompts are prefilled in ragged
    length-bucketed batches — mixed-length prompts ride one right-padded
    forward, with padding waste bounded by ``prefill_padding`` — and prompts
    starting with a registered prefix skip recomputing (and re-storing) the
    shared head entirely.

    Unlike eval-mode :func:`repro.llm.generation.generate`, the engine does
    not re-prime a sliding window when the context fills up — the session is
    completed with ``finish_reason == "context_full"`` instead, which is the
    behaviour a serving deployment wants (bounded per-request work).
    """

    def __init__(self, model: LanguageModel, max_slots: int = 16,
                 max_context: Optional[int] = None,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 prefill_padding: float = 0.5,
                 ragged_prefill: bool = True,
                 prefix_cache: bool = True,
                 max_prefixes: int = 8,
                 fault_injector: Optional[object] = None,
                 telemetry: Optional[object] = None,
                 speculation: str = "off",
                 speculation_k: int = 4) -> None:
        if max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        if prefill_padding < 0:
            raise ValueError("prefill_padding must be >= 0")
        self.model = model
        self.max_slots = max_slots
        model_limit = model.config.max_seq_len
        self.max_context = min(max_context or model_limit, model_limit)
        if self.max_context < 2:
            raise ValueError("max_context must leave room for at least one new token")
        self.prefill_padding = prefill_padding
        self.ragged_prefill = ragged_prefill
        # Reserve pool capacity for the prefix cache's residents so prompt
        # traffic can never be starved by registered preambles (or vice versa).
        blocks_per_session = -(-self.max_context // block_size)
        self.cache = model.init_paged_cache(
            max_sessions=max_slots, max_context=self.max_context,
            block_size=block_size,
            extra_blocks=max_prefixes * blocks_per_session if prefix_cache else 0)
        self.prefix: Optional[PrefixCache] = (
            PrefixCache(model, self.cache, max_entries=max_prefixes,
                        max_length=self.max_context - 1)
            if prefix_cache else None)
        self.running: Dict[int, GenerationSession] = {}  # cache session id -> session
        #: Sessions mid chunked prefill, keyed by *request* session_id (they
        #: may not have a paged-cache slot yet).  They hold a batch slot.
        self.prefilling: Dict[int, GenerationSession] = {}
        #: Optional seeded :class:`~repro.serve.faults.FaultInjector`; the
        #: paged pool's ``kv.admit``/``kv.extend`` sites hook into it too.
        self.faults = fault_injector
        if fault_injector is not None:
            self.cache.fault_hook = fault_injector.fire
        #: Optional :class:`~repro.serve.telemetry.ServeTelemetry`; the
        #: engine wires it in only when enabled, so every instrumented site
        #: here is a single ``is None`` check (same idiom as ``faults``).
        self.telemetry = telemetry
        if speculation not in ("off", "ngram"):
            raise ValueError(f"speculation must be 'off' or 'ngram', got "
                             f"{speculation!r}")
        #: Draft proposer for speculative decoding (None: speculation off).
        self.proposer: Optional[NgramProposer] = (
            NgramProposer() if speculation == "ngram" else None)
        self._adaptive = AdaptiveK(speculation_k) if self.proposer else None
        #: Drafts planned for the upcoming decode step, keyed by cache slot
        #: (filled by :meth:`plan_decode_tokens`, consumed by :meth:`step`).
        self._planned_drafts: Dict[int, List[int]] = {}
        #: Lifetime speculative counters (feed ``ServerStats``).
        self.tokens_drafted = 0
        self.tokens_accepted = 0
        #: Memoized fused prefill cache: ``((session ids), committed length)
        #: -> KVCache`` from the previous :meth:`prefill_chunk_group` call.
        #: When the same group returns next step, its stacked history is the
        #: fused cache the last forward already extended — reusing it skips
        #: re-concatenating every member's full K/V each chunk.
        self._fused_prefill: Optional[Tuple[Tuple[Tuple[int, ...], int],
                                            object]] = None

    # ------------------------------------------------------------------ #
    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def num_prefilling(self) -> int:
        return len(self.prefilling)

    @property
    def num_free(self) -> int:
        return self.max_slots - len(self.running) - len(self.prefilling)

    # ------------------------------------------------------------------ #
    def register_prefix(self, text: str) -> PrefixEntry:
        """Cache a common prompt head (see :class:`PrefixCache`)."""
        if self.prefix is None:
            raise ValueError("the prefix cache is disabled for this manager")
        return self.prefix.register(text)

    def admit(self, session: GenerationSession) -> None:
        """Prefill a queued session's prompt and start decoding it."""
        self.admit_many([session])

    def admit_many(self, sessions: List[GenerationSession]) -> None:
        """Prefill queued sessions in ragged length-banded batches.

        Sessions are grouped by matched prefix, then partitioned into length
        bands (:meth:`_length_bands`): each band runs one right-padded batched
        forward — causality makes right padding exact, per-row logits are read
        at each prompt's true last position, and only the true history is
        admitted into the paged cache.  Each session's first output token is
        sampled from its prefill logits, exactly as
        :func:`~repro.llm.generation.generate` does.
        """
        if len(sessions) > self.num_free:
            raise RuntimeError(
                f"cannot admit {len(sessions)} sessions into {self.num_free} free slots")
        by_prefix: Dict[Optional[Tuple[int, ...]],
                        Tuple[Optional[PrefixEntry], List[GenerationSession]]] = {}
        for session in sessions:
            self._prepare_prompt(session)
            self._revalidate_prefix(session)
            self._mark_started(session)
            entry = session.prefix_entry
            key = entry.token_ids if entry is not None else None
            if key not in by_prefix:
                by_prefix[key] = (entry, [])
            by_prefix[key][1].append(session)
        # Mirror generate(): KV-cached forwards require eval mode (dropout
        # off); restore the caller's mode afterwards.
        was_training = self.model.training
        if was_training:
            self.model.eval()
        try:
            for entry, group in by_prefix.values():
                head_len = entry.length if entry is not None else 0
                for band in self._length_bands(group, head_len):
                    self._admit_group(entry, band)
        finally:
            if was_training:
                self.model.train()

    def _prepare_prompt(self, session: GenerationSession) -> None:
        """Tokenize the prompt once and match it against the prefix cache.

        Idempotent: a session that already carries ``prompt_ids`` (e.g. it
        was prepared when admission classified it for chunked prefill) is
        left untouched, so hit/miss counters never double-count.  Keeps the
        whole prompt when it fits, else the most recent ``max_context``
        tokens — the same window ``generate()`` prefills, so the first
        sampled token matches the standalone path even for prompts at the
        cap (such a session then finishes ``context_full`` right after).
        """
        if session.prompt_ids:
            return
        session.prompt_ids = self.model.tokenizer.encode(
            session.prompt, add_bos=True)[-self.max_context:]
        entry = (self.prefix.match(session.prompt_ids)
                 if self.prefix is not None else None)
        session.prefix_entry = entry
        session.prompt_pos = entry.length if entry is not None else 0
        session.metrics.prefix_tokens = session.prompt_pos

    def _revalidate_prefix(self, session: GenerationSession) -> None:
        """Drop a matched prefix entry that was LRU-evicted while waiting.

        A session can hold its match across engine steps (budget deferral,
        budget-starved ``PREFILLING``); if a ``register_prefix`` evicted the
        entry meanwhile, its pool blocks may already hold a different head's
        K/V — fall back to a cold prefill, losing only the reuse.
        """
        if (session.prefill_cache is None and session.slot is None
                and session.prefix_entry is not None
                and (self.prefix is None
                     or not self.prefix.is_live(session.prefix_entry))):
            session.prefix_entry = None
            session.prompt_pos = 0
            session.metrics.prefix_tokens = 0

    @staticmethod
    def _mark_started(session: GenerationSession) -> None:
        """Stamp admission once, when prefill work actually begins.

        Preparation/classification can run steps before the session really
        starts (budget deferral returns it to the queue), so the queue-wait
        clock must keep running until the first real prefill work.
        """
        if session.metrics.admitted_at is None:
            session.metrics.mark_admitted()

    def _length_bands(self, sessions: List[GenerationSession],
                      head_len: int) -> List[List[GenerationSession]]:
        """Partition sessions into prefill bands with bounded padding waste.

        Greedy over tail lengths sorted ascending: a band absorbs the next
        (longer) session while the band's right-padded token count stays
        within ``1 + prefill_padding`` of its real token count.  A small
        bound yields many narrow bands (little padding, many forwards); a
        large one, few wide bands — the knob trades per-forward overhead
        against padded FLOPs.  With ``ragged_prefill`` off, bands are exact
        tail lengths (the equal-length-only pre-paging baseline).
        """
        ordered = sorted(sessions, key=lambda s: len(s.prompt_ids))
        if not self.ragged_prefill:
            by_length: Dict[int, List[GenerationSession]] = {}
            for session in ordered:
                by_length.setdefault(len(session.prompt_ids), []).append(session)
            return list(by_length.values())
        bands: List[List[GenerationSession]] = []
        band: List[GenerationSession] = []
        real_tokens = 0
        for session in ordered:
            tail = len(session.prompt_ids) - head_len
            padded = (len(band) + 1) * tail  # sorted: this tail is the new max
            if band and padded > (1.0 + self.prefill_padding) * (real_tokens + tail):
                bands.append(band)
                band, real_tokens = [], 0
            band.append(session)
            real_tokens += tail
        if band:
            bands.append(band)
        return bands

    def _admit_group(self, entry: Optional[PrefixEntry],
                     group: List[GenerationSession]) -> None:
        if self.faults is not None:
            self.faults.fire("prefill.band")
        head_len = entry.length if entry is not None else 0
        tails = [session.prompt_ids[head_len:] for session in group]
        lengths = [len(tail) for tail in tails]
        width = max(lengths)
        # Right padding: causal attention makes every real position's K/V and
        # logits independent of what follows, so pad rows are exact — the pad
        # id is arbitrary and its K/V are simply never admitted.
        padded = np.full((len(group), width), self.model.tokenizer.pad_id,
                         dtype=np.int64)
        for row, tail in enumerate(tails):
            padded[row, :len(tail)] = tail
        shared = entry.block_ids if entry is not None else ()
        with no_grad():
            if entry is not None:
                if self.faults is not None:
                    self.faults.fire("prefix.seed")
                prefill_cache = self.prefix.seed_cache(entry, len(group))  # repro: noqa[REP005] a live entry implies the prefix cache exists
            else:
                prefill_cache = self.model.init_cache()
            logits = self.model.forward_incremental(padded, prefill_cache)
            session_ids = self.cache.admit_rows(
                prefill_cache,
                lengths=[head_len + length for length in lengths],
                shared_blocks=shared)
            for session, session_id in zip(group, session_ids):
                session.slot = session_id
                session.prompt_pos = len(session.prompt_ids)
                self.running[session.slot] = session
                session.state = RUNNING
        if self.telemetry is not None:
            # One-shot banded prefill: the whole tail is one chunk, so the
            # flight recorder sees both prefill paths as PREFILLING entries.
            for session, length in zip(group, lengths):
                self.telemetry.note_prefill_chunk(session.session_id, length)
        for row, session in enumerate(group):
            self._consume_logits(session, logits.data[row, lengths[row] - 1, :])

    # ------------------------------------------------------------------ #
    # Chunked prefill (token-budget step scheduling)
    # ------------------------------------------------------------------ #
    def prefill_step(self, new_sessions: List[GenerationSession],
                     chunk_size: int, token_budget: Optional[int] = None
                     ) -> Tuple[int, List[GenerationSession],
                                List[Tuple[GenerationSession, BaseException]],
                                List[GenerationSession]]:
        """Spend up to ``token_budget`` prompt tokens on prefill work.

        In-flight ``PREFILLING`` sessions resume first (admission order),
        each granted up to ``chunk_size`` tokens; the remaining budget then
        starts ``new_sessions``.  New sessions whose whole prompt tail fits
        in one chunk (and in the remaining budget) are batched through the
        ragged length-banded one-shot path (:meth:`admit_many`), so chunking
        composes with banded prefill instead of replacing it; longer prompts
        enter the ``PREFILLING`` state and continue across steps.

        Returns ``(tokens_spent, terminal, failures, deferred)``:
        ``terminal`` lists sessions that reached ``FINISHED`` during the
        phase (e.g. EOS sampled straight from prefill logits), ``failures``
        pairs sessions with the error that aborted them (their slot and
        blocks are already released), and ``deferred`` holds *new* sessions
        the budget could not give a single token to — they stay ``QUEUED``
        (no slot held) so the caller can put them back in its priority queue
        instead of letting them hoard batch slots in FIFO prefill order.

        Budget accounting is exact: a session whose prompt *completes* this
        step joins the decode batch of the same engine step, so completion is
        charged ``tail + 1`` tokens (its chunk plus its same-step decode row);
        a grant that cannot afford the extra decode token stops one token
        short of completing instead of busting ``step_token_budget``.
        """
        spent = 0
        terminal: List[GenerationSession] = []
        failures: List[Tuple[GenerationSession, BaseException]] = []
        deferred: List[GenerationSession] = []

        def allowance() -> Optional[int]:
            return None if token_budget is None else token_budget - spent

        def grant_and_cost(session, left) -> Tuple[int, int]:
            """(prompt tokens to prefill, budget tokens that will cost)."""
            remaining = len(session.prompt_ids) - session.prompt_pos
            grant = chunk_size if left is None else min(chunk_size, left)
            if grant >= remaining:
                if left is None or left >= remaining + 1:
                    return remaining, remaining + 1
                return max(0, left - 1), max(0, left - 1)
            return grant, grant

        # Grant the in-flight PREFILLING sessions first (admission order),
        # then fuse grants with equal committed history and equal size into
        # one ragged banded forward (the multi-chunk analogue of banded
        # admission) — concurrent same-shape prompts pay one forward per
        # step, not one each.
        pending: List[Tuple[GenerationSession, int, int]] = []
        for session in list(self.prefilling.values()):
            left = allowance()
            if left is not None and left <= 0:
                break
            grant, cost = grant_and_cost(session, left)
            if grant <= 0:
                break
            pending.append((session, grant, cost))
            spent += cost  # refunded below if the chunk fails
        fused_groups: Dict[Tuple[int, int], List[Tuple[GenerationSession, int]]] = {}
        for session, grant, cost in pending:
            key = (session.prefill_cache.seq_len, grant)
            fused_groups.setdefault(key, []).append((session, cost))
        for (_, grant), members in fused_groups.items():
            solo = list(members)
            if len(members) >= 2:
                try:
                    chunk_failures = self.prefill_chunk_group(
                        [session for session, _ in members], grant)
                except Exception:
                    # The fused forward itself failed before any session was
                    # committed: fall back to one-at-a-time chunks below so a
                    # single bad session cannot take down its whole group.
                    pass
                else:
                    solo = []
                    costs = dict((id(s), c) for s, c in members)
                    for session, error in chunk_failures:
                        spent -= costs[id(session)]
                        failures.append((session, error))
            for session, cost in solo:
                try:
                    self.prefill_chunk(session, grant)
                except Exception as error:
                    self.abort(session)
                    failures.append((session, error))
                    spent -= cost
            terminal.extend(session for session, _ in members
                            if session.state == FINISHED)

        one_shot: List[GenerationSession] = []
        for session in new_sessions:
            self._prepare_prompt(session)
            self._revalidate_prefix(session)
            tail = len(session.prompt_ids) - session.prompt_pos
            left = allowance()
            if tail <= chunk_size and (left is None or tail + 1 <= left):
                one_shot.append(session)
                spent += tail + 1  # banded prefill + same-step decode row
                continue
            grant, cost = grant_and_cost(session, left)
            if grant <= 0:
                # The budget ran dry before this session's first token (the
                # admission cap makes that rare — e.g. a one-token tail with
                # exactly one budget token left).  It stays QUEUED for the
                # caller to requeue rather than holding a slot at zero
                # progress.
                deferred.append(session)
                continue
            session.state = PREFILLING
            self.prefilling[session.session_id] = session
            try:
                self.prefill_chunk(session, grant)
                spent += cost
            except Exception as error:
                self.abort(session)
                failures.append((session, error))
        if one_shot:
            try:
                self.admit_many(one_shot)
            except Exception:
                # Batched prefill failed: retry one by one so a single bad
                # request cannot reject the whole band.
                for session in one_shot:
                    if session.state != QUEUED:
                        continue
                    try:
                        self.admit(session)
                    except Exception as error:
                        self.abort(session)
                        failures.append((session, error))
            terminal.extend(s for s in one_shot if s.state == FINISHED)
        return spent, terminal, failures, deferred

    def prefill_chunk(self, session: GenerationSession, max_tokens: int) -> int:
        """Advance one session's prefill by up to ``max_tokens`` prompt tokens.

        The chunk runs through the session's resumable single-session cache
        (:attr:`GenerationSession.prefill_cache`) — attention over the
        already-committed history is the ordinary incremental causal forward,
        so chunked logits match one-shot prefill exactly — and is scattered
        into the paged pool (:meth:`~repro.nn.PagedKVCache.admit_rows` for the
        first chunk, :meth:`~repro.nn.PagedKVCache.extend_session` after).
        When the last prompt token commits, the first output token is sampled
        from the final chunk's logits and the session joins the decode batch.
        Returns the number of prompt tokens consumed.
        """
        if session.state not in (QUEUED, PREFILLING):
            raise ValueError(f"cannot prefill a {session.state} session")
        if max_tokens < 1:
            raise ValueError("max_tokens must be >= 1")
        self._prepare_prompt(session)
        if session.state == QUEUED:
            session.state = PREFILLING
            self.prefilling[session.session_id] = session
        self._revalidate_prefix(session)
        self._mark_started(session)
        take = min(max_tokens, len(session.prompt_ids) - session.prompt_pos)
        if take <= 0:
            raise ValueError(f"session {session.session_id} has no prompt "
                             f"tokens left to prefill")
        if self.faults is not None:
            self.faults.fire("prefill.chunk")
        was_training = self.model.training
        if was_training:  # KV-cached forwards require eval mode (as generate())
            self.model.eval()
        try:
            with no_grad():
                if session.prefill_cache is None:
                    entry = session.prefix_entry
                    if entry is not None:
                        if self.faults is not None:
                            self.faults.fire("prefix.seed")
                        session.prefill_cache = self.prefix.seed_cache(entry, 1)  # repro: noqa[REP005] a live entry implies the prefix cache exists
                    else:
                        session.prefill_cache = self.model.init_cache()
                chunk = np.asarray(
                    session.prompt_ids[session.prompt_pos:
                                       session.prompt_pos + take],
                    dtype=np.int64)[None, :]
                logits = self.model.forward_incremental(chunk,
                                                        session.prefill_cache)
                new_length = session.prompt_pos + take
                if session.slot is None:
                    shared = (session.prefix_entry.block_ids
                              if session.prefix_entry is not None else ())
                    session.slot = self.cache.admit_rows(
                        session.prefill_cache, rows=[0],
                        lengths=[new_length], shared_blocks=shared)[0]
                else:
                    self.cache.extend_session(session.slot,
                                              session.prefill_cache,
                                              new_length=new_length)
                session.prompt_pos = new_length
        finally:
            if was_training:
                self.model.train()
        if self.telemetry is not None:
            self.telemetry.note_prefill_chunk(session.session_id, take)
        if session.prompt_pos == len(session.prompt_ids):
            # Prompt complete: drop the resumable cache, join the decode
            # batch and sample the first output token from the final logits.
            del self.prefilling[session.session_id]
            session.prefill_cache = None
            self.running[session.slot] = session
            session.state = RUNNING
            self._consume_logits(session, logits.data[0, -1, :])
        return take

    def prefill_chunk_group(self, group: List[GenerationSession], take: int
                            ) -> List[Tuple[GenerationSession, BaseException]]:
        """Advance several equal-history ``PREFILLING`` sessions in one forward.

        Every session must hold a resumable prefill cache of the same
        committed length and be due exactly ``take`` more prompt tokens (the
        grouping :meth:`prefill_step` performs).  Their caches are stacked
        into one temporary batched :class:`~repro.nn.KVCache`, the chunk
        matrix runs through a single ``forward_incremental`` — causality
        makes each row independent, so per-row logits and K/V match the
        per-session :meth:`prefill_chunk` path exactly — and each session's
        pool blocks and resumable cache are then committed from its row.

        Per-session commit failures abort only that session and are returned
        as ``(session, error)`` pairs; the fused forward itself raising
        (before any commit) leaves every session untouched, so the caller
        can fall back to one-at-a-time chunks.
        """
        if self.faults is not None:
            # One forward, one fire — the fused analogue of ``prefill.band``.
            self.faults.fire("prefill.chunk")
        past = group[0].prefill_cache.seq_len
        for session in group:
            if session.prefill_cache.seq_len != past:
                raise ValueError("fused prefill requires equal-history sessions")
            if session.prompt_pos != past:
                raise ValueError("fused prefill requires block-committed history")
        chunk = np.asarray(
            [session.prompt_ids[session.prompt_pos:session.prompt_pos + take]
             for session in group], dtype=np.int64)
        failures: List[Tuple[GenerationSession, BaseException]] = []
        was_training = self.model.training
        if was_training:  # KV-cached forwards require eval mode (as generate())
            self.model.eval()
        key = (tuple(session.session_id for session in group), past)
        memo = self._fused_prefill
        self._fused_prefill = None
        try:
            with no_grad():
                if memo is not None and memo[0] == key:
                    # Same group, same committed length: the fused cache the
                    # previous chunk's forward extended *is* the stacked
                    # history — skip re-concatenating every member's K/V.
                    fused = memo[1]
                else:
                    fused = self.model.init_cache()
                    for fused_layer, layers in zip(
                            fused.layers,
                            zip(*(s.prefill_cache.layers for s in group))):
                        fused_layer.append(
                            np.concatenate([layer.keys for layer in layers], axis=0),
                            np.concatenate([layer.values for layer in layers], axis=0))
                logits = self.model.forward_incremental(chunk, fused)
                new_length = past + take
                for row, session in enumerate(group):
                    try:
                        # Pool first (reading the fused cache's row), own
                        # resumable cache after: a pool failure then leaves
                        # the session exactly as before its chunk.
                        self.cache.extend_session(session.slot, fused, row=row,
                                                  new_length=new_length)
                    except Exception as error:
                        self.abort(session)
                        failures.append((session, error))
                        continue
                    for fused_layer, layer in zip(fused.layers,
                                                  session.prefill_cache.layers):
                        layer.append(fused_layer.keys[row:row + 1, :, past:],
                                     fused_layer.values[row:row + 1, :, past:])
                    session.prompt_pos = new_length
        finally:
            if was_training:
                self.model.train()
        dead = {id(session) for session, _ in failures}
        for row, session in enumerate(group):
            if id(session) in dead:
                continue
            if self.telemetry is not None:
                self.telemetry.note_prefill_chunk(session.session_id, take)
            if session.prompt_pos == len(session.prompt_ids):
                del self.prefilling[session.session_id]
                session.prefill_cache = None
                self.running[session.slot] = session
                session.state = RUNNING
                self._consume_logits(session, logits.data[row, -1, :])
        if not failures and all(session.state == PREFILLING
                                for session in group):
            # Every member advanced in lockstep and has more prompt to go:
            # the extended fused cache is next step's stacked history.
            self._fused_prefill = ((key[0], past + take), fused)
        return failures

    def abort(self, session: GenerationSession) -> None:
        """Release a failed session's slot/blocks without finishing it.

        The quarantine primitive: idempotent (a session already aborted, or
        evicted mid-step before the fault hit, is a no-op), and tolerant of
        a pool that already dropped the slot — the engine's invariant check
        right after the quarantine is what proves the pool stayed sound.
        """
        self.prefilling.pop(session.session_id, None)
        if session.slot is not None:
            self.running.pop(session.slot, None)
            self._forget_speculation(session.slot)
            try:
                self.cache.evict(session.slot)
            except ValueError:
                pass  # slot already gone; check_invariants judges the pool
            session.slot = None
        session.prefill_cache = None
        session.state = FAILED

    def evict(self, session: GenerationSession, reason: str) -> None:
        if session.finish_reason is None:
            session.finish_reason = reason
        session.state = FINISHED
        session.metrics.mark_finished()
        self.prefilling.pop(session.session_id, None)
        session.prefill_cache = None
        if session.slot is not None:
            self.running.pop(session.slot, None)
            self._forget_speculation(session.slot)
            self.cache.evict(session.slot)
            session.slot = None

    def _forget_speculation(self, slot: int) -> None:
        """Drop a departing slot's drafter/adaptive-k state and planned drafts."""
        if self.proposer is not None:
            self.proposer.forget(slot)
            self._adaptive.forget(slot)
        self._planned_drafts.pop(slot, None)

    # ------------------------------------------------------------------ #
    def plan_decode_tokens(self, token_budget: Optional[int] = None) -> int:
        """Draft for the upcoming decode step; return its planned token cost.

        The unified-budget hook: the engine calls this *before* granting the
        step's prefill budget, so speculative decode rows are charged
        ``1 + drafted`` tokens against ``step_token_budget`` exactly like
        prefill chunks are charged per prompt token.  With speculation off
        (or an empty batch) the plan is trivially one token per running row.

        Draft lengths start from each session's adaptive ``k``, are clamped
        to the session's remaining context (a session never drafts past
        ``max_context``), and are trimmed longest-first until the batch fits
        ``token_budget`` (each row always keeps its 1 mandatory token).  The
        drafts are stashed per slot and consumed by the next :meth:`step`.
        """
        self._planned_drafts = {}
        if not self.running:
            return 0
        if self.proposer is None:
            return len(self.running)
        if self.faults is not None:
            # Pre-drafting site: proposing touches no model or pool state, so
            # a raise here can never leave KV to roll back.
            self.faults.fire("draft.propose")
        drafts: Dict[int, List[int]] = {}
        for slot in sorted(self.running):
            session = self.running[slot]
            # Room after the mandatory token: never draft past the context
            # cap (sequential decode would have stopped there too).
            room = self.max_context - (self.cache.length(slot) + 1)
            k = min(self._adaptive.current(slot), max(0, room))
            if k > 0:
                self.proposer.sync(slot, session.prompt_ids + session.generated)
                drafts[slot] = self.proposer.propose(slot, k)
            else:
                drafts[slot] = []
        total = sum(1 + len(d) for d in drafts.values())
        if token_budget is not None:
            # Trim longest-first until the step fits the budget; the 1-token
            # floor per row is the same floor non-speculative decode has.
            while total > token_budget:
                slot = max(drafts, key=lambda s: len(drafts[s]))
                if not drafts[slot]:
                    break
                drafts[slot].pop()
                total -= 1
        self._planned_drafts = drafts
        return total

    # ------------------------------------------------------------------ #
    def step(self) -> Tuple[List[GenerationSession], int]:
        """Advance every running session by one token.

        One batched ``forward_step`` feeds each session's most recent token
        and samples its next one.  Sessions that hit EOS, their token budget
        or the context cap are evicted, freeing slots for queued requests.
        Returns ``(completed_sessions, occupancy)`` where ``occupancy`` is the
        batch size of the forward actually executed (0 when every running
        session finished at the context cap before the forward).
        """
        if not self.running:
            return [], 0
        if self.faults is not None:
            # Pre-forward site: a raise here leaves the pool untouched, the
            # cheapest-to-recover decode fault (the engine quarantines the
            # whole batch either way).
            self.faults.fire("decode.step")
        # Sessions whose cache cannot take one more token finish now (their
        # already-sampled final token still counts as generated output).
        completed: List[GenerationSession] = []
        for slot in sorted(self.running):
            session = self.running[slot]
            if self.cache.length(slot) + 1 > self.max_context:
                completed.append(session)
        for session in completed:
            self.evict(session, REASON_CONTEXT_FULL)
        if not self.running:
            return completed, 0

        if self.proposer is not None:
            if not self._planned_drafts:
                # Standalone use (no engine budget pass): plan here.
                self.plan_decode_tokens()
            drafts = self._planned_drafts
            self._planned_drafts = {}
            if any(drafts.get(slot) for slot in self.running):
                return self._speculative_step(completed, drafts)

        slots = np.asarray(sorted(self.running), dtype=np.int64)
        batch = [self.running[int(slot)] for slot in slots]
        tokens = np.asarray([s.generated[-1] for s in batch], dtype=np.int64)
        was_training = self.model.training
        if was_training:  # KV-cached forwards require eval mode (as generate())
            self.model.eval()
        try:
            with no_grad():
                logits = self.model.forward_step(tokens, self.cache, slots).data[:, -1, :]
        finally:
            if was_training:
                self.model.train()
        if self.faults is not None:
            # Post-forward site: the K/V writes are committed; a "corrupt"
            # spec perturbs the logits in place before sampling.
            self.faults.fire("decode.logits", payload=logits)
        occupancy = len(batch)
        for row, session in enumerate(batch):
            session.metrics.batch_sizes.append(occupancy)
            if not self._consume_logits(session, logits[row]):
                completed.append(session)
        return completed, occupancy

    def _speculative_step(self, completed: List[GenerationSession],
                          drafts: Dict[int, List[int]]
                          ) -> Tuple[List[GenerationSession], int]:
        """One draft-and-verify decode step over the running batch.

        Row *i* feeds its pending sampled token plus its draft tokens —
        ``1 + len(drafts[slot])`` positions — through one ragged multi-token
        forward; shorter rows are padded (padded outputs discarded).  Each
        verified logits column then runs through :meth:`_consume_logits`
        exactly as a sequential step would: the sampled token *is* the
        acceptance test (equal to the draft → keep verifying; different →
        it is the correction and verification stops), so RNG draws, EOS
        handling, streaming callbacks and metrics all match sequential
        decode token for token.  KV committed past the last emitted token
        is rolled back via :meth:`~repro.nn.PagedKVCache.truncate_session`.
        """
        slots = np.asarray(sorted(self.running), dtype=np.int64)
        batch = [self.running[int(slot)] for slot in slots]
        counts = np.asarray([1 + len(drafts.get(int(slot), ())) for slot in slots],
                            dtype=np.int64)
        width = int(counts.max())
        tokens = np.empty((len(batch), width), dtype=np.int64)
        for row, session in enumerate(batch):
            fed = [session.generated[-1]] + drafts.get(int(slots[row]), [])
            tokens[row, :len(fed)] = fed
            tokens[row, len(fed):] = fed[-1]  # padded columns replicate
        pre_lengths = [self.cache.length(int(slot)) for slot in slots]
        was_training = self.model.training
        if was_training:  # KV-cached forwards require eval mode (as generate())
            self.model.eval()
        try:
            with no_grad():
                logits = self.model.forward_step(tokens, self.cache, slots,
                                                 counts=counts).data
        finally:
            if was_training:
                self.model.train()
        if self.faults is not None:
            # Post-forward site: KV for every draft token is already written,
            # acceptance is not yet decided — the adversarial moment for the
            # rollback machinery.  A "corrupt" spec perturbs the verification
            # logits in place before acceptance sampling.
            self.faults.fire("decode.verify", payload=logits)
        occupancy = len(batch)
        step_drafted = 0
        step_accepted = 0
        for row, session in enumerate(batch):
            slot = int(slots[row])
            draft = drafts.get(slot, [])
            session.metrics.batch_sizes.append(occupancy)
            emitted = 0
            accepted = 0
            alive = True
            for t in range(int(counts[row])):
                alive = self._consume_logits(session, logits[row, t, :])
                if not alive:
                    break
                emitted += 1
                if not (t < len(draft) and session.generated[-1] == draft[t]):
                    break  # rejection correction, or the bonus token
                accepted += 1
            step_drafted += len(draft)
            step_accepted += accepted
            self._adaptive.observe(slot, len(draft), accepted)
            if not alive:
                # Evicted inside _consume_logits (EOS / limits): the blocks —
                # speculative tail included — are already back in the pool.
                completed.append(session)
                continue
            target = pre_lengths[row] + emitted
            if emitted < int(counts[row]):
                # Roll back rejected draft tokens: the pending (sampled but
                # not yet fed) token is the last emitted one, so the session
                # keeps the usual length == prompt + generated - 1 invariant.
                self.cache.truncate_session(slot, target)
        self.tokens_drafted += step_drafted
        self.tokens_accepted += step_accepted
        if self.telemetry is not None:
            self.telemetry.note_speculation(step_drafted, step_accepted)
        return completed, occupancy

    # ------------------------------------------------------------------ #
    def _consume_logits(self, session: GenerationSession, logits: np.ndarray) -> bool:
        """Sample one token from ``logits``; return False when the session ends.

        Uses the same :func:`~repro.llm.generation.sample_token` as standalone
        :func:`~repro.llm.generation.generate`, so a served session reproduces
        the standalone token stream.
        """
        session.num_inferences += 1
        next_id = sample_token(logits, session.temperature, session.rng())
        session.record_token()
        tokenizer = self.model.tokenizer
        if session.stop_on_eos and next_id == tokenizer.eos_id:
            session.stopped_by_eos = True
            self.evict(session, REASON_EOS)
            return False
        session.generated.append(next_id)
        session.metrics.tokens_generated = len(session.generated)
        if session.on_token is not None:
            session.on_token(next_id)
        if len(session.generated) >= session.max_new_tokens:
            self.evict(session, REASON_MAX_TOKENS)
            return False
        return True
