"""Generation sessions and the slot manager over the batched KV cache.

A :class:`GenerationSession` is one streaming autoregressive request (prompt
in, tokens out).  The :class:`SessionManager` owns the model's
:class:`~repro.nn.BatchedKVCache`: it prefills prompts through the
single-session cache path, packs them into free slots, advances every running
session with one batched ``forward_step`` per engine step, and evicts
completed sessions so their slots can be reused by queued requests —
continuous batching.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..llm import LanguageModel
from ..llm.generation import GenerationResult, sample_token
from ..nn import no_grad
from ..utils import seeded_rng
from .metrics import RequestMetrics

#: Session lifecycle states.
QUEUED = "queued"
RUNNING = "running"
FINISHED = "finished"
FAILED = "failed"

#: Completion reasons.
REASON_EOS = "eos"
REASON_MAX_TOKENS = "max_tokens"
REASON_CONTEXT_FULL = "context_full"


@dataclass
class GenerationSession:
    """One streaming generation request tracked by the engine."""

    session_id: int
    prompt: str
    max_new_tokens: int = 64
    temperature: float = 0.0
    seed: int = 0
    stop_on_eos: bool = True
    state: str = QUEUED
    slot: Optional[int] = None
    prompt_ids: List[int] = field(default_factory=list)
    generated: List[int] = field(default_factory=list)
    stopped_by_eos: bool = False
    finish_reason: Optional[str] = None
    num_inferences: int = 0
    metrics: RequestMetrics = field(default_factory=lambda: RequestMetrics(task="generate"))
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)
    _last_step_at: Optional[float] = field(default=None, repr=False)

    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = seeded_rng(self.seed)
        return self._rng

    def record_token(self) -> None:
        now = time.perf_counter()
        if self.metrics.first_token_at is None:
            self.metrics.first_token_at = now
        reference = self._last_step_at if self._last_step_at is not None else (
            self.metrics.admitted_at or self.metrics.submitted_at)
        self.metrics.token_seconds.append(now - reference)
        self._last_step_at = now

    def to_result(self, tokenizer) -> GenerationResult:
        """Materialize the standard :class:`GenerationResult` for this session."""
        return GenerationResult(
            text=tokenizer.decode(self.generated),
            token_ids=list(self.generated),
            num_inferences=self.num_inferences,
            elapsed_seconds=self.metrics.total_seconds,
            stopped_by_eos=self.stopped_by_eos,
            token_seconds=list(self.metrics.token_seconds),
        )


class SessionManager:
    """Slot bookkeeping and batched decoding over a shared model.

    ``max_slots`` bounds how many sessions decode together (the batch size of
    one engine step); ``max_context`` bounds each session's total context.
    Unlike eval-mode :func:`repro.llm.generation.generate`, the engine does not
    re-prime a sliding window when the context fills up — the session is
    completed with ``finish_reason == "context_full"`` instead, which is the
    behaviour a serving deployment wants (bounded per-request work).
    """

    def __init__(self, model: LanguageModel, max_slots: int = 16,
                 max_context: Optional[int] = None) -> None:
        if max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        self.model = model
        self.max_slots = max_slots
        model_limit = model.config.max_seq_len
        self.max_context = min(max_context or model_limit, model_limit)
        if self.max_context < 2:
            raise ValueError("max_context must leave room for at least one new token")
        self.cache = model.init_batched_cache(max_slots)
        self.running: Dict[int, GenerationSession] = {}  # slot -> session

    # ------------------------------------------------------------------ #
    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def num_free(self) -> int:
        return self.max_slots - len(self.running)

    # ------------------------------------------------------------------ #
    def admit(self, session: GenerationSession) -> None:
        """Prefill a queued session's prompt and pack it into a free slot."""
        self.admit_many([session])

    def admit_many(self, sessions: List[GenerationSession]) -> None:
        """Prefill queued sessions and pack each into a free slot.

        Equal-length prompts are prefilled together in one batched forward
        (a large share of admission cost when many requests arrive at once);
        each session's first output token is sampled from its prefill logits,
        exactly as :func:`~repro.llm.generation.generate` does.
        """
        if len(sessions) > self.num_free:
            raise RuntimeError(
                f"cannot admit {len(sessions)} sessions into {self.num_free} free slots")
        tokenizer = self.model.tokenizer
        # Keep the whole prompt when it fits, else the most recent
        # max_context tokens — the same window generate() prefills, so the
        # first sampled token matches the standalone path even for prompts
        # at the cap (such a session then finishes context_full right after).
        limit = self.max_context
        groups: Dict[int, List[GenerationSession]] = {}
        for session in sessions:
            session.prompt_ids = tokenizer.encode(session.prompt, add_bos=True)[-limit:]
            session.metrics.mark_admitted()
            groups.setdefault(len(session.prompt_ids), []).append(session)
        # Mirror generate(): KV-cached forwards require eval mode (dropout
        # off); restore the caller's mode afterwards.
        was_training = self.model.training
        if was_training:
            self.model.eval()
        try:
            for group in groups.values():
                self._admit_group(group)
        finally:
            if was_training:
                self.model.train()

    def _admit_group(self, group: List[GenerationSession]) -> None:
        prompt_ids = np.asarray([session.prompt_ids for session in group],
                                dtype=np.int64)
        with no_grad():
            prefill_cache = self.model.init_cache()
            logits = self.model.forward_incremental(prompt_ids, prefill_cache)
            for row, session in enumerate(group):
                session.slot = self.cache.admit(prefill_cache, row=row)
                self.running[session.slot] = session
                session.state = RUNNING
        for row, session in enumerate(group):
            self._consume_logits(session, logits.data[row, -1, :])

    def evict(self, session: GenerationSession, reason: str) -> None:
        session.finish_reason = session.finish_reason or reason
        session.state = FINISHED
        session.metrics.mark_finished()
        if session.slot is not None:
            self.cache.evict(session.slot)
            del self.running[session.slot]
            session.slot = None

    # ------------------------------------------------------------------ #
    def step(self) -> Tuple[List[GenerationSession], int]:
        """Advance every running session by one token.

        One batched ``forward_step`` feeds each session's most recent token
        and samples its next one.  Sessions that hit EOS, their token budget
        or the context cap are evicted, freeing slots for queued requests.
        Returns ``(completed_sessions, occupancy)`` where ``occupancy`` is the
        batch size of the forward actually executed (0 when every running
        session finished at the context cap before the forward).
        """
        if not self.running:
            return [], 0
        # Sessions whose cache cannot take one more token finish now (their
        # already-sampled final token still counts as generated output).
        completed: List[GenerationSession] = []
        for slot in sorted(self.running):
            session = self.running[slot]
            if int(self.cache.lengths[slot]) + 1 > self.max_context:
                completed.append(session)
        for session in completed:
            self.evict(session, REASON_CONTEXT_FULL)
        if not self.running:
            return completed, 0

        slots = np.asarray(sorted(self.running), dtype=np.int64)
        batch = [self.running[int(slot)] for slot in slots]
        tokens = np.asarray([s.generated[-1] for s in batch], dtype=np.int64)
        was_training = self.model.training
        if was_training:  # KV-cached forwards require eval mode (as generate())
            self.model.eval()
        try:
            with no_grad():
                logits = self.model.forward_step(tokens, self.cache, slots).data[:, -1, :]
        finally:
            if was_training:
                self.model.train()
        occupancy = len(batch)
        for row, session in enumerate(batch):
            session.metrics.batch_sizes.append(occupancy)
            if not self._consume_logits(session, logits[row]):
                completed.append(session)
        return completed, occupancy

    # ------------------------------------------------------------------ #
    def _consume_logits(self, session: GenerationSession, logits: np.ndarray) -> bool:
        """Sample one token from ``logits``; return False when the session ends.

        Uses the same :func:`~repro.llm.generation.sample_token` as standalone
        :func:`~repro.llm.generation.generate`, so a served session reproduces
        the standalone token stream.
        """
        session.num_inferences += 1
        next_id = sample_token(logits, session.temperature, session.rng())
        session.record_token()
        tokenizer = self.model.tokenizer
        if session.stop_on_eos and next_id == tokenizer.eos_id:
            session.stopped_by_eos = True
            self.evict(session, REASON_EOS)
            return False
        session.generated.append(next_id)
        session.metrics.tokens_generated = len(session.generated)
        if len(session.generated) >= session.max_new_tokens:
            self.evict(session, REASON_MAX_TOKENS)
            return False
        return True
