"""Generation sessions and the session manager over the paged KV cache.

A :class:`GenerationSession` is one streaming autoregressive request (prompt
in, tokens out).  The :class:`SessionManager` owns the model's
:class:`~repro.nn.PagedKVCache`: it prefills prompts in ragged length-bucketed
batches (mixed-length prompts share one padded forward), maps cached common
prompt heads in by reference (:class:`~repro.serve.prefix.PrefixCache`),
advances every running session with one batched ``forward_step`` per engine
step, and evicts completed sessions so their blocks return to the pool —
continuous batching over paged storage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..llm import LanguageModel
from ..llm.generation import GenerationResult, sample_token
from ..nn import DEFAULT_BLOCK_SIZE, no_grad
from ..utils import seeded_rng
from .metrics import RequestMetrics
from .prefix import PrefixCache, PrefixEntry

#: Session lifecycle states.
QUEUED = "queued"
RUNNING = "running"
FINISHED = "finished"
FAILED = "failed"

#: Completion reasons.
REASON_EOS = "eos"
REASON_MAX_TOKENS = "max_tokens"
REASON_CONTEXT_FULL = "context_full"
REASON_CANCELLED = "cancelled"
REASON_DEADLINE = "deadline"


@dataclass
class GenerationSession:
    """One streaming generation request tracked by the engine."""

    session_id: int
    prompt: str
    max_new_tokens: int = 64
    temperature: float = 0.0
    seed: int = 0
    stop_on_eos: bool = True
    priority: int = 0
    #: Absolute ``time.perf_counter()`` completion deadline (None: none).
    deadline_at: Optional[float] = None
    state: str = QUEUED
    slot: Optional[int] = None
    prompt_ids: List[int] = field(default_factory=list)
    generated: List[int] = field(default_factory=list)
    stopped_by_eos: bool = False
    finish_reason: Optional[str] = None
    num_inferences: int = 0
    metrics: RequestMetrics = field(default_factory=lambda: RequestMetrics(task="generate"))
    #: Called with each committed token id (streaming handles subscribe here).
    on_token: Optional[Callable[[int], None]] = field(default=None, repr=False)
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)
    _last_step_at: Optional[float] = field(default=None, repr=False)

    def is_expired(self, now: Optional[float] = None) -> bool:
        if self.deadline_at is None:
            return False
        return (time.perf_counter() if now is None else now) > self.deadline_at

    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = seeded_rng(self.seed)
        return self._rng

    def record_token(self) -> None:
        now = time.perf_counter()
        if self.metrics.first_token_at is None:
            self.metrics.first_token_at = now
        reference = self._last_step_at if self._last_step_at is not None else (
            self.metrics.admitted_at or self.metrics.submitted_at)
        self.metrics.token_seconds.append(now - reference)
        self._last_step_at = now

    def to_result(self, tokenizer) -> GenerationResult:
        """Materialize the standard :class:`GenerationResult` for this session."""
        return GenerationResult(
            text=tokenizer.decode(self.generated),
            token_ids=list(self.generated),
            num_inferences=self.num_inferences,
            elapsed_seconds=self.metrics.total_seconds,
            stopped_by_eos=self.stopped_by_eos,
            token_seconds=list(self.metrics.token_seconds),
        )


class SessionManager:
    """Session bookkeeping and batched decoding over a shared model.

    ``max_slots`` bounds how many sessions decode together (the batch size of
    one engine step); ``max_context`` bounds each session's total context.
    The KV pool is paged (:class:`~repro.nn.PagedKVCache`): a session holds
    exactly the blocks its history needs, so memory follows live tokens
    instead of ``max_slots × max_context``.  Prompts are prefilled in ragged
    length-bucketed batches — mixed-length prompts ride one right-padded
    forward, with padding waste bounded by ``prefill_padding`` — and prompts
    starting with a registered prefix skip recomputing (and re-storing) the
    shared head entirely.

    Unlike eval-mode :func:`repro.llm.generation.generate`, the engine does
    not re-prime a sliding window when the context fills up — the session is
    completed with ``finish_reason == "context_full"`` instead, which is the
    behaviour a serving deployment wants (bounded per-request work).
    """

    def __init__(self, model: LanguageModel, max_slots: int = 16,
                 max_context: Optional[int] = None,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 prefill_padding: float = 0.5,
                 ragged_prefill: bool = True,
                 prefix_cache: bool = True,
                 max_prefixes: int = 8) -> None:
        if max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        if prefill_padding < 0:
            raise ValueError("prefill_padding must be >= 0")
        self.model = model
        self.max_slots = max_slots
        model_limit = model.config.max_seq_len
        self.max_context = min(max_context or model_limit, model_limit)
        if self.max_context < 2:
            raise ValueError("max_context must leave room for at least one new token")
        self.prefill_padding = prefill_padding
        self.ragged_prefill = ragged_prefill
        # Reserve pool capacity for the prefix cache's residents so prompt
        # traffic can never be starved by registered preambles (or vice versa).
        blocks_per_session = -(-self.max_context // block_size)
        self.cache = model.init_paged_cache(
            max_sessions=max_slots, max_context=self.max_context,
            block_size=block_size,
            extra_blocks=max_prefixes * blocks_per_session if prefix_cache else 0)
        self.prefix: Optional[PrefixCache] = (
            PrefixCache(model, self.cache, max_entries=max_prefixes,
                        max_length=self.max_context - 1)
            if prefix_cache else None)
        self.running: Dict[int, GenerationSession] = {}  # cache session id -> session

    # ------------------------------------------------------------------ #
    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def num_free(self) -> int:
        return self.max_slots - len(self.running)

    # ------------------------------------------------------------------ #
    def register_prefix(self, text: str) -> PrefixEntry:
        """Cache a common prompt head (see :class:`PrefixCache`)."""
        if self.prefix is None:
            raise ValueError("the prefix cache is disabled for this manager")
        return self.prefix.register(text)

    def admit(self, session: GenerationSession) -> None:
        """Prefill a queued session's prompt and start decoding it."""
        self.admit_many([session])

    def admit_many(self, sessions: List[GenerationSession]) -> None:
        """Prefill queued sessions in ragged length-banded batches.

        Sessions are grouped by matched prefix, then partitioned into length
        bands (:meth:`_length_bands`): each band runs one right-padded batched
        forward — causality makes right padding exact, per-row logits are read
        at each prompt's true last position, and only the true history is
        admitted into the paged cache.  Each session's first output token is
        sampled from its prefill logits, exactly as
        :func:`~repro.llm.generation.generate` does.
        """
        if len(sessions) > self.num_free:
            raise RuntimeError(
                f"cannot admit {len(sessions)} sessions into {self.num_free} free slots")
        tokenizer = self.model.tokenizer
        # Keep the whole prompt when it fits, else the most recent
        # max_context tokens — the same window generate() prefills, so the
        # first sampled token matches the standalone path even for prompts
        # at the cap (such a session then finishes context_full right after).
        limit = self.max_context
        by_prefix: Dict[Optional[Tuple[int, ...]],
                        Tuple[Optional[PrefixEntry], List[GenerationSession]]] = {}
        for session in sessions:
            session.prompt_ids = tokenizer.encode(session.prompt, add_bos=True)[-limit:]
            session.metrics.mark_admitted()
            entry = (self.prefix.match(session.prompt_ids)
                     if self.prefix is not None else None)
            key = entry.token_ids if entry is not None else None
            if key not in by_prefix:
                by_prefix[key] = (entry, [])
            by_prefix[key][1].append(session)
        # Mirror generate(): KV-cached forwards require eval mode (dropout
        # off); restore the caller's mode afterwards.
        was_training = self.model.training
        if was_training:
            self.model.eval()
        try:
            for entry, group in by_prefix.values():
                head_len = entry.length if entry is not None else 0
                for band in self._length_bands(group, head_len):
                    self._admit_group(entry, band)
        finally:
            if was_training:
                self.model.train()

    def _length_bands(self, sessions: List[GenerationSession],
                      head_len: int) -> List[List[GenerationSession]]:
        """Partition sessions into prefill bands with bounded padding waste.

        Greedy over tail lengths sorted ascending: a band absorbs the next
        (longer) session while the band's right-padded token count stays
        within ``1 + prefill_padding`` of its real token count.  A small
        bound yields many narrow bands (little padding, many forwards); a
        large one, few wide bands — the knob trades per-forward overhead
        against padded FLOPs.  With ``ragged_prefill`` off, bands are exact
        tail lengths (the equal-length-only pre-paging baseline).
        """
        ordered = sorted(sessions, key=lambda s: len(s.prompt_ids))
        if not self.ragged_prefill:
            by_length: Dict[int, List[GenerationSession]] = {}
            for session in ordered:
                by_length.setdefault(len(session.prompt_ids), []).append(session)
            return list(by_length.values())
        bands: List[List[GenerationSession]] = []
        band: List[GenerationSession] = []
        real_tokens = 0
        for session in ordered:
            tail = len(session.prompt_ids) - head_len
            padded = (len(band) + 1) * tail  # sorted: this tail is the new max
            if band and padded > (1.0 + self.prefill_padding) * (real_tokens + tail):
                bands.append(band)
                band, real_tokens = [], 0
            band.append(session)
            real_tokens += tail
        if band:
            bands.append(band)
        return bands

    def _admit_group(self, entry: Optional[PrefixEntry],
                     group: List[GenerationSession]) -> None:
        head_len = entry.length if entry is not None else 0
        tails = [session.prompt_ids[head_len:] for session in group]
        lengths = [len(tail) for tail in tails]
        width = max(lengths)
        # Right padding: causal attention makes every real position's K/V and
        # logits independent of what follows, so pad rows are exact — the pad
        # id is arbitrary and its K/V are simply never admitted.
        padded = np.full((len(group), width), self.model.tokenizer.pad_id,
                         dtype=np.int64)
        for row, tail in enumerate(tails):
            padded[row, :len(tail)] = tail
        shared = entry.block_ids if entry is not None else ()
        with no_grad():
            prefill_cache = (self.prefix.seed_cache(entry, len(group))
                             if entry is not None else self.model.init_cache())
            logits = self.model.forward_incremental(padded, prefill_cache)
            session_ids = self.cache.admit_rows(
                prefill_cache,
                lengths=[head_len + length for length in lengths],
                shared_blocks=shared)
            for session, session_id in zip(group, session_ids):
                session.slot = session_id
                session.metrics.prefix_tokens = head_len
                self.running[session.slot] = session
                session.state = RUNNING
        for row, session in enumerate(group):
            self._consume_logits(session, logits.data[row, lengths[row] - 1, :])

    def evict(self, session: GenerationSession, reason: str) -> None:
        session.finish_reason = session.finish_reason or reason
        session.state = FINISHED
        session.metrics.mark_finished()
        if session.slot is not None:
            self.cache.evict(session.slot)
            del self.running[session.slot]
            session.slot = None

    # ------------------------------------------------------------------ #
    def step(self) -> Tuple[List[GenerationSession], int]:
        """Advance every running session by one token.

        One batched ``forward_step`` feeds each session's most recent token
        and samples its next one.  Sessions that hit EOS, their token budget
        or the context cap are evicted, freeing slots for queued requests.
        Returns ``(completed_sessions, occupancy)`` where ``occupancy`` is the
        batch size of the forward actually executed (0 when every running
        session finished at the context cap before the forward).
        """
        if not self.running:
            return [], 0
        # Sessions whose cache cannot take one more token finish now (their
        # already-sampled final token still counts as generated output).
        completed: List[GenerationSession] = []
        for slot in sorted(self.running):
            session = self.running[slot]
            if self.cache.length(slot) + 1 > self.max_context:
                completed.append(session)
        for session in completed:
            self.evict(session, REASON_CONTEXT_FULL)
        if not self.running:
            return completed, 0

        slots = np.asarray(sorted(self.running), dtype=np.int64)
        batch = [self.running[int(slot)] for slot in slots]
        tokens = np.asarray([s.generated[-1] for s in batch], dtype=np.int64)
        was_training = self.model.training
        if was_training:  # KV-cached forwards require eval mode (as generate())
            self.model.eval()
        try:
            with no_grad():
                logits = self.model.forward_step(tokens, self.cache, slots).data[:, -1, :]
        finally:
            if was_training:
                self.model.train()
        occupancy = len(batch)
        for row, session in enumerate(batch):
            session.metrics.batch_sizes.append(occupancy)
            if not self._consume_logits(session, logits[row]):
                completed.append(session)
        return completed, occupancy

    # ------------------------------------------------------------------ #
    def _consume_logits(self, session: GenerationSession, logits: np.ndarray) -> bool:
        """Sample one token from ``logits``; return False when the session ends.

        Uses the same :func:`~repro.llm.generation.sample_token` as standalone
        :func:`~repro.llm.generation.generate`, so a served session reproduces
        the standalone token stream.
        """
        session.num_inferences += 1
        next_id = sample_token(logits, session.temperature, session.rng())
        session.record_token()
        tokenizer = self.model.tokenizer
        if session.stop_on_eos and next_id == tokenizer.eos_id:
            session.stopped_by_eos = True
            self.evict(session, REASON_EOS)
            return False
        session.generated.append(next_id)
        session.metrics.tokens_generated = len(session.generated)
        if session.on_token is not None:
            session.on_token(next_id)
        if len(session.generated) >= session.max_new_tokens:
            self.evict(session, REASON_MAX_TOKENS)
            return False
        return True
