"""Task-side clients that drive the three NetLLM adapters through the engine.

These wrappers turn the synchronous per-step adapter calls of the deployment
policies into typed :class:`~repro.serve.requests.DecisionRequest`
submissions so that concurrent sessions share batched forwards:

* :func:`serve_vp_predictions` — submit a whole VP test set at once; the
  engine groups compatible samples into one ``predict_batch`` forward.
* :class:`LockstepABRDriver` — streams many ABR sessions in lockstep: each
  round every unfinished session submits its bitrate decision, the engine
  answers them in one batched ``act_batch`` forward, then every session
  downloads its chunk.
* :class:`ServedABRPolicy` / :class:`ServedCJSScheduler` — drop-in policy /
  scheduler objects whose per-step decision goes through the engine, for use
  inside the unmodified simulators (each call batches with whatever other
  traffic is pending, e.g. when several simulator threads share a started
  server).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..abr.simulator import StreamingSession
from ..core.ddlrna import NetLLMABRPolicy, NetLLMCJSScheduler
from .engine import InferenceServer
from .requests import DecisionRequest


# ---------------------------------------------------------------------- #
# Viewport prediction
# ---------------------------------------------------------------------- #
def serve_vp_predictions(server: InferenceServer, samples: Sequence,
                         priority: int = 0) -> List[np.ndarray]:
    """Predict every sample through the engine (batched by shape group)."""
    handles = [server.submit(DecisionRequest(task="vp", payload=sample,
                                             priority=priority))
               for sample in samples]
    if not server.is_serving:
        server.run_until_idle()
    return [handle.result().viewport for handle in handles]


class ServedVPPredictor:
    """``predict(sample)``-compatible wrapper that answers via the engine."""

    name = "NetLLM-served"

    def __init__(self, server: InferenceServer) -> None:
        self.server = server

    def predict(self, sample) -> np.ndarray:
        return self.server.submit(
            DecisionRequest(task="vp", payload=sample)).result().viewport


# ---------------------------------------------------------------------- #
# Adaptive bitrate streaming
# ---------------------------------------------------------------------- #
class ServedABRPolicy(NetLLMABRPolicy):
    """ABR policy whose per-chunk decision is answered by the engine."""

    name = "NetLLM-served"

    def __init__(self, server: InferenceServer, adapter, pool,
                 target_return_scale: float = 1.1) -> None:
        super().__init__(adapter, pool, target_return_scale=target_return_scale)
        self.server = server

    def select_bitrate(self, session: StreamingSession) -> int:
        returns, states, actions = self.prepare(session)
        payload = {"returns": returns, "states": states, "actions": actions}
        result = self.server.submit(
            DecisionRequest(task="abr", payload=payload)).result()
        return self.commit(result.bitrate)


class LockstepABRDriver:
    """Stream many ABR sessions concurrently with batched decisions.

    Each round, every unfinished session prepares its context and submits one
    ``abr`` request; the engine groups same-window contexts into a single
    batched adapter forward; every session then commits its action and
    downloads the chunk.  Per-session QoE matches driving each session alone
    (the batched forward is the same computation).
    """

    def __init__(self, server: InferenceServer, adapter, pool,
                 target_return_scale: float = 1.1) -> None:
        self.server = server
        self.adapter = adapter
        self.pool = pool
        self.target_return_scale = target_return_scale

    def run(self, video, traces, config=None, seed: int = 0) -> List:
        """Stream every trace; returns the per-trace ``SessionResult`` list."""
        sessions = [StreamingSession(video, trace, config=config, seed=seed + index)
                    for index, trace in enumerate(traces)]
        policies = [NetLLMABRPolicy(self.adapter, self.pool,
                                    target_return_scale=self.target_return_scale)
                    for _ in sessions]
        active = list(range(len(sessions)))
        while active:
            submissions = []
            for index in active:
                returns, states, actions = policies[index].prepare(sessions[index])
                payload = {"returns": returns, "states": states, "actions": actions}
                submissions.append((index, self.server.submit(
                    DecisionRequest(task="abr", payload=payload))))
            if not self.server.is_serving:
                self.server.run_until_idle()
            still_active = []
            for index, handle in submissions:
                bitrate = handle.result().bitrate
                policies[index].commit(bitrate)
                sessions[index].download_chunk(bitrate)
                if not sessions[index].finished:
                    still_active.append(index)
            active = still_active
        return [session.result for session in sessions]


# ---------------------------------------------------------------------- #
# Cluster job scheduling
# ---------------------------------------------------------------------- #
class ServedCJSScheduler(NetLLMCJSScheduler):
    """CJS scheduler whose per-event decision is answered by the engine."""

    name = "NetLLM-served"

    def __init__(self, server: InferenceServer, adapter, pool,
                 target_return_scale: float = 0.9) -> None:
        super().__init__(adapter, pool, target_return_scale=target_return_scale)
        self.server = server

    def schedule(self, context):
        returns, states, actions, valid_mask = self.prepare(context)
        payload = {"returns": returns, "states": states, "actions": actions,
                   "valid_mask": valid_mask}
        result = self.server.submit(
            DecisionRequest(task="cjs", payload=payload)).result()
        return self.commit(context, result.stage_index, result.bucket)
