"""Typed request/response surface of the serving engine.

The engine's wire format is a pair of frozen dataclasses — a
:class:`GenerateRequest` for streaming autoregressive sessions and a
:class:`DecisionRequest` for per-step adapter inferences — plus per-task
result types.  Freezing the request objects keeps submissions immutable once
queued (the scheduler may hold them arbitrarily long), and separating the
request surface from the engine lets the scheduler/runtime evolve without
breaking clients, the way vLLM's ``SamplingParams``/request objects decouple
its API from its scheduler.

Every request carries the cross-cutting lifecycle fields:

* ``priority`` — admission class.  For generation sessions, higher classes
  leave the waiting queue first (FIFO within a class; starvation-free aging
  is a scheduler policy knob).  Decision requests all execute in the next
  flush round regardless of class — there, priority orders the batched
  forwards within the round and labels the per-class queue statistics.
* ``deadline_s`` — a relative completion deadline.  A request that cannot
  finish in time fails with :class:`DeadlineExceeded` — still in the queue,
  between decode steps, or before a decision batch executes — immediately
  releasing any resources (KV blocks) it holds.

Cancellation (:meth:`~repro.serve.engine.RequestHandle.cancel`) fails the
handle with :class:`RequestCancelled` and likewise releases resources
immediately.

Two further typed failures complete the lifecycle surface:
:class:`RequestFailed` (the engine quarantined this request after a fault in
its prefill/decode/decision phase — the original error rides along as
``cause``) and :class:`ServerOverloaded` (the request was shed at submission
because the queue was full, too deep or too old; see the shedding knobs on
:class:`~repro.serve.scheduler.SchedulerPolicy`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Optional, Tuple

import numpy as np

#: Suggested priority classes.  Priorities are plain ints — any value works;
#: higher means admitted sooner.  These names just anchor the convention.
PRIORITY_LOW = 0
PRIORITY_NORMAL = 1
PRIORITY_HIGH = 2


class RequestCancelled(RuntimeError):
    """The request was cancelled via ``handle.cancel()`` before completing."""


class DeadlineExceeded(TimeoutError):
    """The request's ``deadline_s`` elapsed before it could complete."""


class RequestFailed(RuntimeError):
    """The request was quarantined after a fault in one of its serving phases.

    Raised by ``handle.result()``/``stream()`` when the engine contained a
    fault (prefill, decode or decision-batch failure) to the implicated
    requests instead of crashing the serve loop.  ``cause`` (also chained as
    ``__cause__``) carries the original error; the quarantine already
    reclaimed the request's KV blocks and proved the pool sound, so the
    engine keeps serving everything else.
    """

    def __init__(self, message: str,
                 cause: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.cause = cause
        if cause is not None:
            self.__cause__ = cause


class ServerOverloaded(RuntimeError):
    """The engine shed this request at submission to protect those in flight.

    Raised by ``handle.result()`` when the waiting queue was full, deeper
    than ``SchedulerPolicy.shed_queue_depth``, or older than
    ``shed_queue_age_s`` at submission time.  Shedding at the door is the
    backpressure signal a load balancer in front of the engine consumes —
    rejected work costs nothing, whereas admitting it would push every
    queued request past its deadline.
    """


def _validate_lifecycle(priority: int, deadline_s: Optional[float]) -> None:
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise TypeError(f"priority must be an int class, got {priority!r}")
    if deadline_s is not None and deadline_s <= 0:
        raise ValueError(f"deadline_s must be positive seconds, got {deadline_s}")


@dataclass(frozen=True)
class GenerateRequest:
    """One streaming autoregressive generation request.

    ``stream=True`` lets the client consume tokens as decode steps commit
    them via :meth:`~repro.serve.engine.RequestHandle.stream`; the final
    :class:`~repro.llm.generation.GenerationResult` is unchanged either way.
    """

    task: ClassVar[str] = "generate"

    prompt: str
    max_new_tokens: int = 64
    temperature: float = 0.0
    seed: int = 0
    stop_on_eos: bool = True
    stream: bool = False
    priority: int = 0
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.prompt, str):
            raise TypeError(f"prompt must be a string, got {type(self.prompt).__name__}")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        _validate_lifecycle(self.priority, self.deadline_s)


@dataclass(frozen=True)
class DecisionRequest:
    """One per-step decision inference answered by a registered task runtime.

    ``task`` names a runtime registered on the server (the built-ins are
    ``"vp"``/``"abr"``/``"cjs"``, see :mod:`repro.serve.runtimes`); ``payload``
    is whatever that runtime's ``execute_batch`` consumes.
    """

    task: str
    payload: Any = None
    priority: int = 0
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.task, str) or not self.task:
            raise TypeError(f"task must be a non-empty string, got {self.task!r}")
        _validate_lifecycle(self.priority, self.deadline_s)


# ---------------------------------------------------------------------- #
# Per-task result types
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class VPResult:
    """Viewport prediction answer: the predicted viewport angles."""

    viewport: np.ndarray = field(repr=False)

    @property
    def value(self):
        """The bare payload the pre-typed ``submit(task=str)`` API returned."""
        return self.viewport


@dataclass(frozen=True)
class ABRResult:
    """Adaptive-bitrate answer: the greedy action tuple (bitrate index)."""

    action: Tuple[int, ...]

    @property
    def bitrate(self) -> int:
        return self.action[0]

    @property
    def value(self):
        """The bare payload the pre-typed ``submit(task=str)`` API returned."""
        return self.action


@dataclass(frozen=True)
class CJSResult:
    """Cluster-scheduling answer: the chosen stage and parallelism bucket."""

    stage_index: int
    bucket: int

    @property
    def value(self):
        """The bare payload the pre-typed ``submit(task=str)`` API returned."""
        return (self.stage_index, self.bucket)
